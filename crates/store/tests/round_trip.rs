//! Property-style round-trip tests over randomized `cable-workload`
//! corpora: text ↔ binary trace codecs, snapshot encode/decode, and
//! store save/reopen must all preserve the session state exactly.

use cable_store::corpus::{decode_snapshot, encode_snapshot, SnapshotData};
use cable_store::{JournalRecord, Store};
use cable_trace::{binary, Trace, TraceSet, Vocab};
use cable_util::rng::Rng;
use cable_util::BitSet;
use std::path::PathBuf;

/// A few specs whose workloads are quick to generate but exercise
/// different vocabulary shapes (atoms, loops, multiple objects).
const SPECS: [&str; 3] = ["XOpenDisplay", "Quarks", "RmvTimeOut"];

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "cable-store-roundtrip-{}-{name}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn workload_set(spec_name: &str, seed: u64, vocab: &mut Vocab) -> TraceSet {
    let registry = cable_specs::registry();
    let spec = registry.spec(spec_name).expect("known spec");
    let mut set = TraceSet::new();
    for t in spec.generate(seed, vocab) {
        set.push(t);
    }
    set
}

#[test]
fn binary_codec_round_trips_randomized_workloads() {
    for spec in SPECS {
        for seed in [1u64, 7, 2003] {
            let mut vocab = Vocab::new();
            let set = workload_set(spec, seed, &mut vocab);
            assert!(!set.is_empty(), "{spec}/{seed}");

            let vocab_bytes = binary::encode_vocab(&vocab);
            let set_bytes = binary::encode_trace_set(&set);
            let vocab2 = binary::decode_vocab(&vocab_bytes).unwrap();
            let decoded = binary::decode_trace_set(&set_bytes, &vocab2).unwrap();

            assert_eq!(decoded.len(), set.len(), "{spec}/{seed}");
            for (id, t) in set.iter() {
                // Re-interning in order makes the symbol spaces line up,
                // so decoded traces are structurally identical…
                assert_eq!(decoded.trace(id), t, "{spec}/{seed}");
                // …and render to the same text.
                assert_eq!(
                    decoded.trace(id).display(&vocab2).to_string(),
                    t.display(&vocab).to_string(),
                    "{spec}/{seed}"
                );
            }
        }
    }
}

#[test]
fn binary_and_text_formats_agree_on_randomized_workloads() {
    for spec in SPECS {
        let mut vocab = Vocab::new();
        let set = workload_set(spec, 42, &mut vocab);

        // Through text: display every trace, parse the lines back.
        let mut text = String::new();
        for (_, t) in set.iter() {
            text.push_str(&t.display(&vocab).to_string());
            text.push('\n');
        }
        let mut vocab_text = Vocab::new();
        let from_text = TraceSet::parse(&text, &mut vocab_text).unwrap();

        // Through binary: encode and decode against the re-read vocab.
        let vocab_bin = binary::decode_vocab(&binary::encode_vocab(&vocab)).unwrap();
        let from_bin =
            binary::decode_trace_set(&binary::encode_trace_set(&set), &vocab_bin).unwrap();

        assert_eq!(from_text.len(), from_bin.len(), "{spec}");
        for (id, t) in from_text.iter() {
            assert_eq!(
                t.display(&vocab_text).to_string(),
                from_bin.trace(id).display(&vocab_bin).to_string(),
                "{spec}"
            );
        }
    }
}

fn random_bitset<R: Rng>(rng: &mut R, universe: usize) -> BitSet {
    let mut set = BitSet::new();
    let n = rng.gen_range(0..=universe);
    for _ in 0..n {
        set.insert(rng.gen_range(0..universe.max(1)));
    }
    set
}

#[test]
fn snapshots_round_trip_randomized_payloads() {
    for seed in 0u64..8 {
        let mut rng = cable_util::rng::seeded(seed);
        let mut vocab = Vocab::new();
        let traces = workload_set(SPECS[(seed % 3) as usize], seed, &mut vocab);
        let n_attributes = rng.gen_range(1..24usize);
        let n_rows = rng.gen_range(1..12usize);
        let data = SnapshotData {
            generation: rng.gen_range(0..1000u64),
            n_attributes,
            vocab,
            fa_text: format!("start s0\naccept s{}\n", rng.gen_range(0..3u32)),
            traces,
            labels: (0..rng.gen_range(0..5u32))
                .map(|i| (i, format!("label-{i}")))
                .collect(),
            rows: (0..n_rows)
                .map(|_| random_bitset(&mut rng, n_attributes))
                .collect(),
            concepts: (0..rng.gen_range(1..8usize))
                .map(|i| {
                    let mut extent = random_bitset(&mut rng, n_rows);
                    // Extents need not be distinct for the codec; make
                    // them so anyway to mirror real lattices.
                    extent.insert(n_rows + i);
                    (extent, random_bitset(&mut rng, n_attributes))
                })
                .collect(),
        };
        let decoded = decode_snapshot(&encode_snapshot(&data)).unwrap();
        assert_eq!(decoded.generation, data.generation, "seed {seed}");
        assert_eq!(decoded.n_attributes, data.n_attributes, "seed {seed}");
        assert_eq!(decoded.fa_text, data.fa_text, "seed {seed}");
        assert_eq!(decoded.labels, data.labels, "seed {seed}");
        assert_eq!(decoded.rows, data.rows, "seed {seed}");
        assert_eq!(decoded.concepts, data.concepts, "seed {seed}");
        assert_eq!(decoded.traces.len(), data.traces.len(), "seed {seed}");
    }
}

#[test]
fn stores_survive_repeated_append_reopen_cycles() {
    let dir = tmp_dir("cycles");
    let mut vocab = Vocab::new();
    let traces = workload_set("XOpenDisplay", 5, &mut vocab);
    let data = SnapshotData {
        generation: 0,
        n_attributes: 4,
        vocab,
        fa_text: "start s0\naccept s0\n".to_owned(),
        traces,
        labels: Vec::new(),
        rows: vec![BitSet::new()],
        concepts: vec![(BitSet::new(), BitSet::full(4))],
    };
    let store = Store::create(&dir, &data).unwrap();
    drop(store);

    let mut expected: Vec<JournalRecord> = Vec::new();
    let mut rng = cable_util::rng::seeded(99);
    for cycle in 0..6 {
        let (mut store, _, replayed, report) = Store::open(&dir).unwrap();
        assert_eq!(replayed, expected, "cycle {cycle}");
        assert_eq!(report.discarded_bytes, 0, "cycle {cycle}");
        let fresh: Vec<JournalRecord> = (0..rng.gen_range(1..4u32))
            .map(|i| {
                if rng.gen_bool(0.5) {
                    JournalRecord::Trace(format!("op{cycle}(X) op{i}(X)"))
                } else {
                    JournalRecord::Label {
                        class: rng.gen_range(0..7u32),
                        name: format!("cycle-{cycle}-{i}"),
                    }
                }
            })
            .collect();
        store.append_all(&fresh, cycle % 2 == 0).unwrap();
        expected.extend(fresh);
    }
    let (_, _, replayed, _) = Store::open(&dir).unwrap();
    assert_eq!(replayed, expected);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn journal_trace_lines_parse_back_against_a_growing_vocab() {
    // The journal stores traces as self-contained text precisely so the
    // vocabulary can grow between snapshot and replay: simulate that.
    let mut vocab = Vocab::new();
    let set = workload_set("Quarks", 11, &mut vocab);
    let lines: Vec<String> = set
        .iter()
        .map(|(_, t)| t.display(&vocab).to_string())
        .collect();
    // Replay into a *different* vocabulary that has never seen these
    // operations, as `StoredSession::apply` does.
    let mut fresh = Vocab::new();
    fresh.op("unrelated");
    for (i, line) in lines.iter().enumerate() {
        let t = Trace::parse(line, &mut fresh).unwrap();
        assert_eq!(t.display(&fresh).to_string(), *line, "line {i}");
    }
}
