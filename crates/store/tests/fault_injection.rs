//! Fault injection against a real store directory: every way a crash or
//! bad disk can damage the files, recovery must keep exactly the valid
//! checksummed prefix and never panic.
//!
//! The three injected fault shapes:
//!
//! * **truncation** — the tail of the journal vanishes (crash before the
//!   data reached the platter),
//! * **torn write** — a record is partially on disk (crash mid-append),
//! * **bit flips** — storage corruption anywhere in a file.

use cable_store::corpus::SnapshotData;
use cable_store::journal::HEADER_LEN;
use cable_store::{JournalRecord, Store, TailState};
use cable_trace::{Trace, TraceSet, Vocab};
use cable_util::BitSet;
use std::fs;
use std::path::PathBuf;

const JOURNAL: &str = "journal.cable";
const SNAPSHOT: &str = "snapshot.cable";

fn tmp_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("cable-store-faults-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn sample_snapshot() -> SnapshotData {
    let mut vocab = Vocab::new();
    let mut traces = TraceSet::new();
    traces.push(Trace::parse("fopen(X) fread(X) fclose(X)", &mut vocab).unwrap());
    traces.push(Trace::parse("popen(Y) pclose(Y)", &mut vocab).unwrap());
    SnapshotData {
        generation: 0,
        n_attributes: 5,
        vocab,
        fa_text: "start s0\naccept s0\n".to_owned(),
        traces,
        labels: vec![(0, "good".to_owned())],
        rows: vec![
            [0usize, 1, 2].into_iter().collect(),
            [3usize, 4].into_iter().collect(),
        ],
        concepts: vec![
            ([0usize, 1].into_iter().collect(), BitSet::new()),
            (
                [0usize].into_iter().collect(),
                [0usize, 1, 2].into_iter().collect(),
            ),
            (BitSet::new(), BitSet::full(5)),
        ],
    }
}

fn sample_records() -> Vec<JournalRecord> {
    vec![
        JournalRecord::Trace("fopen(Z) fclose(Z)".to_owned()),
        JournalRecord::Label {
            class: 1,
            name: "bad".to_owned(),
        },
        JournalRecord::Trace("popen(Y) fread(Y) pclose(Y)".to_owned()),
        JournalRecord::Label {
            class: 0,
            name: "revised".to_owned(),
        },
    ]
}

/// Creates a store, appends the sample records durably, and returns the
/// directory plus the full journal image.
fn populated_store(name: &str) -> (PathBuf, Vec<u8>) {
    let dir = tmp_dir(name);
    let mut store = Store::create(&dir, &sample_snapshot()).unwrap();
    store.append_all(&sample_records(), true).unwrap();
    drop(store);
    let journal = fs::read(dir.join(JOURNAL)).unwrap();
    (dir, journal)
}

/// Byte offsets of the record boundaries in the journal image (header
/// included as the first boundary).
fn record_boundaries() -> Vec<usize> {
    let mut boundaries = vec![HEADER_LEN];
    for r in sample_records() {
        let len = cable_store::journal::encode_record(&r).len();
        boundaries.push(boundaries.last().unwrap() + len);
    }
    boundaries
}

#[test]
fn every_journal_truncation_recovers_the_exact_valid_prefix() {
    let (dir, whole) = populated_store("truncate");
    let boundaries = record_boundaries();
    let records = sample_records();
    for cut in 0..whole.len() {
        fs::write(dir.join(JOURNAL), &whole[..cut]).unwrap();
        let (store, data, replayed, report) = Store::open(&dir).unwrap();
        // Exactly the records whose frames are fully on disk.
        let n_whole = boundaries
            .iter()
            .filter(|&&b| b <= cut.max(HEADER_LEN))
            .count()
            - 1;
        let n_whole = if cut < HEADER_LEN { 0 } else { n_whole };
        assert_eq!(replayed, records[..n_whole], "cut {cut}");
        assert_eq!(data.generation, 0, "cut {cut}");
        drop(store);
        // Recovery repaired the file: the journal on disk is now the
        // valid prefix, bit-identical to a clean journal holding those
        // records — so a second open is indistinguishable from a store
        // that never crashed.
        let repaired = fs::read(dir.join(JOURNAL)).unwrap();
        if cut >= HEADER_LEN {
            assert_eq!(repaired, whole[..boundaries[n_whole]], "cut {cut}");
        }
        let (_, _, again, report2) = Store::open(&dir).unwrap();
        assert_eq!(again, replayed, "cut {cut}");
        assert_eq!(report2.tail, TailState::Clean, "cut {cut}");
        assert_eq!(report2.discarded_bytes, 0, "cut {cut}");
        let _ = report;
    }
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn every_journal_bit_flip_recovers_a_true_prefix_without_panicking() {
    let (dir, whole) = populated_store("bitflip");
    let records = sample_records();
    for i in HEADER_LEN..whole.len() {
        for bit in [0x01u8, 0x80] {
            let mut bad = whole.clone();
            bad[i] ^= bit;
            fs::write(dir.join(JOURNAL), &bad).unwrap();
            let (_, _, replayed, report) = Store::open(&dir).unwrap();
            // CRC-32 catches the flip: the damaged record and everything
            // after it are discarded, what survives is a true prefix.
            assert!(replayed.len() < records.len(), "flip byte {i} bit {bit}");
            assert_eq!(replayed[..], records[..replayed.len()], "flip byte {i}");
            assert!(report.discarded_bytes > 0, "flip byte {i}");
        }
    }
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn torn_mid_record_write_is_truncated_and_appends_continue() {
    let (dir, whole) = populated_store("torn");
    let next = cable_store::journal::encode_record(&JournalRecord::Trace(
        "fopen(V1) fwrite(V1)".to_owned(),
    ));
    // Every partial length of the next record, including zero-length.
    for torn_len in 0..next.len() {
        let mut torn = whole.clone();
        torn.extend_from_slice(&next[..torn_len]);
        fs::write(dir.join(JOURNAL), &torn).unwrap();

        let (mut store, _, replayed, report) = Store::open(&dir).unwrap();
        assert_eq!(replayed, sample_records(), "torn {torn_len}");
        assert_eq!(report.discarded_bytes, torn_len, "torn {torn_len}");
        if torn_len > 0 {
            assert_eq!(report.tail, TailState::Torn, "torn {torn_len}");
        }
        // The store is fully usable after recovery: the re-appended
        // record lands where the torn one was.
        store
            .append_all(
                [&JournalRecord::Trace("fopen(V1) fwrite(V1)".to_owned())],
                true,
            )
            .unwrap();
        drop(store);
        let (_, _, after, _) = Store::open(&dir).unwrap();
        assert_eq!(after.len(), sample_records().len() + 1, "torn {torn_len}");
        // Reset for the next iteration.
        fs::write(dir.join(JOURNAL), &whole).unwrap();
    }
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn snapshot_damage_is_a_hard_error_never_a_panic() {
    let (dir, _) = populated_store("snapdamage");
    let whole = fs::read(dir.join(SNAPSHOT)).unwrap();
    // Truncations.
    for cut in 0..whole.len() {
        fs::write(dir.join(SNAPSHOT), &whole[..cut]).unwrap();
        assert!(Store::open(&dir).is_err(), "cut {cut}");
    }
    // Bit flips — the snapshot is published atomically, so any damage
    // means the file is not a valid publication.
    for i in 0..whole.len() {
        for bit in [0x01u8, 0x40] {
            let mut bad = whole.clone();
            bad[i] ^= bit;
            fs::write(dir.join(SNAPSHOT), &bad).unwrap();
            assert!(Store::open(&dir).is_err(), "flip byte {i} bit {bit}");
        }
    }
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn missing_journal_opens_as_empty_and_is_recreated() {
    let (dir, _) = populated_store("missing");
    fs::remove_file(dir.join(JOURNAL)).unwrap();
    let (mut store, data, replayed, report) = Store::open(&dir).unwrap();
    assert!(replayed.is_empty());
    assert_eq!(report.replayed, 0);
    assert_eq!(data.generation, 0);
    // The journal was re-published; appends work.
    store
        .append_all([&JournalRecord::Trace("fopen(X)".to_owned())], false)
        .unwrap();
    drop(store);
    let (_, _, after, _) = Store::open(&dir).unwrap();
    assert_eq!(after.len(), 1);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn foreign_file_as_journal_is_rejected_not_truncated() {
    let (dir, _) = populated_store("foreign");
    fs::write(
        dir.join(JOURNAL),
        b"#!/bin/sh\necho this is not a journal\n",
    )
    .unwrap();
    // Refusing to "recover" a file that was never a journal protects
    // against clobbering user data on a path mix-up.
    assert!(Store::open(&dir).is_err());
    fs::remove_dir_all(&dir).unwrap();
}
