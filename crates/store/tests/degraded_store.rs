//! Fail-stop durability at the store layer (DESIGN.md §17): an injected
//! write-path failure flips the store read-only, further writes are
//! refused with [`StoreError::Degraded`], and [`Store::recover`]
//! republishes known-good state onto fresh handles — never retrying an
//! fsync on a handle that already failed one.
//!
//! The fault plane is process-global, so these tests run in their own
//! integration binary and serialise on a local mutex.

use cable_store::corpus::SnapshotData;
use cable_store::{JournalRecord, Store, StoreError, TailState};
use cable_trace::{Trace, TraceSet, Vocab};
use cable_util::BitSet;
use std::fs;
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};

fn lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "cable-store-degraded-{}-{name}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn snapshot(generation: u64) -> SnapshotData {
    let mut vocab = Vocab::new();
    let mut traces = TraceSet::new();
    traces.push(Trace::parse("fopen(X) fclose(X)", &mut vocab).unwrap());
    SnapshotData {
        generation,
        n_attributes: 2,
        vocab,
        fa_text: "start s0\naccept s0\n".to_owned(),
        traces,
        labels: vec![],
        rows: vec![[0usize, 1].into_iter().collect()],
        concepts: vec![
            ([0usize].into_iter().collect(), BitSet::new()),
            (BitSet::new(), BitSet::full(2)),
        ],
    }
}

fn records() -> Vec<JournalRecord> {
    vec![
        JournalRecord::Trace("fopen(Y) fclose(Y)".to_owned()),
        JournalRecord::Label {
            class: 0,
            name: "good".to_owned(),
        },
        JournalRecord::Trace("fopen(Z) fread(Z)".to_owned()),
        JournalRecord::Trace("popen(X) pclose(X)".to_owned()),
    ]
}

fn counter(name: &str) -> u64 {
    cable_obs::registry().snapshot().counter(name).unwrap_or(0)
}

#[test]
fn fsync_failure_degrades_refuses_writes_and_recovery_restores_them() {
    let _l = lock();
    let dir = tmp_dir("fsync");
    let mut store = Store::create(&dir, &snapshot(0)).unwrap();
    store.append_all(&records()[..2], true).unwrap();
    let enters = counter("store.degraded.enter");
    let exits = counter("store.degraded.exit");
    let refusals = counter("store.degraded.refusals");

    // The append lands; the fsync fails. Fail-stop: the store degrades
    // in that same operation and the un-synced record is never
    // acknowledged.
    cable_guard::faults::install("5:io@store.fsync").unwrap();
    store.append(&records()[2]).unwrap();
    let err = store.sync().expect_err("injected fsync failure");
    cable_guard::faults::uninstall();
    assert!(matches!(err, StoreError::Io(_)), "{err}");
    assert!(store.is_degraded());
    assert_eq!(store.degraded_cause(), Some("fsync"));
    assert_eq!(counter("store.degraded.enter"), enters + 1);

    // Writes are refused with the declared error while degraded.
    let refused = store.append(&records()[3]).expect_err("read-only");
    assert!(
        matches!(&refused, StoreError::Degraded { cause } if cause == "fsync"),
        "{refused}"
    );
    assert_eq!(counter("store.degraded.refusals"), refusals + 1);

    // Recovery republishes the acknowledged state at the next
    // generation, onto fresh handles (the failed-fsync handle is never
    // fsync-retried), and restores writability.
    store.recover(&snapshot(1)).unwrap();
    assert!(!store.is_degraded());
    assert_eq!(store.generation(), 1);
    assert_eq!(counter("store.degraded.exit"), exits + 1);

    // The store is fully usable: post-recovery appends are durable and
    // a reopen replays exactly them — the un-acknowledged record from
    // the failed operation is gone with the journal reset.
    store.append_all(&records()[2..], true).unwrap();
    drop(store);
    let (_, data, replayed, report) = Store::open(&dir).unwrap();
    assert_eq!(data.generation, 1);
    assert_eq!(replayed, records()[2..]);
    assert_eq!(report.tail, TailState::Clean);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn short_write_leaves_a_torn_record_that_reopen_truncates() {
    let _l = lock();
    let dir = tmp_dir("short");
    let mut store = Store::create(&dir, &snapshot(0)).unwrap();
    store.append_all(&records()[..2], true).unwrap();

    // A short write commits half the record's bytes, then fails: the
    // torn frame a real partial write leaves.
    cable_guard::faults::install("5:io:short@store.journal.append").unwrap();
    let err = store.append(&records()[2]).expect_err("short write fires");
    cable_guard::faults::uninstall();
    assert!(matches!(err, StoreError::Io(_)), "{err}");
    assert_eq!(store.degraded_cause(), Some("journal-append"));

    // Discarding a still-degraded handle (the eviction path) exits the
    // degradation: enter - exit counts live degraded handles only.
    let exits = counter("store.degraded.exit");
    drop(store);
    assert_eq!(counter("store.degraded.exit"), exits + 1);

    // Crash while degraded, before any recovery: standard WAL recovery
    // truncates the torn tail and replays exactly the acknowledged
    // prefix.
    let (_, _, replayed, report) = Store::open(&dir).unwrap();
    assert_eq!(replayed, records()[..2]);
    assert_eq!(report.tail, TailState::Torn);
    assert!(report.discarded_bytes > 0);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn a_failed_batch_rolls_back_its_unacknowledged_frames() {
    let _l = lock();
    let dir = tmp_dir("rollback");
    let mut store = Store::create(&dir, &snapshot(0)).unwrap();
    store.append_all(&records()[..2], true).unwrap();

    // The batch's second append fails: its first record is already a
    // complete frame in the journal, but the caller is answered with an
    // error — nothing in this batch was ever acknowledged.
    cable_guard::faults::install("5:io@store.journal.append#2").unwrap();
    let err = store
        .append_all(&records()[2..], false)
        .expect_err("second append in the batch fires");
    cable_guard::faults::uninstall();
    assert!(matches!(err, StoreError::Io(_)), "{err}");
    assert_eq!(store.degraded_cause(), Some("journal-append"));

    // Rollback truncated the batch's frames away: an eviction-style
    // drop-and-reopen replays exactly the acknowledged prefix — the
    // unacked first record of the failed batch must not resurrect (the
    // client was told the batch failed and will retry all of it).
    drop(store);
    let (_, _, replayed, report) = Store::open(&dir).unwrap();
    assert_eq!(replayed, records()[..2]);
    assert_eq!(report.tail, TailState::Clean);
    assert_eq!(report.discarded_bytes, 0);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn enospc_flavour_surfaces_storage_full_and_degrades() {
    let _l = lock();
    let dir = tmp_dir("enospc");
    let mut store = Store::create(&dir, &snapshot(0)).unwrap();

    cable_guard::faults::install("5:io:enospc@store.journal.append").unwrap();
    let err = store.append(&records()[0]).expect_err("disk full fires");
    cable_guard::faults::uninstall();
    match &err {
        StoreError::Io(e) => assert_eq!(e.kind(), std::io::ErrorKind::StorageFull, "{e}"),
        other => panic!("expected an I/O error, got {other}"),
    }
    assert_eq!(store.degraded_cause(), Some("journal-append"));

    // Space freed: recovery restores writability in place.
    store.recover(&snapshot(1)).unwrap();
    store.append_all(&records()[..1], true).unwrap();
    drop(store);
    let (_, _, replayed, _) = Store::open(&dir).unwrap();
    assert_eq!(replayed, records()[..1]);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn recover_on_a_writable_store_is_rejected_cleanly() {
    let _l = lock();
    let dir = tmp_dir("noop");
    let mut store = Store::create(&dir, &snapshot(0)).unwrap();
    // Writable stores use compact() for generation bumps; recover() is
    // a no-op that leaves the store untouched.
    store.recover(&snapshot(1)).unwrap();
    assert_eq!(store.generation(), 0);
    assert!(!store.is_degraded());
    fs::remove_dir_all(&dir).unwrap();
}
