//! The miner's front end: scenario extraction.

use cable_trace::{canonicalize, ObjId, Trace, TraceSet, Vocab};
use std::collections::HashSet;

/// Extracts per-object scenario traces from program traces.
///
/// A *seed* is an operation name (typically a resource-creating call such
/// as `fopen` or `XCreateGC`). For every object that appears in a seed
/// event, the front end collects, in program order, every event that
/// mentions that object, and canonicalises the object id to `X`.
///
/// This reproduces the artifact of Strauss's dynamic dependence analysis:
/// short, canonical, per-object scenario traces.
///
/// # Examples
///
/// ```
/// use cable_strauss::FrontEnd;
/// use cable_trace::{Trace, Vocab};
///
/// let mut v = Vocab::new();
/// let program = Trace::parse("open(#1) open(#2) close(#2) close(#1)", &mut v).unwrap();
/// let fe = FrontEnd::new(&["open"]);
/// let scenarios = fe.extract(&program, &v);
/// assert_eq!(scenarios.len(), 2);
/// assert_eq!(scenarios[0].display(&v).to_string(), "open(X) close(X)");
/// ```
#[derive(Debug, Clone)]
pub struct FrontEnd {
    seed_ops: Vec<String>,
}

impl FrontEnd {
    /// Creates a front end with the given seed operation names.
    pub fn new<S: AsRef<str>>(seeds: &[S]) -> Self {
        FrontEnd {
            seed_ops: seeds.iter().map(|s| s.as_ref().to_owned()).collect(),
        }
    }

    /// The seed operation names.
    pub fn seed_ops(&self) -> &[String] {
        &self.seed_ops
    }

    /// Extracts the scenarios of one program trace, in order of seed-object
    /// first appearance.
    pub fn extract(&self, trace: &Trace, vocab: &Vocab) -> Vec<Trace> {
        let seeds: HashSet<_> = self
            .seed_ops
            .iter()
            .filter_map(|op| vocab.find_op(op))
            .collect();
        // Objects appearing in seed events, in first-appearance order.
        let mut seen: HashSet<ObjId> = HashSet::new();
        let mut roots: Vec<ObjId> = Vec::new();
        for e in trace.iter() {
            if seeds.contains(&e.op) {
                for obj in e.objects() {
                    if seen.insert(obj) {
                        roots.push(obj);
                    }
                }
            }
        }
        roots
            .into_iter()
            .map(|obj| {
                let mut scenario = Trace::new(
                    trace
                        .iter()
                        .filter(|e| e.mentions_obj(obj))
                        .cloned()
                        .collect(),
                );
                if let Some(p) = trace.provenance() {
                    scenario.set_provenance(p);
                }
                canonicalize(&scenario)
            })
            .collect()
    }

    /// Extracts the scenarios of a whole training set into one
    /// [`TraceSet`].
    pub fn extract_all(&self, traces: &[Trace], vocab: &Vocab) -> TraceSet {
        traces.iter().flat_map(|t| self.extract(t, vocab)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn follows_object_identity_through_interleaving() {
        let mut v = Vocab::new();
        let program = Trace::parse(
            "open(#1) open(#2) read(#1) read(#2) close(#1) close(#2)",
            &mut v,
        )
        .unwrap();
        let fe = FrontEnd::new(&["open"]);
        let scenarios = fe.extract(&program, &v);
        assert_eq!(scenarios.len(), 2);
        for s in &scenarios {
            assert_eq!(s.display(&v).to_string(), "open(X) read(X) close(X)");
        }
    }

    #[test]
    fn ignores_objects_without_seed() {
        let mut v = Vocab::new();
        let program = Trace::parse("open(#1) log(#9) close(#1)", &mut v).unwrap();
        let fe = FrontEnd::new(&["open"]);
        let scenarios = fe.extract(&program, &v);
        assert_eq!(scenarios.len(), 1);
        assert_eq!(scenarios[0].len(), 2);
    }

    #[test]
    fn unknown_seed_op_extracts_nothing() {
        let mut v = Vocab::new();
        let program = Trace::parse("open(#1)", &mut v).unwrap();
        let fe = FrontEnd::new(&["never_interned"]);
        assert!(fe.extract(&program, &v).is_empty());
    }

    #[test]
    fn multiple_seeds() {
        let mut v = Vocab::new();
        let program = Trace::parse("fopen(#1) popen(#2) fclose(#1) pclose(#2)", &mut v).unwrap();
        let fe = FrontEnd::new(&["fopen", "popen"]);
        let scenarios = fe.extract(&program, &v);
        assert_eq!(scenarios.len(), 2);
        assert_eq!(scenarios[0].display(&v).to_string(), "fopen(X) fclose(X)");
        assert_eq!(scenarios[1].display(&v).to_string(), "popen(X) pclose(X)");
    }

    #[test]
    fn provenance_propagates() {
        let mut v = Vocab::new();
        let mut program = Trace::parse("open(#1) close(#1)", &mut v).unwrap();
        program.set_provenance(7);
        let fe = FrontEnd::new(&["open"]);
        assert_eq!(fe.extract(&program, &v)[0].provenance(), Some(7));
    }

    #[test]
    fn extract_all_flattens() {
        let mut v = Vocab::new();
        let p1 = Trace::parse("open(#1) close(#1)", &mut v).unwrap();
        let p2 = Trace::parse("open(#2) open(#3)", &mut v).unwrap();
        let fe = FrontEnd::new(&["open"]);
        let set = fe.extract_all(&[p1, p2], &v);
        assert_eq!(set.len(), 3);
        // Canonicalisation makes the two leaked scenarios identical.
        assert_eq!(set.identical_classes().len(), 2);
    }

    #[test]
    fn seed_event_object_used_twice_counts_once() {
        let mut v = Vocab::new();
        let program = Trace::parse("open(#1) open(#1) close(#1)", &mut v).unwrap();
        let fe = FrontEnd::new(&["open"]);
        let scenarios = fe.extract(&program, &v);
        assert_eq!(scenarios.len(), 1);
        assert_eq!(scenarios[0].len(), 3);
    }
}
