//! Strauss: the specification miner (Figure 7).
//!
//! Strauss has a front end and a back end (§2.2):
//!
//! * the [`FrontEnd`] extracts *scenario traces* from a training set of
//!   program execution traces: starting from each *seed* event it follows
//!   the object identities threaded through event arguments, collects the
//!   per-object event sequence, and canonicalises object ids to variables;
//! * the [`BackEnd`] uses machine-learning techniques (here: the
//!   sk-strings or k-tails learner from [`cable_learn`]) to learn a
//!   specification FA that accepts the scenario traces, optionally
//!   *coring* away low-frequency transitions — the naive error-removal
//!   mechanism this paper's Cable supersedes.
//!
//! The [`Miner`] couples the two, and [`Miner::remine`] reruns the back
//! end on the traces a Cable session labelled `good` (§2.2 step 3).

pub mod back;
pub mod front;
pub mod miner;

pub use back::{BackEnd, Learner};
pub use front::FrontEnd;
pub use miner::{MinedSpec, Miner};
