//! The end-to-end miner.

use crate::back::BackEnd;
use crate::front::FrontEnd;
use cable_fa::Fa;
use cable_obs::{CounterHandle, HistogramHandle, Span};
use cable_trace::{Trace, TraceSet, Vocab};

/// End-to-end mining runs.
static MINE_RUNS: CounterHandle = CounterHandle::new("strauss.miner.runs");
/// Scenario traces extracted by the front end across all runs.
static SCENARIOS_MINED: CounterHandle = CounterHandle::new("strauss.miner.scenarios");
/// Re-mining runs on expert-labeled `good` subsets.
static REMINE_RUNS: CounterHandle = CounterHandle::new("strauss.miner.remine_runs");
/// Wall-clock cost of end-to-end mining runs.
static MINE_NS: HistogramHandle = HistogramHandle::new("strauss.miner.mine_ns");

/// A mined specification: the learned FA together with the scenario
/// traces it was learned from (which a Cable session then debugs).
#[derive(Debug, Clone)]
pub struct MinedSpec {
    /// The learned (possibly buggy) specification.
    pub fa: Fa,
    /// The scenario traces extracted by the front end.
    pub scenarios: TraceSet,
}

/// Front end + back end (Figure 7).
#[derive(Debug, Clone, Default)]
pub struct Miner {
    /// The scenario extractor.
    pub front: FrontEnd,
    /// The learner.
    pub back: BackEnd,
}

impl Default for FrontEnd {
    fn default() -> Self {
        FrontEnd::new::<&str>(&[])
    }
}

impl Miner {
    /// Creates a miner with the given seeds and the default back end.
    pub fn new<S: AsRef<str>>(seeds: &[S]) -> Self {
        Miner {
            front: FrontEnd::new(seeds),
            back: BackEnd::default(),
        }
    }

    /// Mines a specification from program traces.
    pub fn mine(&self, program_traces: &[Trace], vocab: &Vocab) -> MinedSpec {
        let _span = Span::enter("strauss.miner.mine", &MINE_NS);
        MINE_RUNS.get().incr();
        let scenarios = self.front.extract_all(program_traces, vocab);
        SCENARIOS_MINED.get().add(scenarios.len() as u64);
        let fa = self.back.mine_set(&scenarios);
        MinedSpec { fa, scenarios }
    }

    /// Re-runs the back end on a subset of scenarios — step 3 of §2.2:
    /// after the expert labels traces in Cable, the miner is rerun on the
    /// traces labelled `good`.
    pub fn remine(&self, good_scenarios: &[Trace]) -> Fa {
        REMINE_RUNS.get().incr();
        self.back.mine(good_scenarios)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_mining() {
        let mut v = Vocab::new();
        let programs = vec![
            Trace::parse("open(#1) read(#1) close(#1) open(#2) close(#2)", &mut v).unwrap(),
            Trace::parse("open(#3) close(#3)", &mut v).unwrap(),
        ];
        let miner = Miner::new(&["open"]);
        let mined = miner.mine(&programs, &v);
        assert_eq!(mined.scenarios.len(), 3);
        let good = Trace::parse("open(X) close(X)", &mut v).unwrap();
        assert!(mined.fa.accepts(&good));
    }

    #[test]
    fn remine_drops_bad_traces() {
        let mut v = Vocab::new();
        // One program leaks (#2 never closed).
        let programs = vec![Trace::parse("open(#1) close(#1) open(#2)", &mut v).unwrap()];
        let miner = Miner::new(&["open"]);
        let mined = miner.mine(&programs, &v);
        let leak = Trace::parse("open(X)", &mut v).unwrap();
        assert!(mined.fa.accepts(&leak), "buggy spec accepts the leak");
        // Keep only the good scenario and remine.
        let good: Vec<Trace> = mined
            .scenarios
            .iter()
            .map(|(_, t)| t.clone())
            .filter(|t| t.len() == 2)
            .collect();
        let fixed = miner.remine(&good);
        assert!(!fixed.accepts(&leak), "fixed spec rejects the leak");
        assert!(fixed.accepts(&good[0]));
    }
}
