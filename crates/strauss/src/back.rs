//! The miner's back end: learning a specification from scenarios.

use cable_fa::Fa;
use cable_learn::{KTails, SkStrings};
use cable_trace::{Trace, TraceSet};

/// Which automaton learner the back end uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Learner {
    /// Raman & Patrick's sk-strings (the paper's choice).
    SkStrings(SkStrings),
    /// Classical k-tails.
    KTails(KTails),
}

impl Default for Learner {
    fn default() -> Self {
        Learner::SkStrings(SkStrings::default())
    }
}

/// The back end: a learner plus an optional coring threshold.
///
/// *Coring* — dropping transitions traversed by fewer than
/// `coring_threshold` training traces — is the naive error-removal
/// mechanism of the original Strauss that §6 contrasts with Cable.
///
/// # Examples
///
/// ```
/// use cable_strauss::BackEnd;
/// use cable_trace::{Trace, Vocab};
///
/// let mut v = Vocab::new();
/// let traces = vec![
///     Trace::parse("open(X) close(X)", &mut v).unwrap(),
///     Trace::parse("open(X) read(X) close(X)", &mut v).unwrap(),
/// ];
/// let fa = BackEnd::default().mine(&traces);
/// assert!(fa.accepts(&traces[0]));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BackEnd {
    /// The learner.
    pub learner: Learner,
    /// If set, drop learned transitions with traversal count below this.
    pub coring_threshold: Option<u64>,
}

impl BackEnd {
    /// Mines a specification FA from scenario traces.
    pub fn mine(&self, scenarios: &[Trace]) -> Fa {
        let counted = match self.learner {
            Learner::SkStrings(l) => l.learn_counted(scenarios),
            Learner::KTails(l) => l.learn_counted(scenarios),
        };
        match self.coring_threshold {
            Some(min) => counted.to_fa_cored(min),
            None => counted.to_fa(),
        }
    }

    /// Mines from a [`TraceSet`] (convenience for re-mining labelled
    /// traces).
    pub fn mine_set(&self, scenarios: &TraceSet) -> Fa {
        let traces: Vec<Trace> = scenarios.iter().map(|(_, t)| t.clone()).collect();
        self.mine(&traces)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cable_trace::Vocab;

    fn traces(texts: &[&str], v: &mut Vocab) -> Vec<Trace> {
        texts.iter().map(|t| Trace::parse(t, v).unwrap()).collect()
    }

    #[test]
    fn mines_with_default_learner() {
        let mut v = Vocab::new();
        let ts = traces(&["open(X) close(X)", "open(X) read(X) close(X)"], &mut v);
        let fa = BackEnd::default().mine(&ts);
        for t in &ts {
            assert!(fa.accepts(t));
        }
    }

    #[test]
    fn ktails_variant_also_works() {
        let mut v = Vocab::new();
        let ts = traces(&["a(X) b(X)", "a(X) b(X)"], &mut v);
        let be = BackEnd {
            learner: Learner::KTails(KTails { k: 2 }),
            coring_threshold: None,
        };
        let fa = be.mine(&ts);
        assert!(fa.accepts(&ts[0]));
    }

    #[test]
    fn coring_drops_the_rare_error() {
        let mut v = Vocab::new();
        // Nine good traces, one erroneous.
        let mut ts = Vec::new();
        for _ in 0..9 {
            ts.push(Trace::parse("open(X) close(X)", &mut v).unwrap());
        }
        ts.push(Trace::parse("open(X) leak_marker(X)", &mut v).unwrap());
        let be = BackEnd {
            learner: Learner::SkStrings(SkStrings {
                k: 3,
                s_percent: 100.0,
            }),
            coring_threshold: Some(3),
        };
        let fa = be.mine(&ts);
        assert!(fa.accepts(&ts[0]));
        assert!(!fa.accepts(&ts[9]), "cored away");
    }

    #[test]
    fn mine_set_matches_mine() {
        let mut v = Vocab::new();
        let ts = traces(&["a(X)", "a(X) b(X)"], &mut v);
        let set: TraceSet = ts.iter().cloned().collect();
        let be = BackEnd::default();
        assert!(be.mine(&ts).equivalent(&be.mine_set(&set)));
    }
}
