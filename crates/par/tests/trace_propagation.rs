//! Trace-context propagation across the work-stealing pool.
//!
//! The contract under test (DESIGN.md §16): a request's `TraceCtx`
//! follows its work onto whichever worker steals it, span ids are
//! minted from deterministic path tags (`CHUNK_TAG`/`SPAWN_TAG` plus
//! in-frame sequence numbers) rather than thread identity, and each
//! request collects into its own tree. Concretely:
//!
//! * the same request shape yields the *bit-identical* span id set on
//!   1, 2, and 8 logical threads (sequential vs stolen execution);
//! * every collected span chains to the request root through parent
//!   links — no orphans — and every recorder event minted under the
//!   request carries its trace id;
//! * two requests running concurrently on one shared pool never bleed
//!   spans into each other's trees.
//!
//! These tests flip the process-wide recording flag, so they live in
//! their own integration-test process and serialize on a local mutex.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Barrier, Mutex};

use cable_obs::context::{self, FinishedTrace, TraceCtx};
use cable_obs::recorder::{self, EventKind};
use cable_par::Pool;

/// Recording is process-wide state; run one test at a time.
static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

/// One request of fixed shape: a 32-item `par_map` whose every item
/// opens a span, then a scope with three spawned units that each open
/// a span and run a nested 8-item `par_map` — the nested-steal case.
fn run_request(pool: &Pool, seed: u64, seq: u64) -> FinishedTrace {
    let ctx = TraceCtx::mint(seed, seq);
    let guard = context::begin_request(ctx, "http.request", 500);
    let items: Vec<u64> = (0..32).collect();
    let doubled = pool.par_map("tp.outer", &items, |&x| {
        recorder::begin("tp.item");
        recorder::end("tp.item");
        x * 2
    });
    assert_eq!(doubled[31], 62);
    let small: Vec<u64> = (0..8).collect();
    pool.scope(|s| {
        for _ in 0..3 {
            s.spawn(|| {
                recorder::begin("tp.spawned");
                let sums = pool.par_map("tp.inner", &small, |&x| x + 1);
                assert_eq!(sums.iter().sum::<u64>(), 36);
                recorder::end("tp.spawned");
            });
        }
    });
    guard.finish()
}

/// `(name, span, parent)` triples, sorted — the timing-free identity of
/// a span tree.
fn shape(trace: &FinishedTrace) -> Vec<(&'static str, u64, u64)> {
    let mut out: Vec<_> = trace
        .spans
        .iter()
        .map(|s| (s.name, s.span, s.parent))
        .collect();
    out.sort_unstable();
    out
}

fn count(trace: &FinishedTrace, name: &str) -> usize {
    trace.spans.iter().filter(|s| s.name == name).count()
}

#[test]
fn span_ids_are_bit_identical_across_worker_counts() {
    let _guard = lock();
    recorder::set_recording(true);
    let mut shapes = Vec::new();
    for threads in [1usize, 2, 8] {
        let pool = Pool::new(threads);
        let trace = run_request(&pool, 7, 1);
        assert_eq!(trace.dropped, 0, "{threads} threads: spans were dropped");
        // The shape is non-trivial: every unit of work left a span.
        assert_eq!(count(&trace, "tp.item"), 32, "{threads} threads");
        assert_eq!(count(&trace, "tp.spawned"), 3, "{threads} threads");
        assert_eq!(count(&trace, "http.request"), 1, "{threads} threads");
        assert_eq!(count(&trace, "wait.queue"), 1, "{threads} threads");
        assert!(count(&trace, "tp.outer") >= 1, "{threads} threads");
        assert_eq!(count(&trace, "tp.inner") % 3, 0, "{threads} threads");
        shapes.push((threads, shape(&trace)));
    }
    let (_, reference) = &shapes[0];
    for (threads, s) in &shapes[1..] {
        assert_eq!(
            s, reference,
            "span ids on {threads} threads differ from the sequential run"
        );
    }
}

#[test]
fn every_span_chains_to_the_request_root() {
    let _guard = lock();
    recorder::set_recording(true);
    let pool = Pool::new(8);
    let trace = run_request(&pool, 11, 2);
    let root = trace.ctx.span_id;
    let parents: BTreeMap<u64, u64> = trace.spans.iter().map(|s| (s.span, s.parent)).collect();
    assert_eq!(parents.len(), trace.spans.len(), "span ids repeat");
    assert_eq!(
        parents.get(&root),
        Some(&0),
        "root span must have no parent"
    );
    for s in &trace.spans {
        let mut cursor = s.span;
        let mut hops = 0;
        while cursor != root {
            cursor = *parents.get(&cursor).unwrap_or_else(|| {
                panic!("span {:x} ({}) is orphaned at {:x}", s.span, s.name, cursor)
            });
            hops += 1;
            assert!(hops <= parents.len(), "parent cycle at {:x}", s.span);
        }
    }
    // The flight recorder saw the same work: every event minted under
    // this trace id carries a span id from the collected tree.
    let ids: BTreeSet<u64> = parents.keys().copied().collect();
    let mut seen = 0usize;
    for lane in recorder::snapshot() {
        for event in &lane.events {
            if (event.trace_hi, event.trace_lo) != (trace.ctx.trace_hi, trace.ctx.trace_lo) {
                continue;
            }
            seen += 1;
            assert_ne!(event.span, 0, "traced event {} has no span id", event.name);
            if event.kind == EventKind::Begin {
                assert!(
                    ids.contains(&event.span),
                    "event {} span {:x} is not in the collected tree",
                    event.name,
                    event.span
                );
            }
        }
    }
    assert!(seen > 0, "no recorder events carried the trace id");
}

#[test]
fn concurrent_requests_do_not_bleed_into_each_other() {
    let _guard = lock();
    recorder::set_recording(true);
    let pool = Pool::new(8);
    let barrier = Barrier::new(2);
    let (a, b) = std::thread::scope(|s| {
        let run = |seq: u64| {
            let pool = &pool;
            let barrier = &barrier;
            s.spawn(move || {
                barrier.wait();
                run_request(pool, 13, seq)
            })
        };
        let a = run(1);
        let b = run(2);
        (a.join().expect("request a"), b.join().expect("request b"))
    });
    assert_ne!(
        (a.ctx.trace_hi, a.ctx.trace_lo),
        (b.ctx.trace_hi, b.ctx.trace_lo)
    );
    // Same shape of work, fully disjoint span ids: nothing leaked from
    // one request's workers into the other's collector.
    let names = |t: &FinishedTrace| {
        let mut v: Vec<&str> = t.spans.iter().map(|s| s.name).collect();
        v.sort_unstable();
        v
    };
    assert_eq!(names(&a), names(&b));
    let ids_a: BTreeSet<u64> = a.spans.iter().map(|s| s.span).collect();
    let ids_b: BTreeSet<u64> = b.spans.iter().map(|s| s.span).collect();
    assert!(
        ids_a.is_disjoint(&ids_b),
        "span ids shared between concurrent requests"
    );
}
