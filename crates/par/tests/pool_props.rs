//! Loom-style stress tests without loom: seeded loops with randomized
//! sleep jitter perturb the schedule across pool sizes, and the
//! determinism invariants must hold on every iteration.

use cable_par::Pool;
use cable_util::rng::{seeded, Rng};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// Sleeps 0–200µs, drawn from the given RNG stream — enough jitter to
/// shuffle unit completion order on every pool size.
fn jitter<R: Rng>(rng: &mut R) {
    let us = rng.gen_range(0u64..200);
    if us > 0 {
        std::thread::sleep(Duration::from_micros(us));
    }
}

#[test]
fn par_map_is_index_ordered_under_jitter() {
    let pools = [Pool::new(1), Pool::new(2), Pool::new(8)];
    let mut seed_rng = seeded(0xC0FFEE);
    for iteration in 0u64..12 {
        let n = 1 + (iteration as usize * 37) % 300;
        let items: Vec<u64> = (0..n as u64).collect();
        let expected: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for pool in &pools {
            let jitter_seed = seed_rng.gen::<u64>();
            let out = pool.par_map("stress.map", &items, |&x| {
                // Per-unit jitter stream: deterministic seed, but the
                // resulting schedule varies with the worker count.
                let mut rng = seeded(jitter_seed ^ x);
                jitter(&mut rng);
                x * x + 1
            });
            assert_eq!(
                out,
                expected,
                "iteration {iteration}, {} threads, n = {n}",
                pool.threads()
            );
        }
    }
}

#[test]
fn par_reduce_grouping_is_schedule_independent_under_jitter() {
    // String concatenation is associative but not commutative: any
    // grouping or combine-order drift across schedules changes the
    // result, so cross-pool equality is a sharp invariant.
    let pools = [Pool::new(1), Pool::new(2), Pool::new(8)];
    let mut seed_rng = seeded(0xBEEF);
    for iteration in 0u64..12 {
        let n = 1 + (iteration as usize * 53) % 400;
        let items: Vec<String> = (0..n).map(|i| format!("{i};")).collect();
        let expected = items.concat();
        for pool in &pools {
            let jitter_seed = seed_rng.gen::<u64>();
            let out = pool.par_reduce(
                "stress.reduce",
                &items,
                String::new,
                |acc, s| {
                    let mut rng = seeded(jitter_seed ^ s.len() as u64 ^ acc.len() as u64);
                    jitter(&mut rng);
                    acc + s
                },
                |a, b| a + &b,
            );
            assert_eq!(
                out,
                expected,
                "iteration {iteration}, {} threads, n = {n}",
                pool.threads()
            );
        }
    }
}

#[test]
fn par_reduce_sums_match_sequential_under_jitter() {
    let pools = [Pool::new(2), Pool::new(8)];
    let mut seed_rng = seeded(0x5EED);
    for iteration in 0u64..8 {
        let n = 64 + (iteration as usize * 91) % 500;
        let items: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(0x9E3779B9)).collect();
        let expected: u64 = items.iter().fold(0u64, |a, &b| a.wrapping_add(b));
        for pool in &pools {
            let jitter_seed = seed_rng.gen::<u64>();
            let sum = pool.par_reduce(
                "stress.sum",
                &items,
                || 0u64,
                |acc, &x| {
                    let mut rng = seeded(jitter_seed ^ x);
                    jitter(&mut rng);
                    acc.wrapping_add(x)
                },
                |a, b| a.wrapping_add(b),
            );
            assert_eq!(
                sum,
                expected,
                "iteration {iteration}, {} threads",
                pool.threads()
            );
        }
    }
}

#[test]
fn scoped_units_all_run_despite_jitter() {
    let pool = Pool::new(8);
    let mut rng = seeded(7);
    for _ in 0..6 {
        let counter = AtomicUsize::new(0);
        let units = rng.gen_range(1usize..128);
        let jitter_seed = rng.gen::<u64>();
        pool.scope(|s| {
            for u in 0..units {
                let counter = &counter;
                s.spawn(move || {
                    let mut rng = seeded(jitter_seed ^ u as u64);
                    jitter(&mut rng);
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), units);
    }
}

#[test]
fn nested_par_map_inside_par_map_stays_ordered() {
    // The table2 shape: an outer fan-out whose units run inner parallel
    // stages on the same pool. The helping wait must keep this both
    // deadlock-free and deterministic.
    let pool = Pool::new(4);
    let outer: Vec<u64> = (0..20).collect();
    let result = pool.par_map("stress.outer", &outer, |&o| {
        let inner: Vec<u64> = (0..30).map(|i| o * 100 + i).collect();
        pool.par_map("stress.inner", &inner, |&x| x * 2)
            .into_iter()
            .sum::<u64>()
    });
    let expected: Vec<u64> = outer
        .iter()
        .map(|&o| (0..30).map(|i| (o * 100 + i) * 2).sum())
        .collect();
    assert_eq!(result, expected);
}

#[test]
fn global_pool_tracks_task_counters() {
    let before = cable_obs::registry().snapshot();
    let items: Vec<u64> = (0..200).collect();
    let _ = cable_par::par_map("stress.counted", &items, |&x| x + 1);
    let delta = cable_obs::registry().snapshot().delta_since(&before);
    // With a single-thread global pool the sequential path spawns no
    // units; otherwise each chunk is one task. Either way the counter
    // is consistent with the pool size.
    let tasks = delta.counter("par.tasks").unwrap_or(0);
    if cable_par::threads() > 1 {
        assert!(tasks >= 1, "chunks should be spawned as tasks");
    } else {
        assert_eq!(tasks, 0, "sequential path spawns nothing");
    }
}
