//! Panic isolation at `cable-par` task boundaries: a panicking unit —
//! genuine or injected — poisons its scope, cancels its siblings, and
//! surfaces as a structured error at the `cable_guard::contain`
//! boundary, with the pool (and process) fully serviceable afterwards.
//!
//! These tests install process-global fault planes and cancellations,
//! so they live in their own integration binary and serialise on a
//! local mutex: any scope running in the same process while a
//! `panic@par.task` rule is armed could draw the firing hit.

use cable_guard::{faults, GuardError};
use cable_par::Pool;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};

fn lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// The tentpole acceptance criterion: an injected panic in any worker
/// surfaces as a structured error on the caller, and the same process
/// then runs a clean pipeline successfully.
#[test]
fn injected_panic_surfaces_as_structured_error_and_process_keeps_serving() {
    let _l = lock();
    let pool = Pool::new(4);
    let items: Vec<u64> = (0..512).collect();

    faults::install("7:panic@par.task#2").unwrap();
    let result = cable_guard::contain(|| pool.par_map("test.faulty", &items, |&x| x * 2));
    faults::uninstall();

    match result {
        Err(GuardError::TaskPanic { message }) => {
            assert!(message.contains("injected fault"), "{message}");
            assert!(message.contains("panic@par.task"), "{message}");
        }
        other => panic!("expected a contained task panic, got {other:?}"),
    }

    // The pool survives: a subsequent clean pipeline on the very same
    // pool returns complete, correct results.
    let clean = pool.par_map("test.clean", &items, |&x| x * 2);
    assert_eq!(clean, items.iter().map(|&x| x * 2).collect::<Vec<u64>>());
    assert!(!cable_guard::cancel_requested(), "cancel window was closed");
}

/// A genuine unit panic is counted under `par.task_panics`; tunnelled
/// guard payloads (budget trips, cancellations) are not.
#[test]
fn task_panic_counter_counts_genuine_panics_only() {
    let _l = lock();
    let pool = Pool::new(2);
    let before = cable_obs::registry().snapshot();

    let result = cable_guard::contain(|| {
        pool.scope(|s| {
            s.spawn(|| panic!("genuine failure"));
        })
    });
    assert_eq!(
        result,
        Err(GuardError::TaskPanic {
            message: "genuine failure".to_owned()
        })
    );

    let result = cable_guard::contain(|| {
        pool.scope(|s| {
            s.spawn(|| {
                cable_guard::cancel();
                cable_guard::cancel_point("test.bail");
            });
        })
    });
    assert_eq!(result, Err(GuardError::Cancelled));
    assert!(!cable_guard::cancel_requested());

    let delta = cable_obs::registry().snapshot().delta_since(&before);
    assert_eq!(delta.counter("par.task_panics"), Some(1));
}

/// A panicking unit poisons its scope: queued siblings are skipped and
/// in-flight ones bail at their next cancel point, so the scope winds
/// down promptly instead of finishing a doomed fan-out.
#[test]
fn poisoned_scope_skips_queued_units() {
    let _l = lock();
    // One logical thread beyond the caller, so queued units drain one at
    // a time and everything behind the panicking unit is still queued
    // when the poison lands.
    let pool = Pool::new(2);
    let ran = AtomicUsize::new(0);
    let result = cable_guard::contain(|| {
        pool.scope(|s| {
            s.spawn(|| panic!("first unit fails"));
            for _ in 0..64 {
                s.spawn(|| {
                    ran.fetch_add(1, Ordering::Relaxed);
                    // Siblings must be slower than the panic's unwind:
                    // a bare fetch_add lets all 64 drain before the
                    // poison flag lands, turning this test into a race
                    // on unwinding speed. A short sleep per unit keeps
                    // the queue occupied well past any plausible
                    // catch-and-poison latency.
                    std::thread::sleep(std::time::Duration::from_millis(1));
                });
            }
        })
    });
    assert!(matches!(result, Err(GuardError::TaskPanic { .. })));
    // The panic poisons the scope as soon as the first unit runs; units
    // that had not started by then never run. (How many slipped through
    // first depends on scheduling; all 64 running would mean no
    // poisoning at all.)
    assert!(
        ran.load(Ordering::Relaxed) < 64,
        "poisoned scope must skip queued units"
    );
}
