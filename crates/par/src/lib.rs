//! `cable-par`: the deterministic parallel executor of the Cable
//! workspace.
//!
//! Every stage of the reproduction pipeline — executed-transition sweeps,
//! context construction, Godin insertion, workload generation, the
//! per-specification table loop — decomposes into independent units, and
//! the ROADMAP's north star is "as fast as the hardware allows". This
//! crate supplies the executor those stages share, with **no dependencies
//! beyond `std`** (the workspace builds offline): a work-stealing thread
//! pool hand-rolled on `std::sync` primitives, per-worker deques plus a
//! global injector, sized from [`std::thread::available_parallelism`].
//!
//! # Determinism contract
//!
//! The paper's experiments are replayable bit-for-bit from a seed, and
//! parallelism must not break that. The contract:
//!
//! * [`par_map`] returns results in **input index order**, whatever
//!   schedule the workers run;
//! * [`par_reduce`] folds fixed chunks whose boundaries depend only on
//!   the input length — never on the worker count — and combines the
//!   per-chunk results in chunk order;
//! * `CABLE_PAR=1` (or [`configure`]`(1)`, or a single-core machine)
//!   takes a pure sequential path that produces the very same values.
//!
//! So any pipeline artifact computed through this crate is identical for
//! every worker count; only wall-clock time changes.
//!
//! # Sizing
//!
//! The global pool sizes itself once, on first use, from (in order):
//! [`configure`] (the CLIs' `--threads N`), the `CABLE_PAR` environment
//! variable, then [`std::thread::available_parallelism`].
//!
//! # Observability
//!
//! The pool feeds `cable-obs`: counters `par.tasks`, `par.steals` and
//! `par.queue_max`, and — while observation is enabled — per-stage
//! histograms `par.stage.<label>.busy_ns` / `par.stage.<label>.wall_ns`
//! whose ratio is the per-stage speedup line of the `--stats` report.
//!
//! # Examples
//!
//! ```
//! let squares = cable_par::par_map("doc.squares", &[1u64, 2, 3, 4], |x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//!
//! let sum = cable_par::par_reduce(
//!     "doc.sum",
//!     &[1u64, 2, 3, 4],
//!     || 0u64,
//!     |acc, x| acc + x,
//!     |a, b| a + b,
//! );
//! assert_eq!(sum, 10);
//! ```

mod pool;

pub use pool::{Pool, Scope};

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

static GLOBAL: OnceLock<Pool> = OnceLock::new();
static CONFIGURED: AtomicUsize = AtomicUsize::new(0);

/// Requests a thread count for the global pool (the CLIs' `--threads N`).
///
/// Takes effect only before the pool's first use; returns whether the
/// request was recorded. `0` is clamped to `1`.
pub fn configure(n: usize) -> bool {
    if GLOBAL.get().is_some() {
        return false;
    }
    CONFIGURED.store(n.max(1), Ordering::Relaxed);
    GLOBAL.get().is_none()
}

/// The number of logical threads the global pool runs units on
/// (workers plus the calling thread, which helps while it waits).
pub fn threads() -> usize {
    global().threads()
}

/// The global pool, created on first use.
pub fn global() -> &'static Pool {
    GLOBAL.get_or_init(|| Pool::new(resolve_threads()))
}

/// The thread count the global pool will use: [`configure`], then
/// `CABLE_PAR`, then [`std::thread::available_parallelism`].
fn resolve_threads() -> usize {
    let configured = CONFIGURED.load(Ordering::Relaxed);
    if configured > 0 {
        return configured;
    }
    if let Ok(v) = std::env::var("CABLE_PAR") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `f` with a [`Scope`] on the global pool; every unit spawned into
/// the scope completes before this returns. Panics from units are
/// propagated.
pub fn scope<'env, R>(f: impl FnOnce(&Scope<'env>) -> R) -> R {
    global().scope(f)
}

/// Maps `f` over `items` on the global pool, returning results in input
/// order regardless of worker count or schedule. See [`Pool::par_map`].
pub fn par_map<T, U, F>(label: &'static str, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    global().par_map(label, items, f)
}

/// Like [`par_map`], passing each item's index too.
pub fn par_map_indexed<T, U, F>(label: &'static str, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    global().par_map_indexed(label, items, f)
}

/// Reduces `items` on the global pool with deterministic chunking. See
/// [`Pool::par_reduce`].
pub fn par_reduce<T, U, I, F, G>(
    label: &'static str,
    items: &[T],
    identity: I,
    fold: F,
    combine: G,
) -> U
where
    T: Sync,
    U: Send,
    I: Fn() -> U + Sync,
    F: Fn(U, &T) -> U + Sync,
    G: Fn(U, U) -> U,
{
    global().par_reduce(label, items, identity, fold, combine)
}

/// The fixed chunk size for `n` items: depends only on `n`, so chunk
/// boundaries — and therefore [`par_reduce`] groupings — are identical
/// for every worker count. Targets at most 64 chunks.
pub(crate) fn chunk_size(n: usize) -> usize {
    n.div_ceil(64).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunking_depends_only_on_length() {
        assert_eq!(chunk_size(1), 1);
        assert_eq!(chunk_size(64), 1);
        assert_eq!(chunk_size(65), 2);
        assert_eq!(chunk_size(1000), 16);
    }

    #[test]
    fn global_map_is_index_ordered() {
        let items: Vec<usize> = (0..500).collect();
        let out = par_map("test.order", &items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn configure_after_first_use_is_rejected() {
        let _ = threads(); // force pool creation
        assert!(!configure(4));
    }
}
