//! The work-stealing pool: per-worker deques, a global injector, scoped
//! spawns, and the deterministic `par_map` / `par_reduce` combinators.
//!
//! The design is the crossbeam shape hand-rolled on `std::sync`: each
//! worker owns a deque it pushes and pops at the back (LIFO, for cache
//! locality of nested spawns) while thieves take from the front (FIFO,
//! oldest — largest — units first); external spawns land in a shared
//! injector queue. Every queue is a `Mutex<VecDeque>` rather than a
//! lock-free chase-lev deque — the pipeline's units are coarse (a whole
//! trace sweep, a whole shard build), so queue contention is noise, and
//! `std`-only is a workspace policy.
//!
//! Deadlock freedom under nesting comes from a *helping* wait: any thread
//! blocked on a [`Scope`] runs pending pool units while it waits, so a
//! worker whose unit opens a nested scope (the table2 fan-out builds
//! sessions whose lattice builds shard) never wedges the pool.

use cable_obs::{context, CounterHandle, HistogramHandle};
use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Units spawned into the pool (scoped or chunked).
static TASKS: CounterHandle = CounterHandle::new("par.tasks");
/// Units taken from another worker's deque.
static STEALS: CounterHandle = CounterHandle::new("par.steals");
/// High-water mark of queued units across all queues.
static QUEUE_MAX: CounterHandle = CounterHandle::new("par.queue_max");
/// Genuine unit panics contained at the task boundary (guard unwinds —
/// budget trips and cancellations tunnelled out of closures — are not
/// panics and are not counted here).
static TASK_PANICS: CounterHandle = CounterHandle::new("par.task_panics");
/// Time idle workers spend parked on the condvar, microseconds. The
/// contention families on `/metrics` read this against `wait.slots.us`
/// and friends: high park time with low queue wait means the pool is
/// starved for work, not stuck on locks.
static WAIT_PARK: HistogramHandle = HistogramHandle::new("wait.park.us");

type Task = Box<dyn FnOnce() + Send + 'static>;

/// How long an idle worker or a waiting scope sleeps before re-checking
/// the queues. Bounds the cost of a missed wakeup without busy-waiting.
const IDLE_POLL: Duration = Duration::from_millis(1);

thread_local! {
    /// `(pool identity, worker index)` when the current thread is a pool
    /// worker — lets spawns land in the worker's own deque.
    static WORKER: Cell<Option<(usize, usize)>> = const { Cell::new(None) };
}

struct Shared {
    injector: Mutex<VecDeque<Task>>,
    deques: Vec<Mutex<VecDeque<Task>>>,
    /// Signalled after a push; sleepers also time out (see [`IDLE_POLL`]).
    idle: Condvar,
    shutdown: AtomicBool,
    /// Currently queued (not yet running) units, for `par.queue_max`.
    queued: AtomicU64,
    threads: usize,
}

impl Shared {
    fn identity(self: &Arc<Self>) -> usize {
        Arc::as_ptr(self) as usize
    }

    /// The current thread's worker index in this pool, if any.
    fn worker_index(self: &Arc<Self>) -> Option<usize> {
        WORKER.with(|w| match w.get() {
            Some((id, index)) if id == self.identity() => Some(index),
            _ => None,
        })
    }

    fn push(self: &Arc<Self>, task: Task) {
        TASKS.get().incr();
        match self.worker_index() {
            Some(w) => self.deques[w]
                .lock()
                .expect("par deque poisoned")
                .push_back(task),
            None => self
                .injector
                .lock()
                .expect("par injector poisoned")
                .push_back(task),
        }
        let queued = self.queued.fetch_add(1, Ordering::Relaxed) + 1;
        QUEUE_MAX.get().record_max(queued);
        self.idle.notify_one();
    }

    /// Takes one unit: own deque back, then injector front, then steal
    /// from the other deques front.
    fn find_task(self: &Arc<Self>) -> Option<Task> {
        let me = self.worker_index();
        if let Some(w) = me {
            if let Some(t) = self.deques[w]
                .lock()
                .expect("par deque poisoned")
                .pop_back()
            {
                self.queued.fetch_sub(1, Ordering::Relaxed);
                return Some(t);
            }
        }
        if let Some(t) = self
            .injector
            .lock()
            .expect("par injector poisoned")
            .pop_front()
        {
            self.queued.fetch_sub(1, Ordering::Relaxed);
            return Some(t);
        }
        let n = self.deques.len();
        let start = me.map_or(0, |w| w + 1);
        for i in 0..n {
            let victim = (start + i) % n;
            if Some(victim) == me {
                continue;
            }
            if let Some(t) = self.deques[victim]
                .lock()
                .expect("par deque poisoned")
                .pop_front()
            {
                self.queued.fetch_sub(1, Ordering::Relaxed);
                STEALS.get().incr();
                cable_obs::recorder::instant("par.steal");
                return Some(t);
            }
        }
        None
    }
}

fn run_task(task: Task) {
    // Unit panics are contained here and reported through the owning
    // scope (the spawn wrapper); a stray panic must not kill a worker.
    let _ = catch_unwind(AssertUnwindSafe(task));
}

fn worker_loop(shared: Arc<Shared>, index: usize) {
    WORKER.with(|w| w.set(Some((shared.identity(), index))));
    // Give this worker a recorder lane up front (labelled by the thread
    // name, `cable-par-{index}`), so traces show every worker even if it
    // never wins a unit.
    cable_obs::recorder::instant("par.worker.start");
    // Park instants mark the busy→idle edge only; re-checking an empty
    // queue every IDLE_POLL is not news.
    let mut was_busy = false;
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        if let Some(task) = shared.find_task() {
            was_busy = true;
            run_task(task);
            continue;
        }
        if was_busy {
            was_busy = false;
            cable_obs::recorder::instant("par.park");
        }
        let guard = shared.injector.lock().expect("par injector poisoned");
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        // Timed wait: a push between `find_task` and here is recovered on
        // the next iteration at worst.
        let park_start = cable_obs::enabled().then(Instant::now);
        let _ = shared.idle.wait_timeout(guard, IDLE_POLL);
        if let Some(start) = park_start {
            WAIT_PARK.get().record(start.elapsed().as_micros() as u64);
        }
    }
}

/// A work-stealing thread pool. The workspace normally uses the global
/// pool through the crate-level free functions; tests construct local
/// pools of fixed sizes.
pub struct Pool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Pool {
    /// Creates a pool that runs units on `threads` logical threads:
    /// `threads - 1` workers plus the calling thread, which helps while
    /// it waits on a scope. `threads <= 1` spawns no workers at all and
    /// every combinator takes its sequential path.
    pub fn new(threads: usize) -> Pool {
        let threads = threads.max(1);
        let n_workers = threads - 1;
        let shared = Arc::new(Shared {
            injector: Mutex::new(VecDeque::new()),
            deques: (0..n_workers)
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            idle: Condvar::new(),
            shutdown: AtomicBool::new(false),
            queued: AtomicU64::new(0),
            threads,
        });
        let workers = (0..n_workers)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("cable-par-{i}"))
                    .spawn(move || worker_loop(shared, i))
                    .expect("spawning pool worker")
            })
            .collect();
        Pool { shared, workers }
    }

    /// The logical thread count (workers plus the helping caller).
    pub fn threads(&self) -> usize {
        self.shared.threads
    }

    /// Runs `f` with a [`Scope`] that can spawn borrowing units onto the
    /// pool. All spawned units complete before `scope` returns — this is
    /// what makes the `'env` borrows sound — and the first unit panic (or
    /// the closure's own) is propagated after the wait.
    ///
    /// **Panic isolation.** A panicking unit *poisons* the scope: units
    /// of the poisoned scope that have not started yet are skipped, and
    /// in-flight siblings are cancelled cooperatively through the
    /// `cable-guard` token (they bail at their next
    /// [`cable_guard::cancel_point`]). The first payload is re-raised
    /// here on the submitting thread once every unit has wound down —
    /// callers that need a structured error instead of an unwind wrap
    /// the pipeline in [`cable_guard::contain`], which maps genuine
    /// panics to `GuardError::TaskPanic` and tunnelled guard payloads
    /// back to their typed errors. The pool itself always survives.
    pub fn scope<'env, R>(&self, f: impl FnOnce(&Scope<'env>) -> R) -> R {
        let scope = Scope {
            shared: self.shared.clone(),
            state: Arc::new(ScopeState::default()),
            _env: PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        // Wait unconditionally: spawned units may still borrow the
        // caller's stack even when `f` itself panicked.
        scope.wait();
        let unit_panic = scope.state.panic.lock().expect("par scope poisoned").take();
        if unit_panic.is_some() {
            // The failing unit's wrapper cancelled its siblings; the
            // cancellation window closes with the scope.
            cable_guard::clear_cancel();
        }
        match result {
            Err(p) => resume_unwind(p),
            Ok(r) => {
                if let Some(p) = unit_panic {
                    resume_unwind(p);
                }
                r
            }
        }
    }

    /// Maps `f` over `items`, returning results in input index order for
    /// any worker count or schedule. With one thread (or one item) this
    /// is a plain sequential map producing bit-identical values.
    pub fn par_map<T, U, F>(&self, label: &'static str, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        self.par_map_indexed(label, items, |_, item| f(item))
    }

    /// Like [`Pool::par_map`], passing each item's index too.
    pub fn par_map_indexed<T, U, F>(&self, label: &'static str, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(usize, &T) -> U + Sync,
    {
        let mut chunks = self.chunked_map(label, items, |start, slice| {
            slice
                .iter()
                .enumerate()
                .map(|(k, item)| f(start + k, item))
                .collect::<Vec<U>>()
        });
        chunks.sort_unstable_by_key(|&(start, _)| start);
        let mut out = Vec::with_capacity(items.len());
        for (_, vals) in chunks {
            out.extend(vals);
        }
        out
    }

    /// Folds `items` into chunks whose boundaries depend only on the item
    /// count — never the worker count — then combines the chunk results
    /// in chunk order. Deterministic for any associative `combine` (and
    /// even for non-associative ones, since the grouping is fixed).
    pub fn par_reduce<T, U, I, F, G>(
        &self,
        label: &'static str,
        items: &[T],
        identity: I,
        fold: F,
        combine: G,
    ) -> U
    where
        T: Sync,
        U: Send,
        I: Fn() -> U + Sync,
        F: Fn(U, &T) -> U + Sync,
        G: Fn(U, U) -> U,
    {
        let mut chunks = self.chunked_map(label, items, |_, slice| {
            slice.iter().fold(identity(), &fold)
        });
        chunks.sort_unstable_by_key(|&(start, _)| start);
        chunks.into_iter().map(|(_, v)| v).fold(identity(), combine)
    }

    /// The shared chunked executor: splits `items` at fixed boundaries
    /// (see [`crate::chunk_size`]), runs `f` per chunk — sequentially on
    /// one thread, as scoped units otherwise — and returns the unsorted
    /// `(chunk start, result)` pairs, recording per-stage busy/wall
    /// histograms while observation is enabled.
    fn chunked_map<T, U, F>(&self, label: &'static str, items: &[T], f: F) -> Vec<(usize, U)>
    where
        T: Sync,
        U: Send,
        F: Fn(usize, &[T]) -> U + Sync,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let observe = cable_obs::enabled();
        let wall_start = observe.then(Instant::now);
        let chunk = crate::chunk_size(n);
        let n_chunks = n.div_ceil(chunk);
        let stage = Stage::new(label, observe);
        // Capture the caller's trace context once; every chunk adopts it
        // with `CHUNK_TAG | chunk_index`. Chunk boundaries depend only on
        // the item count, so the sequential and parallel paths mint
        // *identical* span ids — the determinism gate compares them.
        let trace = context::capture();
        let results = if self.threads() <= 1 || n_chunks == 1 {
            let mut results = Vec::with_capacity(n_chunks);
            for (index, start) in (0..n).step_by(chunk).enumerate() {
                let end = (start + chunk).min(n);
                let _adopt = trace
                    .as_ref()
                    .map(|t| t.adopt(context::CHUNK_TAG | index as u64));
                let busy_start = observe.then(Instant::now);
                cable_obs::recorder::begin(label);
                results.push((start, f(start, &items[start..end])));
                cable_obs::recorder::end(label);
                stage.record_busy(busy_start);
            }
            results
        } else {
            let results = Mutex::new(Vec::with_capacity(n_chunks));
            self.scope(|s| {
                for (index, start) in (0..n).step_by(chunk).enumerate() {
                    let end = (start + chunk).min(n);
                    let slice = &items[start..end];
                    let (f, results, stage) = (&f, &results, &stage);
                    let trace = trace.clone();
                    s.spawn(move || {
                        // Restore the request context on whichever worker
                        // stole this chunk, under the chunk's own tag.
                        let _adopt = trace
                            .as_ref()
                            .map(|t| t.adopt(context::CHUNK_TAG | index as u64));
                        // Spans the unit opens attribute under the stage
                        // label, not a detached per-worker stack.
                        let _stage_guard = cable_obs::enter_stage(label);
                        let busy_start = observe.then(Instant::now);
                        cable_obs::recorder::begin(label);
                        let value = f(start, slice);
                        cable_obs::recorder::end(label);
                        stage.record_busy(busy_start);
                        results
                            .lock()
                            .expect("par results poisoned")
                            .push((start, value));
                    });
                }
            });
            results.into_inner().expect("par results poisoned")
        };
        stage.record_wall(wall_start);
        // One wide event per stage execution. Guarded on enabled() so
        // the off path never pays the event's String building.
        if cable_obs::events::enabled() {
            let mut event = cable_obs::WideEvent::new("par_stage", "par")
                .stage(label)
                .field("items", n as u64)
                .field("chunks", n_chunks as u64)
                .field("threads", self.threads() as u64);
            if let Some(start) = wall_start {
                event = event.duration(start.elapsed());
            }
            cable_obs::events::emit(event);
        }
        results
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.idle.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Per-stage busy/wall recording; a no-op while observation is off.
struct Stage {
    busy: Option<Arc<cable_obs::Histogram>>,
    wall: Option<Arc<cable_obs::Histogram>>,
}

impl Stage {
    fn new(label: &str, observe: bool) -> Stage {
        if !observe {
            return Stage {
                busy: None,
                wall: None,
            };
        }
        let registry = cable_obs::registry();
        Stage {
            busy: Some(registry.histogram(&format!("par.stage.{label}.busy_ns"))),
            wall: Some(registry.histogram(&format!("par.stage.{label}.wall_ns"))),
        }
    }

    fn record_busy(&self, start: Option<Instant>) {
        if let (Some(h), Some(start)) = (&self.busy, start) {
            h.record_duration(start.elapsed());
        }
    }

    fn record_wall(&self, start: Option<Instant>) {
        if let (Some(h), Some(start)) = (&self.wall, start) {
            h.record_duration(start.elapsed());
        }
    }
}

#[derive(Default)]
struct ScopeState {
    remaining: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// Units spawned so far; each unit adopts the submitter's trace
    /// context under `SPAWN_TAG | its own index`, so span ids don't
    /// depend on which worker wins the unit.
    spawn_seq: AtomicU64,
    /// Set when any unit of the scope panics (or bails on a guard
    /// error): queued-but-unstarted siblings are skipped, the scope's
    /// outcome is already decided.
    poisoned: AtomicBool,
}

/// A spawn scope: units may borrow anything that outlives `'env`,
/// because [`Pool::scope`] waits for all of them before returning.
pub struct Scope<'env> {
    shared: Arc<Shared>,
    state: Arc<ScopeState>,
    /// Invariant in `'env`, the crossbeam trick: stops the borrow checker
    /// from shrinking the environment lifetime under the spawned units.
    _env: PhantomData<fn(&'env ()) -> &'env ()>,
}

impl<'env> Scope<'env> {
    /// Spawns a unit onto the pool. It may borrow from the enclosing
    /// environment (`'env`); the scope waits for it before returning, and
    /// its panic — if any — is propagated by [`Pool::scope`].
    ///
    /// Each unit runs behind a `catch_unwind` boundary and a
    /// fault-injection point (`panic@par.task`); a unit of an already
    /// poisoned scope is skipped without running.
    pub fn spawn(&self, f: impl FnOnce() + Send + 'env) {
        *self.state.remaining.lock().expect("par scope poisoned") += 1;
        let state = self.state.clone();
        // Snapshot the submitter's trace context *here*, before the unit
        // moves: the worker that eventually runs it may be mid-steal on a
        // different request (or on none at all).
        let trace = context::capture();
        let spawn_seq = self.state.spawn_seq.fetch_add(1, Ordering::Relaxed);
        let wrapper = move || {
            if !state.poisoned.load(Ordering::Relaxed) {
                let _adopt = trace
                    .as_ref()
                    .map(|t| t.adopt(context::SPAWN_TAG | spawn_seq));
                let result = catch_unwind(AssertUnwindSafe(|| {
                    cable_guard::faults::maybe_panic("par.task");
                    f()
                }));
                if let Err(p) = result {
                    state.poisoned.store(true, Ordering::Relaxed);
                    if !cable_guard::is_guard_payload(&*p) {
                        TASK_PANICS.get().incr();
                        cable_obs::recorder::instant("par.task_panic");
                    }
                    // Ask in-flight siblings to bail at their next
                    // cancel point; `Pool::scope` clears the flag once
                    // the scope has wound down.
                    cable_guard::cancel();
                    state
                        .panic
                        .lock()
                        .expect("par scope poisoned")
                        .get_or_insert(p);
                }
            }
            let mut remaining = state.remaining.lock().expect("par scope poisoned");
            *remaining -= 1;
            if *remaining == 0 {
                state.done.notify_all();
            }
        };
        let task: Box<dyn FnOnce() + Send + 'env> = Box::new(wrapper);
        // SAFETY: the pool requires 'static tasks because workers outlive
        // any one scope, but `Pool::scope` never returns before every
        // unit of this scope has completed (the wait runs even when the
        // scope closure panics), so no borrow in `task` outlives its use.
        let task: Task = unsafe { std::mem::transmute(task) };
        self.shared.push(task);
    }

    /// Blocks until every spawned unit is done, *helping*: pending pool
    /// units (of any scope) are run while waiting, so nested scopes on a
    /// saturated pool cannot deadlock.
    fn wait(&self) {
        loop {
            if *self.state.remaining.lock().expect("par scope poisoned") == 0 {
                return;
            }
            if let Some(task) = self.shared.find_task() {
                run_task(task);
                continue;
            }
            let remaining = self.state.remaining.lock().expect("par scope poisoned");
            if *remaining > 0 {
                // Timed: a unit queued after `find_task` is picked up on
                // the next iteration.
                let _ = self.state.done.wait_timeout(remaining, IDLE_POLL);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn sequential_pool_runs_inline() {
        let pool = Pool::new(1);
        assert_eq!(pool.threads(), 1);
        let items: Vec<u64> = (0..100).collect();
        assert_eq!(
            pool.par_map("test.seq", &items, |&x| x + 1),
            (1..=100).collect::<Vec<u64>>()
        );
    }

    #[test]
    fn scope_waits_for_all_units() {
        let pool = Pool::new(4);
        let counter = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..64 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn unit_panics_propagate() {
        let pool = Pool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| panic!("unit failure"));
            });
        }));
        assert!(result.is_err());
        // The pool survives the panic.
        assert_eq!(pool.par_map("test.alive", &[1u64, 2], |&x| x), vec![1, 2]);
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        let pool = Pool::new(2);
        let total = AtomicUsize::new(0);
        pool.scope(|outer| {
            for _ in 0..8 {
                let total = &total;
                let pool_ref = &pool;
                outer.spawn(move || {
                    pool_ref.scope(|inner| {
                        for _ in 0..8 {
                            inner.spawn(|| {
                                total.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn par_reduce_groups_by_length_not_threads() {
        // String concatenation is associative but *not* commutative: the
        // result is order-sensitive, so equality across pool sizes proves
        // the grouping and combine order are schedule-independent.
        let items: Vec<String> = (0..200).map(|i| format!("{i},")).collect();
        let reduce = |pool: &Pool| {
            pool.par_reduce(
                "test.concat",
                &items,
                String::new,
                |acc, s| acc + s,
                |a, b| a + &b,
            )
        };
        let seq = reduce(&Pool::new(1));
        assert_eq!(seq, items.concat());
        assert_eq!(reduce(&Pool::new(3)), seq);
    }
}
