//! `cable-guard`: resource budgets, cooperative cancellation, panic
//! containment, and deterministic fault injection.
//!
//! FCA lattice size is worst-case exponential in objects × attributes,
//! so a production Cable service must bound its analyses rather than
//! trust the input: a single adversarial spec or oversized ingest must
//! never hang, OOM, or abort the process. This crate is the guard plane
//! the rest of the workspace checks in with:
//!
//! * [`Budget`] — a wall-clock deadline, a concept-count ceiling, and a
//!   memory-estimate ceiling, installed process-wide for the duration of
//!   a guarded operation ([`Budget::install`] returns an RAII
//!   [`InstalledGuard`]), or per-thread for one service request
//!   ([`Budget::install_local`] returns an RAII [`LocalGuard`]);
//! * [`CancelToken`] — cooperative cancellation. Like the flight
//!   recorder's disabled path, the hot-path cost of an uninstalled guard
//!   is **one relaxed atomic load** ([`checkpoint`], [`cancel_point`]);
//! * [`GuardError`] — the typed error every guarded loop returns instead
//!   of panicking or hanging. Budget-stopped lattice builds carry a
//!   *valid partial result* at the `cable-fca` layer;
//! * [`contain`] — the panic boundary: runs a closure under
//!   `catch_unwind` and converts panic payloads (including the guard's
//!   own tunnelled [`GuardUnwind`] payloads from `cable-par` closures)
//!   into structured [`GuardError`]s, so a worker panic never takes the
//!   process down;
//! * [`faults`] — the deterministic fault-injection plane behind
//!   `CABLE_FAULTS=<seed>:<spec>` / `--faults`: injected panics at
//!   `cable-par` task boundaries, injected I/O errors in the
//!   `cable-store` read/write shims, and artificial budget exhaustion at
//!   any checkpoint site.
//!
//! # Global-install model
//!
//! Exactly like `cable-obs`, the guard is process-global: the pipeline
//! runs one guarded operation at a time (the CLI installs a budget
//! around one command), and globals keep the hot path to a single
//! relaxed load with zero plumbing through the pipeline's many layers.
//! Installing a second budget while one is active replaces it; the RAII
//! guard uninstalls on drop.
//!
//! # Counters
//!
//! `guard.checkpoints` (slow-path checkpoint evaluations),
//! `guard.cancelled` (checkpoints that observed a cancellation), and
//! `guard.budget_exceeded` (budget trips) register in the `cable-obs`
//! registry and therefore appear in `--stats`, `/metrics`, and
//! `/healthz`.

pub mod faults;

use cable_obs::CounterHandle;
use std::any::Any;
use std::cell::Cell;
use std::error::Error;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Slow-path checkpoint evaluations (the fast path — nothing installed —
/// is not counted: counting would cost more than the check).
static CHECKPOINTS: CounterHandle = CounterHandle::new("guard.checkpoints");
/// Checkpoints that observed a cancellation and returned
/// [`GuardError::Cancelled`].
static CANCELLED_TRIPS: CounterHandle = CounterHandle::new("guard.cancelled");
/// Budget ceilings tripped (deadline, concepts, memory, or injected).
static BUDGET_TRIPS: CounterHandle = CounterHandle::new("guard.budget_exceeded");

/// Bit in [`STATE`]: a [`Budget`] is installed.
const BUDGET_BIT: u8 = 1;
/// Bit in [`STATE`]: a fault plane is installed ([`faults::install`]).
const FAULTS_BIT: u8 = 2;
/// Bit in [`STATE`]: cancellation has been requested.
const CANCEL_BIT: u8 = 4;
/// Bit in [`STATE`]: at least one thread holds a thread-local request
/// budget ([`Budget::install_local`]). The bit is global so the
/// uninstalled fast path stays one relaxed load; which budget (if any)
/// applies is resolved per-thread on the slow path.
const LOCAL_BIT: u8 = 8;

/// The one word every hot-path check loads. Zero means "nothing
/// installed, nothing cancelled" and every guard entry point returns
/// immediately.
static STATE: AtomicU8 = AtomicU8::new(0);

/// Deadline as nanoseconds since [`epoch`]; `u64::MAX` means none.
static DEADLINE_NS: AtomicU64 = AtomicU64::new(u64::MAX);
/// The deadline the user asked for, for error messages.
static DEADLINE_MS: AtomicU64 = AtomicU64::new(0);
/// Concept-count ceiling; `u64::MAX` means none.
static MAX_CONCEPTS: AtomicU64 = AtomicU64::new(u64::MAX);
/// Memory-estimate ceiling in bytes; `u64::MAX` means none.
static MAX_MEM_BYTES: AtomicU64 = AtomicU64::new(u64::MAX);
/// Bytes charged so far against [`MAX_MEM_BYTES`] ([`charge_mem`]).
static MEM_CHARGED: AtomicU64 = AtomicU64::new(0);

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// Which budget ceiling tripped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Limit {
    /// The wall-clock deadline passed.
    Deadline {
        /// The configured deadline in milliseconds.
        limit_ms: u64,
    },
    /// The concept count passed its ceiling.
    Concepts {
        /// The configured ceiling.
        limit: u64,
        /// The count that tripped it.
        reached: u64,
    },
    /// The memory estimate passed its ceiling.
    Memory {
        /// The configured ceiling in bytes.
        limit_bytes: u64,
        /// The estimate that tripped it.
        estimate: u64,
    },
    /// Artificial exhaustion injected by the fault plane.
    Injected,
}

impl fmt::Display for Limit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Limit::Deadline { limit_ms } => write!(f, "deadline of {limit_ms} ms passed"),
            Limit::Concepts { limit, reached } => {
                write!(f, "concept count {reached} passed the ceiling of {limit}")
            }
            Limit::Memory {
                limit_bytes,
                estimate,
            } => write!(
                f,
                "memory estimate {estimate} B passed the ceiling of {limit_bytes} B"
            ),
            Limit::Injected => write!(f, "injected budget exhaustion"),
        }
    }
}

/// The typed error guarded operations return instead of panicking or
/// hanging.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GuardError {
    /// A [`Budget`] ceiling tripped. Operations that can, carry a valid
    /// partial result alongside (see `cable_fca::PartialBuild`).
    BudgetExceeded {
        /// Which ceiling tripped.
        limit: Limit,
        /// The checkpoint site that observed the trip.
        site: String,
    },
    /// Cancellation was requested (a [`CancelToken`], or a sibling task
    /// panic poisoning the scope).
    Cancelled,
    /// A task panicked; the payload was contained and stringified.
    TaskPanic {
        /// The panic message (or a placeholder for non-string payloads).
        message: String,
    },
}

impl fmt::Display for GuardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GuardError::BudgetExceeded { limit, site } => {
                write!(f, "budget exceeded at {site}: {limit}")
            }
            GuardError::Cancelled => write!(f, "operation cancelled"),
            GuardError::TaskPanic { message } => write!(f, "task panicked: {message}"),
        }
    }
}

impl Error for GuardError {}

/// Resource ceilings for one guarded operation. Every field is optional;
/// an all-`None` budget installs nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Budget {
    /// Wall-clock deadline, measured from [`Budget::install`].
    pub deadline: Option<Duration>,
    /// Ceiling on the concept count reported via [`check_concepts`].
    pub max_concepts: Option<u64>,
    /// Ceiling on the bytes accumulated via [`charge_mem`].
    pub max_mem_bytes: Option<u64>,
}

impl Budget {
    /// Whether no ceiling is set.
    pub fn is_empty(&self) -> bool {
        self.deadline.is_none() && self.max_concepts.is_none() && self.max_mem_bytes.is_none()
    }

    /// Installs the budget on the **calling thread only**, returning the
    /// RAII handle that uninstalls it on drop. This is the per-request
    /// form used by the session service: each HTTP worker wraps one
    /// request in a local budget, so concurrent requests get independent
    /// deadlines without fighting over the process-wide slot.
    ///
    /// Only the deadline and concept ceilings apply locally; the
    /// memory-estimate ceiling is process-wide by nature ([`charge_mem`]
    /// accumulates across threads) and is ignored here. Budgets nest:
    /// installing over an existing local budget shadows it until drop. A
    /// thread-local budget does not bound work the thread hands to the
    /// `cable-par` pool — per-request work in the service runs on the
    /// worker thread itself.
    pub fn install_local(self) -> LocalGuard {
        if self.deadline.is_none() && self.max_concepts.is_none() {
            return LocalGuard {
                installed: false,
                previous: None,
                _thread_bound: std::marker::PhantomData,
            };
        }
        let budget = LocalBudget {
            deadline_ns: self
                .deadline
                .map_or(u64::MAX, |d| now_ns().saturating_add(d.as_nanos() as u64)),
            deadline_ms: self.deadline.map_or(0, |d| d.as_millis() as u64),
            max_concepts: self.max_concepts.unwrap_or(u64::MAX),
        };
        let previous = LOCAL.with(|slot| slot.replace(Some(budget)));
        if previous.is_none() {
            let mut count = local_count().lock().expect("guard local count poisoned");
            *count += 1;
            if *count == 1 {
                STATE.fetch_or(LOCAL_BIT, Ordering::Relaxed);
            }
        }
        LocalGuard {
            installed: true,
            previous,
            _thread_bound: std::marker::PhantomData,
        }
    }

    /// Installs the budget process-wide, returning the RAII handle that
    /// uninstalls it (and clears any pending cancellation) on drop. An
    /// empty budget installs nothing and the returned guard is inert.
    pub fn install(self) -> InstalledGuard {
        if self.is_empty() {
            return InstalledGuard { installed: false };
        }
        DEADLINE_MS.store(
            self.deadline.map_or(0, |d| d.as_millis() as u64),
            Ordering::Relaxed,
        );
        DEADLINE_NS.store(
            self.deadline
                .map_or(u64::MAX, |d| now_ns().saturating_add(d.as_nanos() as u64)),
            Ordering::Relaxed,
        );
        MAX_CONCEPTS.store(self.max_concepts.unwrap_or(u64::MAX), Ordering::Relaxed);
        MAX_MEM_BYTES.store(self.max_mem_bytes.unwrap_or(u64::MAX), Ordering::Relaxed);
        MEM_CHARGED.store(0, Ordering::Relaxed);
        STATE.fetch_or(BUDGET_BIT, Ordering::Relaxed);
        InstalledGuard { installed: true }
    }
}

/// RAII handle for an installed [`Budget`]; uninstalls on drop.
#[derive(Debug)]
pub struct InstalledGuard {
    installed: bool,
}

impl InstalledGuard {
    /// The cancel token associated with the guarded operation. (Tokens
    /// are handles to the process-wide cancellation flag; see
    /// [`CancelToken`].)
    pub fn token(&self) -> CancelToken {
        CancelToken
    }
}

impl Drop for InstalledGuard {
    fn drop(&mut self) {
        if self.installed {
            STATE.fetch_and(!(BUDGET_BIT | CANCEL_BIT), Ordering::Relaxed);
            DEADLINE_NS.store(u64::MAX, Ordering::Relaxed);
            MAX_CONCEPTS.store(u64::MAX, Ordering::Relaxed);
            MAX_MEM_BYTES.store(u64::MAX, Ordering::Relaxed);
            MEM_CHARGED.store(0, Ordering::Relaxed);
        }
    }
}

/// One thread's request budget, resolved on the checkpoint slow path.
#[derive(Debug, Clone, Copy)]
struct LocalBudget {
    /// Deadline as nanoseconds since [`epoch`]; `u64::MAX` means none.
    deadline_ns: u64,
    /// The configured deadline in milliseconds, for error messages.
    deadline_ms: u64,
    /// Concept-count ceiling; `u64::MAX` means none.
    max_concepts: u64,
}

thread_local! {
    /// The calling thread's request budget, if any.
    static LOCAL: Cell<Option<LocalBudget>> = const { Cell::new(None) };
}

/// Threads currently holding a local budget. Install/uninstall
/// transitions of [`LOCAL_BIT`] run under this lock so a thread
/// dropping its budget cannot clear the bit out from under a thread
/// that just installed one.
fn local_count() -> &'static Mutex<u64> {
    static COUNT: OnceLock<Mutex<u64>> = OnceLock::new();
    COUNT.get_or_init(|| Mutex::new(0))
}

/// RAII handle for a thread-local [`Budget::install_local`]; restores
/// the thread's previous budget (usually none) on drop.
///
/// Not `Send`: the budget lives in the installing thread's storage, so
/// dropping it elsewhere would uninstall nothing.
#[derive(Debug)]
pub struct LocalGuard {
    installed: bool,
    previous: Option<LocalBudget>,
    // The budget lives in the installing thread's storage; a raw-pointer
    // marker keeps the guard on that thread (auto-!Send).
    _thread_bound: std::marker::PhantomData<*const ()>,
}

impl Drop for LocalGuard {
    fn drop(&mut self) {
        if !self.installed {
            return;
        }
        let previous = self.previous.take();
        let restores_outer = previous.is_some();
        LOCAL.with(|slot| slot.set(previous));
        if !restores_outer {
            let mut count = local_count().lock().expect("guard local count poisoned");
            *count = count.saturating_sub(1);
            if *count == 0 {
                STATE.fetch_and(!LOCAL_BIT, Ordering::Relaxed);
            }
        }
    }
}

/// A handle to the process-wide cancellation flag. `Copy`, `Send`, and
/// free to clone into any thread; cancelling trips every subsequent
/// [`checkpoint`] and [`cancel_point`] until [`clear_cancel`] runs
/// (which the owning scope — an [`InstalledGuard`] drop or the
/// `cable-par` panic recovery — does when the operation ends).
#[derive(Debug, Clone, Copy, Default)]
pub struct CancelToken;

impl CancelToken {
    /// The process-wide token.
    pub fn global() -> CancelToken {
        CancelToken
    }

    /// Requests cancellation.
    pub fn cancel(&self) {
        cancel();
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        cancel_requested()
    }
}

/// Requests cooperative cancellation of the current guarded operation.
pub fn cancel() {
    STATE.fetch_or(CANCEL_BIT, Ordering::Relaxed);
}

/// Whether cancellation has been requested.
#[inline]
pub fn cancel_requested() -> bool {
    STATE.load(Ordering::Relaxed) & CANCEL_BIT != 0
}

/// Clears a pending cancellation. Called by the scope that requested it
/// (or recovered from the panic that did) once the operation has wound
/// down.
pub fn clear_cancel() {
    STATE.fetch_and(!CANCEL_BIT, Ordering::Relaxed);
}

/// Whether any guard facility (budget, faults, cancellation) is active.
#[inline]
pub fn active() -> bool {
    STATE.load(Ordering::Relaxed) != 0
}

/// Whether a [`Budget`] is currently installed. Lattice builds use this
/// to pick the guarded sequential path, whose budget-stopped prefix is
/// deterministic for every worker count (see DESIGN.md §12).
#[inline]
pub fn budget_active() -> bool {
    let state = STATE.load(Ordering::Relaxed);
    if state & BUDGET_BIT != 0 {
        return true;
    }
    state & LOCAL_BIT != 0 && LOCAL.with(|slot| slot.get().is_some())
}

pub(crate) fn faults_installed() -> bool {
    STATE.load(Ordering::Relaxed) & FAULTS_BIT != 0
}

pub(crate) fn set_faults_installed(on: bool) {
    if on {
        STATE.fetch_or(FAULTS_BIT, Ordering::Relaxed);
    } else {
        STATE.fetch_and(!FAULTS_BIT, Ordering::Relaxed);
    }
}

/// The cooperative checkpoint guarded loops call once per unit of work
/// (one object insertion, one trace sweep, one journal record). With
/// nothing installed this is a single relaxed atomic load; otherwise it
/// evaluates cancellation, the deadline, the memory estimate, and the
/// fault plane's `budget@site` rules.
///
/// # Errors
///
/// [`GuardError::Cancelled`] on a pending cancellation,
/// [`GuardError::BudgetExceeded`] on a tripped ceiling or injected
/// exhaustion.
#[inline]
pub fn checkpoint(site: &str) -> Result<(), GuardError> {
    let state = STATE.load(Ordering::Relaxed);
    if state == 0 {
        return Ok(());
    }
    checkpoint_slow(site, state)
}

#[cold]
fn checkpoint_slow(site: &str, state: u8) -> Result<(), GuardError> {
    let result = checkpoint_checks(site, state);
    if let Err(e) = &result {
        emit_trip_event(site, e);
    }
    result
}

/// One wide event per guard trip, so `/eventz` and the SLO windows see
/// budget exhaustion and cancellation alongside the work they cut short.
fn emit_trip_event(site: &str, error: &GuardError) {
    let kind = match error {
        GuardError::BudgetExceeded { .. } => "budget_trip",
        GuardError::Cancelled => "cancel_trip",
        GuardError::TaskPanic { .. } => "contained_panic",
    };
    // A recorder instant too: it carries the active trace context, so a
    // request's waterfall shows *where in the tree* the budget tripped.
    cable_obs::recorder::instant(match error {
        GuardError::BudgetExceeded { .. } => "guard.budget_trip",
        GuardError::Cancelled => "guard.cancel_trip",
        GuardError::TaskPanic { .. } => "guard.contained_panic",
    });
    cable_obs::events::emit(
        cable_obs::WideEvent::new(kind, "guard")
            .stage(site)
            .outcome("error")
            .field("error", error.to_string()),
    );
}

fn checkpoint_checks(site: &str, state: u8) -> Result<(), GuardError> {
    CHECKPOINTS.get().incr();
    if state & CANCEL_BIT != 0 {
        CANCELLED_TRIPS.get().incr();
        return Err(GuardError::Cancelled);
    }
    if state & LOCAL_BIT != 0 {
        if let Some(local) = LOCAL.with(Cell::get) {
            if now_ns() >= local.deadline_ns {
                BUDGET_TRIPS.get().incr();
                return Err(GuardError::BudgetExceeded {
                    limit: Limit::Deadline {
                        limit_ms: local.deadline_ms,
                    },
                    site: site.to_owned(),
                });
            }
        }
    }
    if state & BUDGET_BIT != 0 {
        if now_ns() >= DEADLINE_NS.load(Ordering::Relaxed) {
            BUDGET_TRIPS.get().incr();
            return Err(GuardError::BudgetExceeded {
                limit: Limit::Deadline {
                    limit_ms: DEADLINE_MS.load(Ordering::Relaxed),
                },
                site: site.to_owned(),
            });
        }
        let estimate = MEM_CHARGED.load(Ordering::Relaxed);
        let limit_bytes = MAX_MEM_BYTES.load(Ordering::Relaxed);
        if estimate > limit_bytes {
            BUDGET_TRIPS.get().incr();
            return Err(GuardError::BudgetExceeded {
                limit: Limit::Memory {
                    limit_bytes,
                    estimate,
                },
                site: site.to_owned(),
            });
        }
    }
    if state & FAULTS_BIT != 0 && faults::budget_fault_fires(site) {
        BUDGET_TRIPS.get().incr();
        return Err(GuardError::BudgetExceeded {
            limit: Limit::Injected,
            site: site.to_owned(),
        });
    }
    Ok(())
}

/// Checks a concept count against the installed ceiling. Callers report
/// the count *after* each insertion, so a trip at count `c` means the
/// concept set already holds `c` concepts — still a valid prefix-exact
/// set (Godin's invariant).
///
/// # Errors
///
/// [`GuardError::BudgetExceeded`] with [`Limit::Concepts`] once the
/// count passes the ceiling.
#[inline]
pub fn check_concepts(count: usize) -> Result<(), GuardError> {
    let state = STATE.load(Ordering::Relaxed);
    if state & (BUDGET_BIT | LOCAL_BIT) == 0 {
        return Ok(());
    }
    let mut limit = u64::MAX;
    if state & BUDGET_BIT != 0 {
        limit = MAX_CONCEPTS.load(Ordering::Relaxed);
    }
    if state & LOCAL_BIT != 0 {
        if let Some(local) = LOCAL.with(Cell::get) {
            limit = limit.min(local.max_concepts);
        }
    }
    if count as u64 > limit {
        BUDGET_TRIPS.get().incr();
        let error = GuardError::BudgetExceeded {
            limit: Limit::Concepts {
                limit,
                reached: count as u64,
            },
            site: "fca.godin.concepts".to_owned(),
        };
        emit_trip_event("fca.godin.concepts", &error);
        return Err(error);
    }
    Ok(())
}

/// Accumulates `bytes` against the installed memory-estimate ceiling
/// (checked at the next [`checkpoint`]). A no-op without a budget.
#[inline]
pub fn charge_mem(bytes: u64) {
    if STATE.load(Ordering::Relaxed) & BUDGET_BIT != 0 {
        MEM_CHARGED.fetch_add(bytes, Ordering::Relaxed);
    }
}

/// The panic payload [`bail`] tunnels a [`GuardError`] through
/// `cable-par` closures with (the closures return plain values, so a
/// budget trip or cancellation inside one unwinds instead).
/// [`contain`] and the pool's panic recovery recognise it and convert it
/// back into the typed error rather than counting it as a task panic.
#[derive(Debug)]
pub struct GuardUnwind(pub GuardError);

/// Unwinds with a [`GuardUnwind`] payload. Only reachable from code
/// running under a [`contain`] (or `cable-par` scope) boundary.
pub fn bail(error: GuardError) -> ! {
    std::panic::panic_any(GuardUnwind(error))
}

/// The cancellation checkpoint for closures that cannot return `Err`
/// (the `cable-par` chunk and shard closures): a single relaxed load
/// when nothing is cancelled, an unwinding [`bail`] otherwise.
#[inline]
pub fn cancel_point(site: &str) {
    if STATE.load(Ordering::Relaxed) & CANCEL_BIT != 0 {
        CANCELLED_TRIPS.get().incr();
        emit_trip_event(site, &GuardError::Cancelled);
        bail(GuardError::Cancelled)
    }
}

/// Whether a caught panic payload is one of the guard's own tunnelled
/// payloads (a [`GuardUnwind`]) rather than a genuine task panic.
pub fn is_guard_payload(payload: &(dyn Any + Send)) -> bool {
    payload.is::<GuardUnwind>()
}

/// Converts a caught panic payload into a [`GuardError`]: tunnelled
/// [`GuardUnwind`] payloads yield their inner error; anything else is a
/// [`GuardError::TaskPanic`] with the stringified message.
pub fn error_from_payload(payload: &(dyn Any + Send)) -> GuardError {
    if let Some(guard) = payload.downcast_ref::<GuardUnwind>() {
        return guard.0.clone();
    }
    let message = if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    };
    GuardError::TaskPanic { message }
}

/// The pipeline's panic boundary: runs `f` under `catch_unwind` and
/// converts any unwind — a worker panic resurfaced by `cable-par`, an
/// injected fault, or a tunnelled [`GuardUnwind`] — into a structured
/// [`GuardError`]. The process keeps serving.
///
/// # Errors
///
/// Whatever [`error_from_payload`] derives from the caught payload.
pub fn contain<T>(f: impl FnOnce() -> T) -> Result<T, GuardError> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(value) => Ok(value),
        Err(payload) => {
            let error = error_from_payload(&*payload);
            // Tunnelled GuardUnwind payloads already emitted their trip
            // event at the checkpoint; only genuine panics are new news.
            if matches!(error, GuardError::TaskPanic { .. }) {
                emit_trip_event("guard.contain", &error);
            }
            Err(error)
        }
    }
}

/// Installs the fault plane from `CABLE_FAULTS` if set. Returns whether
/// a plane is now installed.
///
/// # Errors
///
/// Returns the parse error for a malformed spec.
pub fn init_from_env() -> Result<bool, String> {
    match std::env::var("CABLE_FAULTS") {
        Ok(spec) if !spec.is_empty() => {
            faults::install(&spec)?;
            Ok(true)
        }
        _ => Ok(faults_installed()),
    }
}

/// The guard state is process-global; tests that install budgets,
/// planes, or cancellations must not interleave (shared with the
/// [`faults`] test module).
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock as lock;

    #[test]
    fn uninstalled_checkpoint_is_ok() {
        let _l = lock();
        assert_eq!(checkpoint("test.site"), Ok(()));
        assert_eq!(check_concepts(1_000_000), Ok(()));
        cancel_point("test.site"); // must not unwind
    }

    #[test]
    fn deadline_trips_and_uninstalls_on_drop() {
        let _l = lock();
        let guard = Budget {
            deadline: Some(Duration::from_millis(0)),
            ..Budget::default()
        }
        .install();
        std::thread::sleep(Duration::from_millis(2));
        let err = checkpoint("test.deadline").unwrap_err();
        assert!(matches!(
            err,
            GuardError::BudgetExceeded {
                limit: Limit::Deadline { .. },
                ..
            }
        ));
        drop(guard);
        assert_eq!(checkpoint("test.deadline"), Ok(()));
    }

    #[test]
    fn concept_ceiling_trips_past_the_limit() {
        let _l = lock();
        let _guard = Budget {
            max_concepts: Some(10),
            ..Budget::default()
        }
        .install();
        assert_eq!(check_concepts(10), Ok(()));
        let err = check_concepts(11).unwrap_err();
        assert_eq!(
            err,
            GuardError::BudgetExceeded {
                limit: Limit::Concepts {
                    limit: 10,
                    reached: 11
                },
                site: "fca.godin.concepts".to_owned(),
            }
        );
    }

    #[test]
    fn memory_ceiling_trips_at_the_next_checkpoint() {
        let _l = lock();
        let _guard = Budget {
            max_mem_bytes: Some(100),
            ..Budget::default()
        }
        .install();
        charge_mem(50);
        assert_eq!(checkpoint("test.mem"), Ok(()));
        charge_mem(51);
        let err = checkpoint("test.mem").unwrap_err();
        assert!(matches!(
            err,
            GuardError::BudgetExceeded {
                limit: Limit::Memory { .. },
                ..
            }
        ));
    }

    #[test]
    fn cancellation_trips_checkpoints_until_cleared() {
        let _l = lock();
        let token = CancelToken::global();
        assert!(!token.is_cancelled());
        token.cancel();
        assert!(token.is_cancelled());
        assert_eq!(checkpoint("test.cancel"), Err(GuardError::Cancelled));
        clear_cancel();
        assert_eq!(checkpoint("test.cancel"), Ok(()));
    }

    #[test]
    fn cancel_point_unwinds_with_a_guard_payload() {
        let _l = lock();
        cancel();
        let result = contain(|| cancel_point("test.point"));
        clear_cancel();
        assert_eq!(result, Err(GuardError::Cancelled));
    }

    #[test]
    fn contain_converts_panics_and_guard_unwinds() {
        let _l = lock();
        assert_eq!(contain(|| 7), Ok(7));
        assert_eq!(
            contain(|| panic!("boom")),
            Err::<(), _>(GuardError::TaskPanic {
                message: "boom".to_owned()
            })
        );
        let err = GuardError::BudgetExceeded {
            limit: Limit::Injected,
            site: "x".to_owned(),
        };
        let inner = err.clone();
        assert_eq!(contain(move || bail(inner)), Err::<(), _>(err));
    }

    #[test]
    fn empty_budget_installs_nothing() {
        let _l = lock();
        let _guard = Budget::default().install();
        assert!(!budget_active());
    }

    #[test]
    fn local_deadline_trips_only_on_the_installing_thread() {
        let _l = lock();
        let guard = Budget {
            deadline: Some(Duration::from_millis(0)),
            ..Budget::default()
        }
        .install_local();
        assert!(budget_active());
        std::thread::sleep(Duration::from_millis(2));
        let err = checkpoint("test.local_deadline").unwrap_err();
        assert!(matches!(
            err,
            GuardError::BudgetExceeded {
                limit: Limit::Deadline { .. },
                ..
            }
        ));
        // Another thread shares the process but not the budget.
        std::thread::scope(|s| {
            let handle = s.spawn(|| checkpoint("test.other_thread"));
            assert_eq!(handle.join().unwrap(), Ok(()));
        });
        drop(guard);
        assert_eq!(checkpoint("test.local_deadline"), Ok(()));
        assert!(!budget_active());
    }

    #[test]
    fn local_concept_ceiling_trips_past_the_limit() {
        let _l = lock();
        let _guard = Budget {
            max_concepts: Some(5),
            ..Budget::default()
        }
        .install_local();
        assert_eq!(check_concepts(5), Ok(()));
        let err = check_concepts(6).unwrap_err();
        assert!(matches!(
            err,
            GuardError::BudgetExceeded {
                limit: Limit::Concepts {
                    limit: 5,
                    reached: 6
                },
                ..
            }
        ));
    }

    #[test]
    fn local_budgets_nest_and_restore_on_drop() {
        let _l = lock();
        let outer = Budget {
            max_concepts: Some(100),
            ..Budget::default()
        }
        .install_local();
        {
            let _inner = Budget {
                max_concepts: Some(5),
                ..Budget::default()
            }
            .install_local();
            assert!(check_concepts(6).is_err());
        }
        // Inner dropped: the outer ceiling applies again.
        assert_eq!(check_concepts(6), Ok(()));
        assert!(check_concepts(101).is_err());
        drop(outer);
        assert_eq!(check_concepts(101), Ok(()));
    }

    #[test]
    fn empty_local_budget_installs_nothing() {
        let _l = lock();
        let _guard = Budget::default().install_local();
        assert!(!budget_active());
        assert_eq!(checkpoint("test.empty_local"), Ok(()));
    }

    #[test]
    fn local_and_global_budgets_compose() {
        let _l = lock();
        let _global = Budget {
            max_concepts: Some(50),
            ..Budget::default()
        }
        .install();
        let _local = Budget {
            max_concepts: Some(5),
            ..Budget::default()
        }
        .install_local();
        // The tighter of the two ceilings wins.
        assert!(check_concepts(6).is_err());
        assert!(check_concepts(5).is_ok());
    }
}
