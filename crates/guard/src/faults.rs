//! The deterministic fault-injection plane.
//!
//! A fault spec names a seed and a comma-separated list of rules:
//!
//! ```text
//! CABLE_FAULTS="<seed>:<kind>@<site>[#K | =P][,<kind>@<site>...]"
//! ```
//!
//! * `kind` is `panic` (unwind at the site), `io` (return an injected
//!   `std::io::Error` from the site's read/write shim), or `budget`
//!   (artificial [`crate::GuardError::BudgetExceeded`] at the site's
//!   checkpoint). The `io` kind takes an optional flavour suffix:
//!   `io:enospc` (the error carries `ErrorKind::StorageFull`), `io:eio`
//!   (a generic device-level error), or `io:short` (the write shim
//!   commits a prefix of the buffer before failing — a torn write).
//! * `site` is a dotted site name: `par.task` (every `cable-par` unit
//!   boundary), the `cable-store` shim sites (`store.write`,
//!   `store.journal.append`, `store.fsync`, `store.read`), or any
//!   checkpoint site (`fca.godin.insert`, `fa.executed`,
//!   `core.persist.ingest`, `core.persist.replay`, …).
//! * `#K` fires on exactly the K-th hit of the site (1-based); a bare
//!   rule is `#1`.
//! * `=P` fires each hit independently with probability `P` (a float in
//!   `[0,1]`), decided by `splitmix64(seed ^ fnv(site) ^ hit)` — a pure
//!   function of the seed, the site, and the site's hit ordinal.
//!
//! **Determinism.** Whether a rule fires depends only on `(seed, site,
//! hit ordinal)`; the hit ordinal is a per-`(kind, site)` counter. On a
//! sequential site (the store shims, the guarded sequential lattice
//! build) the ordinal is the logical operation index, so a given spec
//! fires at the same operation on every run. At `par.task` the ordinal
//! counts task *executions*, whose assignment to logical tasks can vary
//! with thread interleaving — the *decision sequence* is deterministic,
//! which logical task draws the firing hit is not. That is exactly what
//! the robustness suite needs: reproducible pressure, not reproducible
//! victims.
//!
//! Firing decisions go through one relaxed atomic load when no plane is
//! installed, mirroring [`crate::checkpoint`].

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock, RwLock};

/// What an injected fault does at its site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Unwind (a panic) at a `cable-par` task boundary.
    Panic,
    /// An injected `std::io::Error` from a store read/write shim.
    Io,
    /// Artificial budget exhaustion at a checkpoint.
    Budget,
}

impl FaultKind {
    fn as_str(self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::Io => "io",
            FaultKind::Budget => "budget",
        }
    }
}

/// The flavour of an injected I/O error — the `io` kind's optional
/// suffix (`io:enospc`, `io:eio`, `io:short`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IoFlavor {
    /// A bare `io` rule: a generic injected `std::io::Error`.
    #[default]
    Generic,
    /// Device full: the error carries [`std::io::ErrorKind::StorageFull`].
    Enospc,
    /// A device-level I/O error (what the kernel surfaces as `EIO`).
    Eio,
    /// A short write: the shim commits a prefix of the buffer to the
    /// underlying writer before surfacing the error, leaving a torn
    /// record for recovery to truncate.
    Short,
}

impl IoFlavor {
    fn as_str(self) -> &'static str {
        match self {
            IoFlavor::Generic => "io",
            IoFlavor::Enospc => "io:enospc",
            IoFlavor::Eio => "io:eio",
            IoFlavor::Short => "io:short",
        }
    }
}

/// One injected I/O fault drawn at a shim site: carries the firing
/// rule's flavour so the shim can model the right failure shape.
#[derive(Debug)]
pub struct IoFault {
    flavor: IoFlavor,
    description: String,
}

impl IoFault {
    /// The firing rule's flavour.
    pub fn flavor(&self) -> IoFlavor {
        self.flavor
    }

    /// Whether the shim should commit a prefix of the buffer before
    /// failing (an `io:short` rule).
    pub fn is_short_write(&self) -> bool {
        self.flavor == IoFlavor::Short
    }

    /// Converts the fault into the `std::io::Error` to surface.
    pub fn into_error(self) -> std::io::Error {
        let message = format!("injected fault: {}", self.description);
        match self.flavor {
            IoFlavor::Enospc => std::io::Error::new(std::io::ErrorKind::StorageFull, message),
            _ => std::io::Error::other(message),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Trigger {
    /// Fire on exactly the K-th hit (1-based).
    Hit(u64),
    /// Fire each hit independently with this probability.
    Prob(f64),
}

#[derive(Debug, Clone, PartialEq)]
struct Rule {
    kind: FaultKind,
    flavor: IoFlavor,
    site: String,
    trigger: Trigger,
}

#[derive(Debug)]
struct Plane {
    seed: u64,
    rules: Vec<Rule>,
    /// Hit ordinals per `(kind, site)`.
    hits: Mutex<HashMap<(FaultKind, String), u64>>,
}

fn plane() -> &'static RwLock<Option<Plane>> {
    static PLANE: OnceLock<RwLock<Option<Plane>>> = OnceLock::new();
    PLANE.get_or_init(|| RwLock::new(None))
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn fnv1a(s: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in s.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Parses and installs a fault spec (`<seed>:<rules>`), replacing any
/// installed plane.
///
/// # Errors
///
/// Returns a description of the first grammar violation.
pub fn install(spec: &str) -> Result<(), String> {
    let (seed_text, rules_text) = spec
        .split_once(':')
        .ok_or_else(|| format!("fault spec {spec:?} is missing the \"<seed>:\" prefix"))?;
    let seed: u64 = seed_text
        .trim()
        .parse()
        .map_err(|_| format!("fault seed {seed_text:?} is not an unsigned integer"))?;
    let mut rules = Vec::new();
    for part in rules_text.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        rules.push(parse_rule(part)?);
    }
    if rules.is_empty() {
        return Err(format!("fault spec {spec:?} has no rules"));
    }
    *plane().write().expect("fault plane poisoned") = Some(Plane {
        seed,
        rules,
        hits: Mutex::new(HashMap::new()),
    });
    crate::set_faults_installed(true);
    Ok(())
}

fn parse_rule(part: &str) -> Result<Rule, String> {
    let (kind_text, rest) = part
        .split_once('@')
        .ok_or_else(|| format!("fault rule {part:?} is missing \"@<site>\""))?;
    let (kind, flavor) = match kind_text.trim() {
        "panic" => (FaultKind::Panic, IoFlavor::Generic),
        "io" => (FaultKind::Io, IoFlavor::Generic),
        "io:enospc" => (FaultKind::Io, IoFlavor::Enospc),
        "io:eio" => (FaultKind::Io, IoFlavor::Eio),
        "io:short" => (FaultKind::Io, IoFlavor::Short),
        "budget" => (FaultKind::Budget, IoFlavor::Generic),
        other => {
            return Err(format!(
                "unknown fault kind {other:?} (expected panic, \
                 io[:enospc|:eio|:short], or budget)"
            ))
        }
    };
    let (site, trigger) = if let Some((site, k)) = rest.split_once('#') {
        let k: u64 = k
            .trim()
            .parse()
            .map_err(|_| format!("fault hit ordinal {k:?} is not an unsigned integer"))?;
        if k == 0 {
            return Err("fault hit ordinals are 1-based".to_owned());
        }
        (site, Trigger::Hit(k))
    } else if let Some((site, p)) = rest.split_once('=') {
        let p: f64 = p
            .trim()
            .parse()
            .map_err(|_| format!("fault probability {p:?} is not a float"))?;
        if !(0.0..=1.0).contains(&p) {
            return Err(format!("fault probability {p} is outside [0, 1]"));
        }
        (site, Trigger::Prob(p))
    } else {
        (rest, Trigger::Hit(1))
    };
    let site = site.trim();
    if site.is_empty() {
        return Err(format!("fault rule {part:?} has an empty site"));
    }
    Ok(Rule {
        kind,
        flavor,
        site: site.to_owned(),
        trigger,
    })
}

/// Removes the installed plane (if any).
pub fn uninstall() {
    *plane().write().expect("fault plane poisoned") = None;
    crate::set_faults_installed(false);
}

/// What a plane evaluation decided: the firing rule's description (for
/// the error/panic message) and, for `io` rules, its flavour.
struct Fired {
    description: String,
    flavor: IoFlavor,
}

/// Evaluates the plane at a `(kind, site)` hit. Returns the firing
/// rule, or `None`. Every firing emits a `fault_injected` wide event
/// (site, hit ordinal, seed) so a drill can reconstruct the exact fault
/// timeline from the event log.
fn fire(kind: FaultKind, site: &str) -> Option<Fired> {
    let guard = plane().read().expect("fault plane poisoned");
    let plane = guard.as_ref()?;
    if !plane.rules.iter().any(|r| r.kind == kind && r.site == site) {
        return None;
    }
    let hit = {
        let mut hits = plane.hits.lock().expect("fault hits poisoned");
        let n = hits.entry((kind, site.to_owned())).or_insert(0);
        *n += 1;
        *n
    };
    for rule in plane
        .rules
        .iter()
        .filter(|r| r.kind == kind && r.site == site)
    {
        let fires = match rule.trigger {
            Trigger::Hit(k) => hit == k,
            Trigger::Prob(p) => {
                let draw = splitmix64(plane.seed ^ fnv1a(site) ^ hit);
                (draw as f64 / u64::MAX as f64) < p
            }
        };
        if fires {
            let kind_text = match kind {
                FaultKind::Io => rule.flavor.as_str(),
                other => other.as_str(),
            };
            if cable_obs::events::enabled() {
                cable_obs::events::emit(
                    cable_obs::WideEvent::new("fault_injected", "faults")
                        .outcome("injected")
                        .field("fault", kind_text)
                        .field("site", site.to_owned())
                        .field("hit", hit)
                        .field("seed", plane.seed),
                );
            }
            return Some(Fired {
                description: format!("{kind_text}@{site} (seed {}, hit {hit})", plane.seed),
                flavor: rule.flavor,
            });
        }
    }
    None
}

/// Panics with an `injected fault: …` message if a `panic@site` rule
/// fires. One relaxed load when no plane is installed. Call sites sit
/// inside a `catch_unwind` boundary (the `cable-par` task wrapper), so
/// the injected panic is contained like a genuine one.
#[inline]
pub fn maybe_panic(site: &str) {
    if !crate::faults_installed() {
        return;
    }
    if let Some(fired) = fire(FaultKind::Panic, site) {
        panic!("injected fault: {}", fired.description);
    }
}

/// Returns the injected I/O fault if an `io@site` rule (of any flavour)
/// fires, carrying the flavour so write shims can model short writes.
/// One relaxed load when no plane is installed.
#[inline]
pub fn io_fault(site: &str) -> Option<IoFault> {
    if !crate::faults_installed() {
        return None;
    }
    fire(FaultKind::Io, site).map(|fired| IoFault {
        flavor: fired.flavor,
        description: fired.description,
    })
}

/// Returns an injected I/O error if an `io@site` rule fires. One relaxed
/// load when no plane is installed.
#[inline]
pub fn io_error(site: &str) -> Option<std::io::Error> {
    io_fault(site).map(IoFault::into_error)
}

/// Whether a `budget@site` rule fires at this checkpoint hit. Only
/// called from the checkpoint slow path (the fast path already knows no
/// plane is installed).
pub(crate) fn budget_fault_fires(site: &str) -> bool {
    fire(FaultKind::Budget, site).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::test_lock as lock;

    #[test]
    fn grammar_rejects_malformed_specs() {
        let _l = lock();
        for bad in [
            "",
            "7",
            "x:panic@par.task",
            "7:",
            "7:panic",
            "7:frob@par.task",
            "7:panic@",
            "7:panic@par.task#0",
            "7:panic@par.task#x",
            "7:io@store.write=1.5",
            "7:io@store.write=x",
            "7:io:frob@store.write",
            "7:io:@store.write",
        ] {
            assert!(install(bad).is_err(), "spec {bad:?} should be rejected");
        }
        uninstall();
    }

    #[test]
    fn bare_rule_fires_on_the_first_hit_only() {
        let _l = lock();
        install("42:io@store.write").unwrap();
        assert!(io_error("store.write").is_some());
        assert!(io_error("store.write").is_none());
        assert!(io_error("store.read").is_none(), "other sites untouched");
        uninstall();
        assert!(io_error("store.write").is_none());
    }

    #[test]
    fn hit_ordinal_rule_fires_on_exactly_the_kth_hit() {
        let _l = lock();
        install("42:io@store.fsync#3").unwrap();
        assert!(io_error("store.fsync").is_none());
        assert!(io_error("store.fsync").is_none());
        let err = io_error("store.fsync").expect("third hit fires");
        assert!(err.to_string().contains("injected fault"), "{err}");
        assert!(err.to_string().contains("hit 3"), "{err}");
        assert!(io_error("store.fsync").is_none());
        uninstall();
    }

    #[test]
    fn probabilistic_rule_is_deterministic_in_the_seed() {
        let _l = lock();
        let run = |seed: u64| -> Vec<bool> {
            install(&format!("{seed}:io@store.read=0.5")).unwrap();
            let fired = (0..64).map(|_| io_error("store.read").is_some()).collect();
            uninstall();
            fired
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a, b, "same seed, same firing sequence");
        assert_ne!(a, run(8), "different seed, different sequence");
        assert!(a.iter().any(|&f| f), "p=0.5 over 64 hits fires");
        assert!(!a.iter().all(|&f| f), "p=0.5 over 64 hits also skips");
    }

    #[test]
    fn io_flavors_shape_the_injected_error() {
        let _l = lock();
        install("42:io:enospc@store.journal.append").unwrap();
        let fault = io_fault("store.journal.append").expect("first hit fires");
        assert_eq!(fault.flavor(), IoFlavor::Enospc);
        assert!(!fault.is_short_write());
        let err = fault.into_error();
        assert_eq!(err.kind(), std::io::ErrorKind::StorageFull);
        assert!(err.to_string().contains("io:enospc@"), "{err}");

        install("42:io:short@store.journal.append").unwrap();
        let fault = io_fault("store.journal.append").expect("first hit fires");
        assert!(fault.is_short_write());
        assert!(fault.into_error().to_string().contains("io:short@"));

        install("42:io:eio@store.fsync").unwrap();
        let err = io_error("store.fsync").expect("first hit fires");
        assert!(err.to_string().contains("io:eio@store.fsync"), "{err}");
        uninstall();
    }

    #[test]
    fn firing_emits_a_fault_injected_wide_event() {
        let _l = lock();
        cable_obs::events::set_enabled(true);
        cable_obs::events::clear_ring();
        install("42:io@store.fsync#2").unwrap();
        assert!(io_error("store.fsync").is_none(), "hit 1 does not fire");
        assert!(io_error("store.fsync").is_some(), "hit 2 fires");
        uninstall();
        cable_obs::events::set_enabled(false);
        let events = cable_obs::events::recent(usize::MAX);
        let event = events
            .iter()
            .rev()
            .find(|e| {
                e.get("kind").and_then(cable_obs::json::Value::as_str) == Some("fault_injected")
            })
            .expect("fault_injected event emitted");
        cable_obs::events::check_schema(event).expect("schema holds");
        assert_eq!(
            event.get("site").and_then(cable_obs::json::Value::as_str),
            Some("store.fsync")
        );
        assert_eq!(
            event.get("hit").and_then(cable_obs::json::Value::as_u64),
            Some(2)
        );
        assert_eq!(
            event.get("seed").and_then(cable_obs::json::Value::as_u64),
            Some(42)
        );
        cable_obs::events::clear_ring();
    }

    #[test]
    fn maybe_panic_unwinds_when_the_rule_fires() {
        let _l = lock();
        install("42:panic@par.task#2").unwrap();
        maybe_panic("par.task"); // hit 1: no fire
        let result = crate::contain(|| maybe_panic("par.task"));
        uninstall();
        match result {
            Err(crate::GuardError::TaskPanic { message }) => {
                assert!(message.contains("injected fault"), "{message}");
                assert!(message.contains("panic@par.task"), "{message}");
            }
            other => panic!("expected an injected panic, got {other:?}"),
        }
    }

    #[test]
    fn budget_fault_surfaces_through_the_checkpoint() {
        let _l = lock();
        install("42:budget@fca.godin.insert").unwrap();
        let err = crate::checkpoint("fca.godin.insert").unwrap_err();
        assert_eq!(
            err,
            crate::GuardError::BudgetExceeded {
                limit: crate::Limit::Injected,
                site: "fca.godin.insert".to_owned(),
            }
        );
        assert_eq!(crate::checkpoint("fca.godin.insert"), Ok(()));
        assert_eq!(crate::checkpoint("elsewhere"), Ok(()));
        uninstall();
    }
}
