//! Scoped metrics: per-session / per-tenant metric tables that roll up
//! into the global registry.
//!
//! The global [`crate::Registry`] answers *process* questions — how many
//! traces were ingested since start. The ROADMAP's service arc (one
//! process, many concurrent labeling sessions) also needs *attribution*:
//! which session did the ingesting, which tenant directory is burning
//! the lattice budget. A [`Scope`] is the unit of attribution: an RAII
//! handle carrying label dimensions (`session`, `stage`, `tenant` — any
//! small set of key/value pairs) and its own counter/histogram table.
//!
//! # Write-through rollup
//!
//! Every write through a scope lands **twice**: once in the scope's own
//! table and once in the global registry under the same name. That makes
//! the rollup invariant exact by construction — for any metric, the
//! global total equals the sum over all scopes ever opened (plus any
//! unscoped writes) — with no reconciliation pass. The
//! `scoped_rollup_is_exact_under_concurrency` integration test pins this
//! under 8 threads of concurrent scope create/write/drop.
//!
//! # Lifecycle
//!
//! [`ScopedRegistry::open`] registers the scope in the live table;
//! dropping the [`Scope`] retires it — the scope leaves the live table
//! (so `/metrics` stops exporting its series) and its final snapshot is
//! kept in a bounded retired ring so `--stats` can still attribute work
//! to sessions that closed during the run. Global totals are unaffected
//! by retirement: rollups already happened at write time.

use crate::json::Value;
use crate::registry::{registry, Registry, Snapshot};
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Retired-scope snapshots kept for post-hoc attribution (`--stats`).
/// Oldest are evicted first; rollup totals are unaffected by eviction.
pub const RETIRED_CAP: usize = 64;

/// The process-wide scoped registry.
pub fn scoped() -> &'static ScopedRegistry {
    static SCOPED: OnceLock<ScopedRegistry> = OnceLock::new();
    SCOPED.get_or_init(ScopedRegistry::default)
}

/// The table of live scopes plus a bounded ring of retired snapshots.
/// A [`Scope`] keeps its owning registry alive, so dropping the registry
/// before its scopes is safe.
#[derive(Debug, Default)]
pub struct ScopedRegistry {
    tables: Arc<Tables>,
}

#[derive(Debug, Default)]
struct Tables {
    live: Mutex<Vec<Arc<ScopeInner>>>,
    retired: Mutex<VecDeque<ScopeSnapshot>>,
    next_id: AtomicU64,
}

#[derive(Debug)]
struct ScopeInner {
    id: u64,
    labels: Vec<(String, String)>,
    metrics: Registry,
}

impl ScopedRegistry {
    /// Opens a scope with the given label dimensions (e.g.
    /// `[("session", "store-a"), ("tenant", "acme")]`). Label order is
    /// preserved into exports.
    pub fn open(&self, labels: &[(&str, &str)]) -> Scope {
        let inner = Arc::new(ScopeInner {
            id: self.tables.next_id.fetch_add(1, Ordering::Relaxed) + 1,
            labels: labels
                .iter()
                .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
                .collect(),
            metrics: Registry::default(),
        });
        self.tables
            .live
            .lock()
            .expect("scoped registry poisoned")
            .push(Arc::clone(&inner));
        Scope {
            inner,
            owner: Arc::clone(&self.tables),
        }
    }

    /// How many scopes are currently live.
    pub fn live_count(&self) -> usize {
        self.tables
            .live
            .lock()
            .expect("scoped registry poisoned")
            .len()
    }

    /// Point-in-time snapshots of every live scope followed by the
    /// retained retired ones, all sorted by scope id (creation order).
    pub fn snapshot(&self) -> Vec<ScopeSnapshot> {
        let mut out: Vec<ScopeSnapshot> = self
            .tables
            .live
            .lock()
            .expect("scoped registry poisoned")
            .iter()
            .map(|inner| inner.snapshot(true))
            .collect();
        out.extend(
            self.tables
                .retired
                .lock()
                .expect("scoped registry poisoned")
                .iter()
                .cloned(),
        );
        out.sort_by_key(|s| s.id);
        out
    }

    /// Empties the retired ring (tests and benchmark sections).
    pub fn clear_retired(&self) {
        self.tables
            .retired
            .lock()
            .expect("scoped registry poisoned")
            .clear();
    }
}

impl Tables {
    fn retire(&self, inner: &ScopeInner) {
        let snapshot = inner.snapshot(false);
        self.live
            .lock()
            .expect("scoped registry poisoned")
            .retain(|s| s.id != inner.id);
        let mut retired = self.retired.lock().expect("scoped registry poisoned");
        if retired.len() >= RETIRED_CAP {
            retired.pop_front();
        }
        retired.push_back(snapshot);
    }
}

impl ScopeInner {
    fn snapshot(&self, live: bool) -> ScopeSnapshot {
        ScopeSnapshot {
            id: self.id,
            labels: self.labels.clone(),
            live,
            metrics: self.metrics.snapshot(),
        }
    }
}

/// An RAII attribution scope (see the module docs). Writes land in the
/// scope's own table *and* the global registry; drop retires the scope.
#[derive(Debug)]
pub struct Scope {
    inner: Arc<ScopeInner>,
    owner: Arc<Tables>,
}

impl Scope {
    /// The scope's id, unique within its registry.
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// The label dimensions, in the order given to
    /// [`ScopedRegistry::open`].
    pub fn labels(&self) -> &[(String, String)] {
        &self.inner.labels
    }

    /// The value of one label dimension.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.inner
            .labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Adds `n` to the named counter in this scope and in the global
    /// registry (the write-through rollup).
    pub fn add(&self, name: &str, n: u64) {
        self.inner.metrics.counter(name).add(n);
        registry().counter(name).add(n);
    }

    /// Adds one; see [`Scope::add`].
    pub fn incr(&self, name: &str) {
        self.add(name, 1);
    }

    /// Records one histogram sample in this scope and in the global
    /// registry.
    pub fn record(&self, name: &str, v: u64) {
        self.inner.metrics.histogram(name).record(v);
        registry().histogram(name).record(v);
    }

    /// Records a duration in nanoseconds; see [`Scope::record`].
    pub fn record_duration(&self, name: &str, d: std::time::Duration) {
        self.record(name, d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// A point-in-time copy of this scope's own table (global rollups
    /// are not included — read those from [`registry`]).
    pub fn snapshot(&self) -> ScopeSnapshot {
        self.inner.snapshot(true)
    }
}

impl Drop for Scope {
    fn drop(&mut self) {
        self.owner.retire(&self.inner);
    }
}

/// A point-in-time copy of one scope: identity, labels, and its local
/// metric table.
#[derive(Debug, Clone)]
pub struct ScopeSnapshot {
    /// Scope id, unique within its registry.
    pub id: u64,
    /// Label dimensions in declaration order.
    pub labels: Vec<(String, String)>,
    /// Whether the scope was still live when snapshotted.
    pub live: bool,
    /// The scope's local metrics.
    pub metrics: Snapshot,
}

impl ScopeSnapshot {
    /// The scope as a JSON value (labels object + the metric snapshot).
    pub fn to_json(&self) -> Value {
        Value::object([
            ("id", Value::from(self.id)),
            (
                "labels",
                Value::Object(
                    self.labels
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::from(v.as_str())))
                        .collect(),
                ),
            ),
            ("live", Value::from(self.live)),
            ("metrics", self.metrics.to_json()),
        ])
    }

    /// The labels as a space-separated `k=v` list (report headers).
    pub fn label_string(&self) -> String {
        let mut out = String::new();
        for (i, (k, v)) in self.labels.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            let _ = write!(out, "{k}={v}");
        }
        out
    }
}

/// Renders the `--stats` per-scope breakdown: one block per scope with
/// its labels and non-zero counters / histogram summaries.
pub fn render_scopes(scopes: &[ScopeSnapshot]) -> String {
    if scopes.is_empty() {
        return String::new();
    }
    let mut out = String::new();
    let _ = writeln!(out, "── scopes ──");
    for scope in scopes {
        let state = if scope.live { "live" } else { "closed" };
        let _ = writeln!(
            out,
            "scope #{} [{}] ({state})",
            scope.id,
            scope.label_string()
        );
        for (name, &value) in &scope.metrics.counters {
            if value > 0 {
                let _ = writeln!(out, "  {name:<44} {value:>12}");
            }
        }
        for (name, hist) in &scope.metrics.histograms {
            if hist.count > 0 {
                let _ = writeln!(
                    out,
                    "  {name:<44} count {:>6}  mean {:>12.0}  p95 {:>12.0}",
                    hist.count,
                    hist.mean(),
                    hist.quantile_estimate(0.95),
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_writes_roll_up_into_the_global_registry() {
        let before = registry().snapshot();
        let reg = ScopedRegistry::default();
        let scope = reg.open(&[("session", "unit-a"), ("tenant", "t0")]);
        scope.add("scope.test.rollup", 5);
        scope.incr("scope.test.rollup");
        scope.record("scope.test.lat_ns", 1000);
        let delta = registry().snapshot().delta_since(&before);
        assert_eq!(delta.counter("scope.test.rollup"), Some(6));
        assert_eq!(
            scope.snapshot().metrics.counter("scope.test.rollup"),
            Some(6)
        );
        assert_eq!(scope.label("session"), Some("unit-a"));
        assert_eq!(scope.label("missing"), None);
        drop(scope);
        // Retirement leaves the rollup in place.
        let delta = registry().snapshot().delta_since(&before);
        assert_eq!(delta.counter("scope.test.rollup"), Some(6));
    }

    #[test]
    fn retired_scopes_keep_their_final_snapshot() {
        let reg = ScopedRegistry::default();
        let scope = reg.open(&[("session", "short-lived")]);
        scope.add("scope.test.retired", 3);
        let id = scope.id();
        drop(scope);
        assert_eq!(reg.live_count(), 0);
        let snaps = reg.snapshot();
        assert_eq!(snaps.len(), 1);
        assert_eq!(snaps[0].id, id);
        assert!(!snaps[0].live);
        assert_eq!(snaps[0].metrics.counter("scope.test.retired"), Some(3));
        reg.clear_retired();
        assert!(reg.snapshot().is_empty());
    }

    #[test]
    fn retired_ring_is_bounded() {
        let reg = ScopedRegistry::default();
        for i in 0..(RETIRED_CAP + 10) {
            let label = format!("s{i}");
            drop(reg.open(&[("session", label.as_str())]));
        }
        assert_eq!(reg.snapshot().len(), RETIRED_CAP);
    }

    #[test]
    fn render_scopes_lists_labels_and_nonzero_metrics() {
        let reg = ScopedRegistry::default();
        let scope = reg.open(&[("session", "render-me"), ("stage", "ingest")]);
        scope.add("work.done", 7);
        scope.record("work.ns", 512);
        let text = render_scopes(&reg.snapshot());
        assert!(text.contains("session=render-me stage=ingest"), "{text}");
        assert!(text.contains("work.done"), "{text}");
        assert!(text.contains("work.ns"), "{text}");
        assert_eq!(render_scopes(&[]), "");
    }
}
