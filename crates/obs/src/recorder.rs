//! The flight recorder: fixed-capacity, per-thread ring buffers of
//! timeline events.
//!
//! Counters and histograms (the rest of this crate) aggregate — they
//! answer *how much*. The recorder answers *when*: every span begin and
//! end, every instant event (a steal, a park, a journal append), and
//! every counter mark is stamped with a monotonic-clock timestamp and
//! appended to the recording thread's own ring. Two consumers read the
//! rings back:
//!
//! * [`crate::chrome`] renders them as Chrome trace-event JSON (one lane
//!   per thread, loadable in Perfetto / `chrome://tracing`) and folds
//!   them into a self-time profile;
//! * [`crate::http`] serves the most recent spans per lane as `/tracez`.
//!
//! # Memory model
//!
//! Each thread that records while recording is [`recording`] gets one
//! **lane**: a fixed-capacity ring (see [`set_capacity`]) owned by that
//! thread and registered in a process-wide table. Only the owning thread
//! writes its ring; snapshots from other threads take the lane's mutex
//! briefly, so the single-writer ordering guarantee holds: **events
//! within a lane are in non-decreasing timestamp order**, because one
//! thread stamps them from one monotonic clock. No ordering is implied
//! *across* lanes beyond the shared epoch.
//!
//! A full ring overwrites its oldest event (newest wins) and counts the
//! loss — per lane in [`LaneSnapshot::dropped`] and globally under the
//! `obs.recorder.dropped` counter. Drops are acceptable by design: the
//! recorder is a *flight recorder*, not an audit log — the interesting
//! window is the most recent one, and bounding memory beats completeness
//! for a long-running session process.
//!
//! While recording is off, [`push`] is one relaxed atomic load.

use crate::metrics::Counter;
use crate::registry::registry;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Default per-lane ring capacity (events).
pub const DEFAULT_CAPACITY: usize = 8192;

static RECORDING: AtomicBool = AtomicBool::new(false);
static CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_CAPACITY);
static NEXT_LANE: AtomicU64 = AtomicU64::new(1);

/// Whether the recorder is capturing events.
#[inline]
pub fn recording() -> bool {
    RECORDING.load(Ordering::Relaxed)
}

/// Turns event capture on or off. Lanes and their contents survive
/// toggling; only *new* events are gated.
pub fn set_recording(on: bool) {
    RECORDING.store(on, Ordering::Relaxed);
}

/// Sets the ring capacity for lanes created *after* this call (existing
/// lanes keep their rings). Clamped to at least 2.
pub fn set_capacity(events: usize) {
    CAPACITY.store(events.max(2), Ordering::Relaxed);
}

/// The process-wide monotonic epoch every event timestamp counts from.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the recorder epoch, from the monotonic clock.
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos().min(u64::MAX as u128) as u64
}

/// What an [`Event`] marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened (matched by a later [`EventKind::End`] on the same
    /// lane).
    Begin,
    /// A span closed.
    End,
    /// A point in time (a steal, a park, a journal append).
    Instant,
    /// A counter observation carrying the counter's current value.
    Counter(u64),
}

/// One recorded timeline event.
///
/// The trace/span id fields are zero outside a request context; while a
/// [`crate::context`] is active on the recording thread they carry the
/// originating 128-bit trace id, the event's own span id, and its
/// parent span id (see [`crate::context`] for how ids are minted).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The span / marker name (static, so recording never allocates).
    pub name: &'static str,
    /// What the event marks.
    pub kind: EventKind,
    /// Nanoseconds since the recorder epoch.
    pub ts_ns: u64,
    /// High half of the originating trace id (0 outside a request).
    pub trace_hi: u64,
    /// Low half of the originating trace id (0 outside a request).
    pub trace_lo: u64,
    /// This event's span id (0 outside a request).
    pub span: u64,
    /// Parent span id (0 at the request root or outside a request).
    pub parent: u64,
}

impl Event {
    /// An event with zeroed causal ids (outside any request context).
    pub fn plain(name: &'static str, kind: EventKind, ts_ns: u64) -> Event {
        Event {
            name,
            kind,
            ts_ns,
            trace_hi: 0,
            trace_lo: 0,
            span: 0,
            parent: 0,
        }
    }
}

/// A lane's fixed-capacity ring.
#[derive(Debug)]
struct Ring {
    buf: Vec<Event>,
    capacity: usize,
    /// Index the next event is written at (wraps).
    next: usize,
    /// Total events ever pushed to this lane.
    total: u64,
}

impl Ring {
    fn new(capacity: usize) -> Ring {
        Ring {
            buf: Vec::with_capacity(capacity.min(1024)),
            capacity,
            next: 0,
            total: 0,
        }
    }

    fn push(&mut self, event: Event) -> bool {
        self.total += 1;
        if self.buf.len() < self.capacity {
            self.buf.push(event);
            self.next = self.buf.len() % self.capacity;
            false
        } else {
            // Full: overwrite the oldest (newest wins).
            self.buf[self.next] = event;
            self.next = (self.next + 1) % self.capacity;
            true
        }
    }

    fn dropped(&self) -> u64 {
        self.total.saturating_sub(self.buf.len() as u64)
    }

    /// The surviving events, oldest first.
    fn ordered(&self) -> Vec<Event> {
        if self.buf.len() < self.capacity {
            self.buf.clone()
        } else {
            let mut out = Vec::with_capacity(self.buf.len());
            out.extend_from_slice(&self.buf[self.next..]);
            out.extend_from_slice(&self.buf[..self.next]);
            out
        }
    }
}

/// One thread's registered lane.
#[derive(Debug)]
struct Lane {
    id: u64,
    label: String,
    ring: Mutex<Ring>,
}

/// The process-wide lane table.
fn lanes() -> &'static Mutex<Vec<Arc<Lane>>> {
    static LANES: OnceLock<Mutex<Vec<Arc<Lane>>>> = OnceLock::new();
    LANES.get_or_init(|| Mutex::new(Vec::new()))
}

fn dropped_counter() -> &'static Counter {
    static DROPPED: OnceLock<Arc<Counter>> = OnceLock::new();
    DROPPED.get_or_init(|| registry().counter("obs.recorder.dropped"))
}

thread_local! {
    /// This thread's lane, created on first recorded event.
    static LANE: RefCell<Option<Arc<Lane>>> = const { RefCell::new(None) };
    /// A label requested before the lane exists (see [`set_lane_label`]).
    static PENDING_LABEL: RefCell<Option<String>> = const { RefCell::new(None) };
}

/// Names this thread's lane in exports (`cable-par` workers call this
/// with their worker index). Before the lane exists the label is kept
/// pending and applied at creation; an existing lane is renamed from the
/// next snapshot on.
pub fn set_lane_label(label: &str) {
    let renamed = LANE.with(|l| {
        if let Some(lane) = l.borrow().as_ref() {
            // Lanes are immutable after creation except through
            // re-registration: replace this thread's lane entry.
            let fresh = Arc::new(Lane {
                id: lane.id,
                label: label.to_owned(),
                ring: Mutex::new(Ring::new(0)),
            });
            // Move the ring over wholesale.
            {
                let mut old = lane.ring.lock().expect("recorder lane poisoned");
                let mut new = fresh.ring.lock().expect("recorder lane poisoned");
                std::mem::swap(&mut *old, &mut *new);
            }
            let mut table = lanes().lock().expect("recorder lanes poisoned");
            if let Some(slot) = table.iter_mut().find(|l| l.id == lane.id) {
                *slot = fresh.clone();
            }
            drop(table);
            *l.borrow_mut() = Some(fresh);
            true
        } else {
            false
        }
    });
    if !renamed {
        PENDING_LABEL.with(|p| *p.borrow_mut() = Some(label.to_owned()));
    }
}

fn current_lane() -> Arc<Lane> {
    LANE.with(|l| {
        let mut slot = l.borrow_mut();
        if let Some(lane) = slot.as_ref() {
            return lane.clone();
        }
        let id = NEXT_LANE.fetch_add(1, Ordering::Relaxed);
        let label = PENDING_LABEL
            .with(|p| p.borrow_mut().take())
            .or_else(|| std::thread::current().name().map(str::to_owned))
            .unwrap_or_else(|| format!("thread-{id}"));
        let lane = Arc::new(Lane {
            id,
            label,
            ring: Mutex::new(Ring::new(CAPACITY.load(Ordering::Relaxed))),
        });
        lanes()
            .lock()
            .expect("recorder lanes poisoned")
            .push(lane.clone());
        *slot = Some(lane.clone());
        lane
    })
}

/// Records one event on the current thread's lane. A no-op (one relaxed
/// load) while recording is off.
///
/// While a request context is active on this thread (see
/// [`crate::context`]), `Begin`/`End` events also maintain the context's
/// frame stack — minting the span id on begin, collecting the closed
/// span on end — and every event is stamped with its causal ids.
#[inline]
pub fn push(name: &'static str, kind: EventKind) {
    if !recording() {
        return;
    }
    let ts_ns = now_ns();
    let ids = match kind {
        EventKind::Begin => crate::context::on_begin(name, ts_ns),
        EventKind::End => crate::context::on_end(name, ts_ns),
        EventKind::Instant | EventKind::Counter(_) => crate::context::on_mark(),
    };
    let event = Event {
        name,
        kind,
        ts_ns,
        trace_hi: ids.trace_hi,
        trace_lo: ids.trace_lo,
        span: ids.span,
        parent: ids.parent,
    };
    let lane = current_lane();
    let overwrote = lane
        .ring
        .lock()
        .expect("recorder lane poisoned")
        .push(event);
    if overwrote {
        dropped_counter().incr();
    }
}

/// Records a span-begin event.
#[inline]
pub fn begin(name: &'static str) {
    push(name, EventKind::Begin);
}

/// Records a span-end event.
#[inline]
pub fn end(name: &'static str) {
    push(name, EventKind::End);
}

/// Records an instant event.
#[inline]
pub fn instant(name: &'static str) {
    push(name, EventKind::Instant);
}

/// Records a counter mark carrying `value`.
#[inline]
pub fn counter_mark(name: &'static str, value: u64) {
    push(name, EventKind::Counter(value));
}

/// A point-in-time copy of one lane.
#[derive(Debug, Clone)]
pub struct LaneSnapshot {
    /// Stable lane id (the Chrome-trace `tid`).
    pub id: u64,
    /// Human label (thread name or `cable-par-N` worker id).
    pub label: String,
    /// Surviving events, oldest first, timestamps non-decreasing.
    pub events: Vec<Event>,
    /// Events lost to ring overflow on this lane.
    pub dropped: u64,
}

/// Snapshots every lane, sorted by lane id. Taking a snapshot does not
/// disturb recording (each lane's mutex is held only for the copy).
pub fn snapshot() -> Vec<LaneSnapshot> {
    let table: Vec<Arc<Lane>> = lanes().lock().expect("recorder lanes poisoned").clone();
    let mut out: Vec<LaneSnapshot> = table
        .iter()
        .map(|lane| {
            let ring = lane.ring.lock().expect("recorder lane poisoned");
            LaneSnapshot {
                id: lane.id,
                label: lane.label.clone(),
                events: ring.ordered(),
                dropped: ring.dropped(),
            }
        })
        .collect();
    out.sort_by_key(|l| l.id);
    out
}

/// Empties every lane's ring (the lanes themselves stay registered, so
/// threads keep their ids and labels). Benchmarks and tests use this to
/// scope a capture window.
pub fn clear() {
    for lane in lanes().lock().expect("recorder lanes poisoned").iter() {
        let mut ring = lane.ring.lock().expect("recorder lane poisoned");
        let capacity = ring.capacity;
        *ring = Ring::new(capacity);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let mut ring = Ring::new(3);
        let ev = |ts| Event::plain("t", EventKind::Instant, ts);
        for ts in 0..5u64 {
            ring.push(ev(ts));
        }
        assert_eq!(ring.dropped(), 2);
        let ts: Vec<u64> = ring.ordered().iter().map(|e| e.ts_ns).collect();
        assert_eq!(ts, vec![2, 3, 4], "newest wins, oldest first");
    }

    #[test]
    fn ring_below_capacity_keeps_everything() {
        let mut ring = Ring::new(8);
        for ts in 0..5u64 {
            ring.push(Event::plain("t", EventKind::Begin, ts));
        }
        assert_eq!(ring.dropped(), 0);
        assert_eq!(ring.ordered().len(), 5);
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        set_recording(false);
        let before: u64 = snapshot().iter().map(|l| l.events.len() as u64).sum();
        instant("test.disabled");
        let after: u64 = snapshot().iter().map(|l| l.events.len() as u64).sum();
        assert_eq!(before, after);
    }

    #[test]
    fn timestamps_are_monotonic() {
        assert!(now_ns() <= now_ns());
    }
}
