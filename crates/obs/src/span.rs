//! RAII span timers with per-thread nesting.

use crate::metrics::HistogramHandle;
use std::cell::Cell;
use std::time::Instant;

thread_local! {
    static DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// The current span nesting depth on this thread (0 outside any span).
pub fn current_depth() -> usize {
    DEPTH.with(|d| d.get())
}

/// An RAII wall-clock timer. While observation is [`crate::enabled`],
/// entering takes an `Instant::now` and bumps the thread's nesting depth;
/// dropping records the elapsed nanoseconds into the span's histogram.
/// While disabled, entering and dropping cost one relaxed load each.
///
/// Spans drop in reverse entry order by scoping, which keeps the depth
/// counter consistent:
///
/// ```
/// use cable_obs as obs;
/// static H: obs::HistogramHandle = obs::HistogramHandle::new("doc.span_ns");
///
/// obs::set_enabled(true);
/// assert_eq!(obs::current_depth(), 0);
/// {
///     let _outer = obs::Span::enter("doc.span", &H);
///     assert_eq!(obs::current_depth(), 1);
///     {
///         let _inner = obs::Span::enter("doc.span", &H);
///         assert_eq!(obs::current_depth(), 2);
///     }
///     assert_eq!(obs::current_depth(), 1);
/// }
/// assert_eq!(obs::current_depth(), 0);
/// ```
#[must_use = "a span measures the scope it is bound to; binding to _ drops it immediately"]
pub struct Span {
    histogram: &'static HistogramHandle,
    start: Option<Instant>,
    #[allow(dead_code)]
    name: &'static str,
}

impl Span {
    /// Enters a span that records into `histogram` when dropped.
    #[inline]
    pub fn enter(name: &'static str, histogram: &'static HistogramHandle) -> Span {
        let start = if crate::enabled() {
            DEPTH.with(|d| d.set(d.get() + 1));
            Some(Instant::now())
        } else {
            None
        };
        Span {
            histogram,
            start,
            name,
        }
    }
}

impl Drop for Span {
    #[inline]
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.histogram.get().record_duration(start.elapsed());
            DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::HistogramHandle;

    static TEST_SPAN: HistogramHandle = HistogramHandle::new("test.span.inner_ns");

    /// Serialises the tests that toggle the global enabled flag.
    static FLAG_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn disabled_spans_record_nothing() {
        let _guard = FLAG_LOCK.lock().unwrap();
        crate::set_enabled(false);
        let before = TEST_SPAN.get().snapshot().count;
        {
            let _s = Span::enter("test.span", &TEST_SPAN);
            assert_eq!(current_depth(), 0, "disabled spans do not nest");
        }
        assert_eq!(TEST_SPAN.get().snapshot().count, before);
    }

    #[test]
    fn enabled_spans_record_and_nest() {
        let _guard = FLAG_LOCK.lock().unwrap();
        crate::set_enabled(true);
        let before = TEST_SPAN.get().snapshot().count;
        {
            let _outer = Span::enter("test.span", &TEST_SPAN);
            let d = current_depth();
            {
                let _inner = Span::enter("test.span", &TEST_SPAN);
                assert_eq!(current_depth(), d + 1);
            }
            assert_eq!(current_depth(), d);
        }
        assert_eq!(TEST_SPAN.get().snapshot().count, before + 2);
        crate::set_enabled(false);
    }
}
