//! RAII span timers with per-thread nesting.
//!
//! Nesting state is a **per-thread name stack**: each thread entering
//! spans sees only its own stack, so spans recorded concurrently from
//! pool workers can never garble one another. Two guarantees enforce
//! this:
//!
//! * [`Span`] is `!Send` — a span entered on one thread cannot be
//!   dropped on another (which would pop the wrong thread's stack);
//! * workers executing units for a parallel stage set a per-thread
//!   *stage label* ([`enter_stage`]), so [`current_stack`] on a worker
//!   attributes its spans under the stage that scheduled them rather
//!   than appearing as a detached global stack.

use crate::metrics::HistogramHandle;
use std::cell::{Cell, RefCell};
use std::marker::PhantomData;
use std::time::Instant;

thread_local! {
    /// This thread's stack of open span names, innermost last.
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    /// The parallel-stage label the current thread is executing under.
    static STAGE: Cell<Option<&'static str>> = const { Cell::new(None) };
}

/// The current span nesting depth on this thread (0 outside any span).
pub fn current_depth() -> usize {
    STACK.with(|s| s.borrow().len())
}

/// This thread's open span names, outermost first, prefixed with the
/// thread's parallel-stage label when one is set (see [`enter_stage`]).
pub fn current_stack() -> Vec<&'static str> {
    let mut out = Vec::new();
    if let Some(stage) = current_stage() {
        out.push(stage);
    }
    STACK.with(|s| out.extend(s.borrow().iter().copied()));
    out
}

/// The parallel-stage label the current thread is executing under, if
/// any.
pub fn current_stage() -> Option<&'static str> {
    STAGE.with(|s| s.get())
}

/// Sets this thread's parallel-stage label for the lifetime of the
/// returned guard; pool workers call this around each unit so the
/// spans the unit opens attribute to the stage that scheduled it.
/// Nested stages restore the outer label on drop.
#[must_use = "the stage label lasts only while the guard is alive"]
pub fn enter_stage(label: &'static str) -> StageGuard {
    let previous = STAGE.with(|s| s.replace(Some(label)));
    StageGuard {
        previous,
        _not_send: PhantomData,
    }
}

/// Restores the previous stage label on drop. `!Send`, like [`Span`].
pub struct StageGuard {
    previous: Option<&'static str>,
    _not_send: PhantomData<*const ()>,
}

impl Drop for StageGuard {
    fn drop(&mut self) {
        let previous = self.previous;
        STAGE.with(|s| s.set(previous));
    }
}

/// An RAII wall-clock timer. While observation is [`crate::enabled`],
/// entering takes an `Instant::now` and pushes the span's name on the
/// thread's stack; dropping records the elapsed nanoseconds into the
/// span's histogram and pops. While disabled, entering and dropping cost
/// one relaxed load each.
///
/// Spans drop in reverse entry order by scoping, which keeps each
/// thread's stack consistent:
///
/// ```
/// use cable_obs as obs;
/// static H: obs::HistogramHandle = obs::HistogramHandle::new("doc.span_ns");
///
/// obs::set_enabled(true);
/// assert_eq!(obs::current_depth(), 0);
/// {
///     let _outer = obs::Span::enter("doc.span", &H);
///     assert_eq!(obs::current_depth(), 1);
///     {
///         let _inner = obs::Span::enter("doc.span", &H);
///         assert_eq!(obs::current_stack(), vec!["doc.span", "doc.span"]);
///     }
///     assert_eq!(obs::current_depth(), 1);
/// }
/// assert_eq!(obs::current_depth(), 0);
/// ```
#[must_use = "a span measures the scope it is bound to; binding to _ drops it immediately"]
pub struct Span {
    histogram: &'static HistogramHandle,
    start: Option<Instant>,
    name: &'static str,
    /// A span belongs to the thread whose stack it pushed: sending it
    /// elsewhere would pop another thread's stack on drop.
    _not_send: PhantomData<*const ()>,
}

impl Span {
    /// Enters a span that records into `histogram` when dropped. When
    /// the flight recorder is on, the span also lands as a begin/end
    /// pair on this thread's recorder lane.
    #[inline]
    pub fn enter(name: &'static str, histogram: &'static HistogramHandle) -> Span {
        let start = if crate::enabled() {
            STACK.with(|s| s.borrow_mut().push(name));
            crate::recorder::begin(name);
            Some(Instant::now())
        } else {
            None
        };
        Span {
            histogram,
            start,
            name,
            _not_send: PhantomData,
        }
    }
}

impl Drop for Span {
    #[inline]
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.histogram.get().record_duration(start.elapsed());
            crate::recorder::end(self.name);
            STACK.with(|s| {
                let popped = s.borrow_mut().pop();
                debug_assert_eq!(popped, Some(self.name), "span stack out of order");
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::HistogramHandle;

    static TEST_SPAN: HistogramHandle = HistogramHandle::new("test.span.inner_ns");

    /// Serialises the tests that toggle the global enabled flag.
    static FLAG_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn disabled_spans_record_nothing() {
        let _guard = FLAG_LOCK.lock().unwrap();
        crate::set_enabled(false);
        let before = TEST_SPAN.get().snapshot().count;
        {
            let _s = Span::enter("test.span", &TEST_SPAN);
            assert_eq!(current_depth(), 0, "disabled spans do not nest");
        }
        assert_eq!(TEST_SPAN.get().snapshot().count, before);
    }

    #[test]
    fn enabled_spans_record_and_nest() {
        let _guard = FLAG_LOCK.lock().unwrap();
        crate::set_enabled(true);
        let before = TEST_SPAN.get().snapshot().count;
        {
            let _outer = Span::enter("test.span", &TEST_SPAN);
            let d = current_depth();
            {
                let _inner = Span::enter("test.span", &TEST_SPAN);
                assert_eq!(current_depth(), d + 1);
                assert_eq!(current_stack().last(), Some(&"test.span"));
            }
            assert_eq!(current_depth(), d);
        }
        assert_eq!(TEST_SPAN.get().snapshot().count, before + 2);
        crate::set_enabled(false);
    }

    #[test]
    fn stage_labels_nest_and_restore() {
        assert_eq!(current_stage(), None);
        {
            let _outer = enter_stage("stage.outer");
            assert_eq!(current_stage(), Some("stage.outer"));
            {
                let _inner = enter_stage("stage.inner");
                assert_eq!(current_stage(), Some("stage.inner"));
            }
            assert_eq!(current_stage(), Some("stage.outer"));
        }
        assert_eq!(current_stage(), None);
    }

    #[test]
    fn stack_is_prefixed_with_the_stage() {
        let _guard = FLAG_LOCK.lock().unwrap();
        crate::set_enabled(true);
        let _stage = enter_stage("stage.label");
        let _span = Span::enter("test.span", &TEST_SPAN);
        assert_eq!(current_stack(), vec!["stage.label", "test.span"]);
        crate::set_enabled(false);
    }
}
