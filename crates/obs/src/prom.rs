//! Prometheus text exposition of the metric registry.
//!
//! Encodes a [`Snapshot`] in the Prometheus text format (version 0.0.4,
//! what `GET /metrics` is expected to speak): every counter as a
//! `counter` family, every histogram as a `histogram` family (cumulative
//! `le` buckets ending in `+Inf`, `_sum`, `_count`) **plus** a parallel
//! `summary` family carrying interpolated p50/p95/p99 quantiles from
//! [`HistogramSnapshot::quantile_estimate`]. The summary lives under a
//! distinct `<name>_summary` family because Prometheus forbids one
//! family exposing both bucket and quantile series.
//!
//! Metric names are sanitized (`.` and any other non-`[a-zA-Z0-9_:]`
//! byte become `_`) so registry names like `par.tasks` export as
//! `par_tasks`.

use crate::metrics::HistogramSnapshot;
use crate::registry::Snapshot;
use std::fmt::Write as _;

/// Quantiles exposed in each histogram's companion summary family.
pub const SUMMARY_QUANTILES: [f64; 3] = [0.5, 0.95, 0.99];

/// Renders the whole snapshot as Prometheus text exposition.
pub fn encode(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    for (name, &value) in &snapshot.counters {
        let name = sanitize(name);
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, hist) in &snapshot.histograms {
        encode_histogram(&mut out, &sanitize(name), hist);
    }
    out
}

fn encode_histogram(out: &mut String, name: &str, hist: &HistogramSnapshot) {
    let _ = writeln!(out, "# TYPE {name} histogram");
    let mut cumulative = 0u64;
    for (bound, count) in hist.nonzero_buckets() {
        cumulative += count;
        if bound == u64::MAX {
            // The top log2 bucket is unbounded; fold it into +Inf.
            continue;
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
    }
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", hist.count);
    let _ = writeln!(out, "{name}_sum {}", hist.sum);
    let _ = writeln!(out, "{name}_count {}", hist.count);

    let _ = writeln!(out, "# TYPE {name}_summary summary");
    for q in SUMMARY_QUANTILES {
        let _ = writeln!(
            out,
            "{name}_summary{{quantile=\"{q}\"}} {}",
            fmt_f64(hist.quantile_estimate(q))
        );
    }
    let _ = writeln!(out, "{name}_summary_sum {}", hist.sum);
    let _ = writeln!(out, "{name}_summary_count {}", hist.count);
}

/// Maps a registry name onto the Prometheus name charset.
pub fn sanitize(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.starts_with(|c: char| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn sanitize_maps_dots_and_leading_digits() {
        assert_eq!(sanitize("par.tasks"), "par_tasks");
        assert_eq!(sanitize("obs.recorder.dropped"), "obs_recorder_dropped");
        assert_eq!(sanitize("9lives"), "_9lives");
        assert_eq!(sanitize("ok_name:x"), "ok_name:x");
    }

    #[test]
    fn counters_and_histograms_expose_all_series() {
        let r = Registry::default();
        r.counter("core.ops").add(42);
        let h = r.histogram("span.build.ns");
        for v in [1u64, 2, 3, 100] {
            h.record(v);
        }
        let text = encode(&r.snapshot());

        assert!(text.contains("# TYPE core_ops counter\ncore_ops 42\n"));
        assert!(text.contains("# TYPE span_build_ns histogram"));
        // Buckets are cumulative: 1 → le=1, {2,3} → le=3 at 3, 100 at le=127.
        assert!(text.contains("span_build_ns_bucket{le=\"1\"} 1"));
        assert!(text.contains("span_build_ns_bucket{le=\"3\"} 3"));
        assert!(text.contains("span_build_ns_bucket{le=\"127\"} 4"));
        assert!(text.contains("span_build_ns_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("span_build_ns_sum 106"));
        assert!(text.contains("span_build_ns_count 4"));
        // The companion summary carries interpolated quantiles.
        assert!(text.contains("# TYPE span_build_ns_summary summary"));
        assert!(text.contains("span_build_ns_summary{quantile=\"0.5\"}"));
        assert!(text.contains("span_build_ns_summary{quantile=\"0.95\"}"));
        assert!(text.contains("span_build_ns_summary{quantile=\"0.99\"}"));
    }

    #[test]
    fn unbounded_top_bucket_folds_into_inf() {
        let r = Registry::default();
        r.histogram("big").record(u64::MAX);
        let text = encode(&r.snapshot());
        assert!(!text.contains("le=\"18446744073709551615\""), "{text}");
        assert!(text.contains("big_bucket{le=\"+Inf\"} 1"), "{text}");
    }

    #[test]
    fn empty_snapshot_encodes_to_nothing() {
        assert_eq!(encode(&Snapshot::default()), "");
    }
}
