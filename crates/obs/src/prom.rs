//! Prometheus text exposition of the metric registry.
//!
//! Encodes a [`Snapshot`] in the Prometheus text format (version 0.0.4,
//! what `GET /metrics` is expected to speak): every counter as a
//! `counter` family, every histogram as a `histogram` family (cumulative
//! `le` buckets ending in `+Inf`, `_sum`, `_count`) **plus** a parallel
//! `summary` family carrying interpolated p50/p95/p99 quantiles from
//! [`HistogramSnapshot::quantile_estimate`]. The summary lives under a
//! distinct `<name>_summary` family because Prometheus forbids one
//! family exposing both bucket and quantile series.
//!
//! Metric names are sanitized (`.` and any other non-`[a-zA-Z0-9_:]`
//! byte become `_`) so registry names like `par.tasks` export as
//! `par_tasks`.

use crate::metrics::HistogramSnapshot;
use crate::registry::Snapshot;
use crate::scope::ScopeSnapshot;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Quantiles exposed in each histogram's companion summary family.
pub const SUMMARY_QUANTILES: [f64; 3] = [0.5, 0.95, 0.99];

/// Renders the whole snapshot as Prometheus text exposition.
pub fn encode(snapshot: &Snapshot) -> String {
    encode_with_scopes(snapshot, &[])
}

/// [`encode`] plus per-scope labelled series: each live scope's
/// counters and histogram summaries join their metric's family as
/// series labelled with the scope's dimensions (`name{session="…"} v`),
/// so one Prometheus family carries the global total and its per-scope
/// breakdown side by side. Only live scopes export — retired scopes
/// would otherwise pin stale series forever.
pub fn encode_with_scopes(snapshot: &Snapshot, scopes: &[ScopeSnapshot]) -> String {
    // Scope series grouped per metric name, in scope-id order.
    let mut scoped_counters: BTreeMap<&str, Vec<(String, u64)>> = BTreeMap::new();
    let mut scoped_histograms: BTreeMap<&str, Vec<(String, &HistogramSnapshot)>> = BTreeMap::new();
    for scope in scopes.iter().filter(|s| s.live) {
        let labels = label_set(&scope.labels);
        for (name, &value) in &scope.metrics.counters {
            scoped_counters
                .entry(name)
                .or_default()
                .push((labels.clone(), value));
        }
        for (name, hist) in &scope.metrics.histograms {
            scoped_histograms
                .entry(name)
                .or_default()
                .push((labels.clone(), hist));
        }
    }
    let mut out = String::new();
    for (name, &value) in &snapshot.counters {
        let series = scoped_counters.remove(name.as_str()).unwrap_or_default();
        let name = sanitize(name);
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
        for (labels, v) in series {
            let _ = writeln!(out, "{name}{{{labels}}} {v}");
        }
    }
    // Scoped counters with no global series should be impossible under
    // write-through, but a family must not silently vanish if one shows
    // up (e.g. a scope outliving a registry reset).
    for (name, series) in scoped_counters {
        let name = sanitize(name);
        let _ = writeln!(out, "# TYPE {name} counter");
        for (labels, v) in series {
            let _ = writeln!(out, "{name}{{{labels}}} {v}");
        }
    }
    for (name, hist) in &snapshot.histograms {
        let series = scoped_histograms.remove(name.as_str()).unwrap_or_default();
        encode_histogram(&mut out, &sanitize(name), hist, &series);
    }
    for (name, series) in scoped_histograms {
        let zero = HistogramSnapshot::from_nonzero_buckets(&[], 0, 0, 0);
        encode_histogram(&mut out, &sanitize(name), &zero, &series);
    }
    out
}

fn encode_histogram(
    out: &mut String,
    name: &str,
    hist: &HistogramSnapshot,
    scoped: &[(String, &HistogramSnapshot)],
) {
    let _ = writeln!(out, "# TYPE {name} histogram");
    let mut cumulative = 0u64;
    for (bound, count) in hist.nonzero_buckets() {
        cumulative += count;
        if bound == u64::MAX {
            // The top log2 bucket is unbounded; fold it into +Inf.
            continue;
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
    }
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", hist.count);
    let _ = writeln!(out, "{name}_sum {}", hist.sum);
    let _ = writeln!(out, "{name}_count {}", hist.count);

    let _ = writeln!(out, "# TYPE {name}_summary summary");
    for q in SUMMARY_QUANTILES {
        let _ = writeln!(
            out,
            "{name}_summary{{quantile=\"{q}\"}} {}",
            fmt_f64(hist.quantile_estimate(q))
        );
    }
    let _ = writeln!(out, "{name}_summary_sum {}", hist.sum);
    let _ = writeln!(out, "{name}_summary_count {}", hist.count);
    // Per-scope breakdown rides the summary family (quantile series can
    // carry extra label dimensions; bucket series would need per-scope
    // cumulative merging for no operational gain).
    for (labels, hist) in scoped {
        for q in SUMMARY_QUANTILES {
            let _ = writeln!(
                out,
                "{name}_summary{{{labels},quantile=\"{q}\"}} {}",
                fmt_f64(hist.quantile_estimate(q))
            );
        }
        let _ = writeln!(out, "{name}_summary_sum{{{labels}}} {}", hist.sum);
        let _ = writeln!(out, "{name}_summary_count{{{labels}}} {}", hist.count);
    }
}

/// The `/metrics` body: build identity and uptime gauges, then the
/// global families with per-scope labelled series merged in.
pub fn encode_full(snapshot: &Snapshot, scopes: &[ScopeSnapshot]) -> String {
    let info = crate::build_info();
    let mut out = String::new();
    let _ = writeln!(out, "# TYPE cable_build_info gauge");
    let _ = writeln!(
        out,
        "cable_build_info{{version=\"{}\",git=\"{}\",rustc=\"{}\"}} 1",
        escape_label(info.version),
        escape_label(info.git_hash),
        escape_label(info.rustc)
    );
    let _ = writeln!(out, "# TYPE uptime_seconds gauge");
    let _ = writeln!(out, "uptime_seconds {}", crate::uptime_seconds());
    out.push_str(&encode_with_scopes(snapshot, scopes));
    out
}

/// Renders scope labels as a Prometheus label set (`k="v",…`), with
/// keys sanitized like metric names and values escaped.
fn label_set(labels: &[(String, String)]) -> String {
    let mut out = String::new();
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}=\"{}\"", sanitize(k), escape_label(v));
    }
    out
}

/// Escapes a label value per the text format: backslash, double quote,
/// and newline.
pub fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Maps a registry name onto the Prometheus name charset.
pub fn sanitize(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.starts_with(|c: char| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn sanitize_maps_dots_and_leading_digits() {
        assert_eq!(sanitize("par.tasks"), "par_tasks");
        assert_eq!(sanitize("obs.recorder.dropped"), "obs_recorder_dropped");
        assert_eq!(sanitize("9lives"), "_9lives");
        assert_eq!(sanitize("ok_name:x"), "ok_name:x");
    }

    #[test]
    fn counters_and_histograms_expose_all_series() {
        let r = Registry::default();
        r.counter("core.ops").add(42);
        let h = r.histogram("span.build.ns");
        for v in [1u64, 2, 3, 100] {
            h.record(v);
        }
        let text = encode(&r.snapshot());

        assert!(text.contains("# TYPE core_ops counter\ncore_ops 42\n"));
        assert!(text.contains("# TYPE span_build_ns histogram"));
        // Buckets are cumulative: 1 → le=1, {2,3} → le=3 at 3, 100 at le=127.
        assert!(text.contains("span_build_ns_bucket{le=\"1\"} 1"));
        assert!(text.contains("span_build_ns_bucket{le=\"3\"} 3"));
        assert!(text.contains("span_build_ns_bucket{le=\"127\"} 4"));
        assert!(text.contains("span_build_ns_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("span_build_ns_sum 106"));
        assert!(text.contains("span_build_ns_count 4"));
        // The companion summary carries interpolated quantiles.
        assert!(text.contains("# TYPE span_build_ns_summary summary"));
        assert!(text.contains("span_build_ns_summary{quantile=\"0.5\"}"));
        assert!(text.contains("span_build_ns_summary{quantile=\"0.95\"}"));
        assert!(text.contains("span_build_ns_summary{quantile=\"0.99\"}"));
    }

    #[test]
    fn unbounded_top_bucket_folds_into_inf() {
        let r = Registry::default();
        r.histogram("big").record(u64::MAX);
        let text = encode(&r.snapshot());
        assert!(!text.contains("le=\"18446744073709551615\""), "{text}");
        assert!(text.contains("big_bucket{le=\"+Inf\"} 1"), "{text}");
    }

    #[test]
    fn empty_snapshot_encodes_to_nothing() {
        assert_eq!(encode(&Snapshot::default()), "");
    }

    #[test]
    fn scoped_series_join_their_family_with_labels() {
        let scoped = crate::scope::ScopedRegistry::default();
        let scope = scoped.open(&[("session", "s-1"), ("tenant", "acme")]);
        scope.add("core.work", 7);
        scope.record("core.lat_ns", 100);
        let retired = scoped.open(&[("session", "gone")]);
        retired.add("core.work", 1);
        drop(retired);

        // A registry standing in for the global one (write-through also
        // bumped the real global registry; encoding is pure either way).
        let r = Registry::default();
        r.counter("core.work").add(8);
        r.histogram("core.lat_ns").record(100);
        let text = encode_with_scopes(&r.snapshot(), &scoped.snapshot());

        // One TYPE line, global series first, then the labelled series.
        assert_eq!(text.matches("# TYPE core_work counter").count(), 1);
        assert!(text.contains("core_work 8\n"), "{text}");
        assert!(
            text.contains("core_work{session=\"s-1\",tenant=\"acme\"} 7"),
            "{text}"
        );
        // Retired scopes do not export series.
        assert!(!text.contains("session=\"gone\""), "{text}");
        // Scoped histograms ride the summary family with labels.
        assert!(
            text.contains("core_lat_ns_summary{session=\"s-1\",tenant=\"acme\",quantile=\"0.95\"}"),
            "{text}"
        );
        assert!(
            text.contains("core_lat_ns_summary_count{session=\"s-1\",tenant=\"acme\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn encode_full_leads_with_build_info_and_uptime() {
        let text = encode_full(&Snapshot::default(), &[]);
        assert!(text.contains("# TYPE cable_build_info gauge"), "{text}");
        assert!(
            text.contains(&format!("version=\"{}\"", env!("CARGO_PKG_VERSION"))),
            "{text}"
        );
        assert!(text.contains("git="), "{text}");
        assert!(text.contains("# TYPE uptime_seconds gauge"), "{text}");
        assert!(text.contains("\nuptime_seconds "), "{text}");
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(escape_label("plain"), "plain");
        assert_eq!(escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
