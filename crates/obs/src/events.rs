//! The wide-event log: one self-describing JSON record per unit of
//! work.
//!
//! Counters say *how much*, the recorder says *when*; wide events say
//! *what happened*: one record per ingest batch, Godin shard merge,
//! label op, HTTP request, budget trip, or contained panic, carrying the
//! scope id, the stage, the outcome, the duration, and whatever counter
//! deltas the emitter attributes to that unit. This is the canonical
//! log-line pattern — instead of ten interleaved log lines per request,
//! one record that can be filtered and aggregated after the fact.
//!
//! # Schema
//!
//! Every event is a JSON object with at least (see DESIGN.md §13 for
//! the full field table):
//!
//! * `record`: always `"wide_event"`;
//! * `seq`: process-wide emission sequence number;
//! * `kind`: the unit of work (`"ingest_batch"`, `"http_request"`, …);
//! * `scope`: the attribution scope id (a session label, `"http"`,
//!   `"par"` — never empty);
//! * `outcome`: `"ok"` or a failure class (never empty);
//! * `ts_ms` / `uptime_ns`: wall-clock and monotonic stamps — *timing*
//!   fields, stripped by `reproduce diff` like every other timing field.
//!
//! Optional common fields: `stage`, `tenant`, `duration_ns`, and a
//! `deltas` object of counter increments attributed to the unit. Any
//! further key/value pairs ride along (the "wide" part).
//! [`check_schema`] is the contract test — CI runs it over every event a
//! quick `reproduce` run emits.
//!
//! # Transport
//!
//! [`emit`] is a no-op (one relaxed load) while disabled. When enabled,
//! each event lands in a bounded in-memory ring (tail-served at
//! `/eventz`) and, when a sink is installed ([`install_sink`] — the
//! `--events-out` flag), is appended through the buffered
//! [`JsonlSink`]. Emission also feeds the SLO windows
//! ([`crate::slo::observe`]) so `/sloz` is computed from the same
//! stream the operator reads.

use crate::json::Value;
use crate::sink::JsonlSink;
use crate::slo;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// Events retained in memory for `/eventz` (oldest evicted first).
pub const EVENT_RING_CAPACITY: usize = 512;

static ENABLED: AtomicBool = AtomicBool::new(false);
static SEQ: AtomicU64 = AtomicU64::new(0);

/// Whether wide events are being captured.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns wide-event capture on or off.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

fn ring() -> &'static Mutex<VecDeque<Value>> {
    static RING: OnceLock<Mutex<VecDeque<Value>>> = OnceLock::new();
    RING.get_or_init(|| Mutex::new(VecDeque::new()))
}

fn sink_slot() -> &'static Mutex<Option<JsonlSink>> {
    static SLOT: OnceLock<Mutex<Option<JsonlSink>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

/// Installs (replacing) the persistent event sink; also enables capture.
/// The previous sink, if any, is flushed by its drop.
pub fn install_sink(sink: JsonlSink) {
    *sink_slot().lock().expect("event sink poisoned") = Some(sink);
    set_enabled(true);
}

/// Removes and returns the installed sink (buffered lines flush when the
/// caller drops it). Capture stays in whatever state it was.
pub fn take_sink() -> Option<JsonlSink> {
    sink_slot().lock().expect("event sink poisoned").take()
}

/// Flushes the installed sink's buffered lines to disk, if one is
/// installed.
pub fn flush_sink() {
    if let Some(sink) = sink_slot().lock().expect("event sink poisoned").as_ref() {
        let _ = sink.flush();
    }
}

/// One wide event under construction. Build with [`WideEvent::new`] and
/// the chained setters, then [`emit`] it.
#[derive(Debug, Clone)]
pub struct WideEvent {
    kind: &'static str,
    scope: String,
    stage: String,
    tenant: String,
    outcome: String,
    duration_ns: Option<u64>,
    fields: Vec<(&'static str, Value)>,
}

impl WideEvent {
    /// Starts an event for one unit of work of `kind`, attributed to
    /// `scope` (a session label, `"http"`, `"par"`, …). The outcome
    /// defaults to `"ok"`.
    pub fn new(kind: &'static str, scope: impl Into<String>) -> WideEvent {
        WideEvent {
            kind,
            scope: scope.into(),
            stage: String::new(),
            tenant: String::new(),
            outcome: "ok".to_owned(),
            duration_ns: None,
            fields: Vec::new(),
        }
    }

    /// Sets the pipeline stage the unit ran under.
    pub fn stage(mut self, stage: impl Into<String>) -> WideEvent {
        self.stage = stage.into();
        self
    }

    /// Sets the tenant directory dimension.
    pub fn tenant(mut self, tenant: impl Into<String>) -> WideEvent {
        self.tenant = tenant.into();
        self
    }

    /// Sets the outcome (`"ok"`, `"error"`, `"budget_exceeded"`,
    /// `"panic"`, an HTTP status, …).
    pub fn outcome(mut self, outcome: impl Into<String>) -> WideEvent {
        self.outcome = outcome.into();
        self
    }

    /// Sets the unit's duration from a [`Duration`].
    pub fn duration(mut self, d: Duration) -> WideEvent {
        self.duration_ns = Some(d.as_nanos().min(u64::MAX as u128) as u64);
        self
    }

    /// Sets the unit's duration in nanoseconds.
    pub fn duration_ns(mut self, ns: u64) -> WideEvent {
        self.duration_ns = Some(ns);
        self
    }

    /// Attaches an extra field (the "wide" part: counts, sizes, paths).
    pub fn field(mut self, key: &'static str, value: impl Into<Value>) -> WideEvent {
        self.fields.push((key, value.into()));
        self
    }

    /// Attaches the non-zero counters of a snapshot delta as the
    /// `deltas` object — the counter increments this unit caused.
    pub fn deltas(mut self, delta: &crate::registry::Snapshot) -> WideEvent {
        let nonzero: std::collections::BTreeMap<String, Value> = delta
            .counters
            .iter()
            .filter(|(_, &v)| v > 0)
            .map(|(k, &v)| (k.clone(), Value::from(v)))
            .collect();
        if !nonzero.is_empty() {
            self.fields.push(("deltas", Value::Object(nonzero)));
        }
        self
    }

    fn into_json(self, seq: u64) -> Value {
        let ts_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis().min(u64::MAX as u128) as u64)
            .unwrap_or(0);
        let mut pairs = vec![
            ("record", Value::from("wide_event")),
            ("seq", Value::from(seq)),
            ("ts_ms", Value::from(ts_ms)),
            ("uptime_ns", Value::from(crate::recorder::now_ns())),
            ("kind", Value::from(self.kind)),
            ("scope", Value::from(self.scope)),
            ("outcome", Value::from(self.outcome)),
        ];
        if !self.stage.is_empty() {
            pairs.push(("stage", Value::from(self.stage)));
        }
        if !self.tenant.is_empty() {
            pairs.push(("tenant", Value::from(self.tenant)));
        }
        if let Some(ns) = self.duration_ns {
            pairs.push(("duration_ns", Value::from(ns)));
        }
        pairs.extend(self.fields);
        Value::object(pairs)
    }
}

/// Emits one event: sequence-stamps it, feeds the SLO windows, appends
/// it to the in-memory ring, and writes it through the installed sink
/// (if any). A no-op (one relaxed load) while capture is disabled.
pub fn emit(event: WideEvent) {
    if !enabled() {
        return;
    }
    let ok = event.outcome == "ok";
    let window_key = if event.stage.is_empty() {
        event.kind.to_owned()
    } else {
        format!("{}:{}", event.kind, event.stage)
    };
    slo::observe(&window_key, event.duration_ns.unwrap_or(0), ok);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed) + 1;
    let json = event.into_json(seq);
    if let Some(sink) = sink_slot().lock().expect("event sink poisoned").as_ref() {
        let _ = sink.write(&json);
    }
    let mut ring = ring().lock().expect("event ring poisoned");
    if ring.len() >= EVENT_RING_CAPACITY {
        ring.pop_front();
    }
    ring.push_back(json);
}

/// Total events emitted since process start (including ones the ring has
/// since evicted).
pub fn total_emitted() -> u64 {
    SEQ.load(Ordering::Relaxed)
}

/// The most recent `limit` events, oldest first.
pub fn recent(limit: usize) -> Vec<Value> {
    let ring = ring().lock().expect("event ring poisoned");
    let start = ring.len().saturating_sub(limit);
    ring.iter().skip(start).cloned().collect()
}

/// The `/eventz` body: capture state, totals, and the ring tail.
pub fn eventz_json(limit: usize) -> Value {
    Value::object([
        ("enabled", Value::from(enabled())),
        ("total", Value::from(total_emitted())),
        ("capacity", Value::from(EVENT_RING_CAPACITY)),
        ("events", Value::Array(recent(limit))),
    ])
}

/// Validates one record against the wide-event schema contract: it must
/// be an object with `record == "wide_event"`, a `seq`, a non-empty
/// `kind`, a non-empty `scope`, a non-empty `outcome`, and — when
/// present — a numeric `duration_ns`. CI's event-schema gate maps this
/// over every event a quick `reproduce` run writes.
///
/// # Errors
///
/// A human-readable description of the first violated constraint.
pub fn check_schema(event: &Value) -> Result<(), String> {
    if event.get("record").and_then(Value::as_str) != Some("wide_event") {
        return Err("record field is not \"wide_event\"".to_owned());
    }
    if event.get("seq").and_then(Value::as_u64).is_none() {
        return Err("seq field missing or not a u64".to_owned());
    }
    for key in ["kind", "scope", "outcome"] {
        match event.get(key).and_then(Value::as_str) {
            Some(s) if !s.is_empty() => {}
            Some(_) => return Err(format!("{key} field is empty")),
            None => return Err(format!("{key} field missing or not a string")),
        }
    }
    if let Some(d) = event.get("duration_ns") {
        if d.as_u64().is_none() {
            return Err("duration_ns field is not a u64".to_owned());
        }
    }
    // Kind-specific contracts the chaos drill replays from the log:
    // a fault without its site (or a degradation without its cause)
    // cannot be matched against the injected schedule.
    match event.get("kind").and_then(Value::as_str) {
        Some("fault_injected") => {
            match event.get("site").and_then(Value::as_str) {
                Some(s) if !s.is_empty() => {}
                _ => return Err("fault_injected event without a site".to_owned()),
            }
            if event.get("hit").and_then(Value::as_u64).is_none() {
                return Err("fault_injected event without a u64 hit ordinal".to_owned());
            }
        }
        Some("store_degraded") | Some("store_recovered") => {
            match event.get("cause").and_then(Value::as_str) {
                Some(c) if !c.is_empty() => {}
                _ => return Err("store durability event without a cause".to_owned()),
            }
        }
        _ => {}
    }
    Ok(())
}

/// Empties the in-memory ring (tests and benchmark sections). The
/// sequence counter and any installed sink are untouched.
pub fn clear_ring() {
    ring().lock().expect("event ring poisoned").clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Capture state is process-global; tests that toggle it must not
    /// interleave.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_emit_records_nothing() {
        let _l = lock();
        set_enabled(false);
        let before = total_emitted();
        emit(WideEvent::new("unit_test", "nobody"));
        assert_eq!(total_emitted(), before);
    }

    #[test]
    fn emitted_events_carry_the_schema_and_ride_the_ring() {
        let _l = lock();
        set_enabled(true);
        clear_ring();
        emit(
            WideEvent::new("unit_test", "session-a")
                .stage("ingest")
                .tenant("acme")
                .outcome("ok")
                .duration(Duration::from_micros(5))
                .field("traces", 80u64),
        );
        set_enabled(false);
        let events = recent(16);
        let event = events.last().expect("event in ring");
        check_schema(event).expect("schema holds");
        assert_eq!(event.get("kind").and_then(Value::as_str), Some("unit_test"));
        assert_eq!(
            event.get("scope").and_then(Value::as_str),
            Some("session-a")
        );
        assert_eq!(event.get("stage").and_then(Value::as_str), Some("ingest"));
        assert_eq!(event.get("tenant").and_then(Value::as_str), Some("acme"));
        assert_eq!(event.get("traces").and_then(Value::as_u64), Some(80));
        assert_eq!(event.get("duration_ns").and_then(Value::as_u64), Some(5000));
        clear_ring();
    }

    #[test]
    fn ring_is_bounded_and_keeps_the_newest() {
        let _l = lock();
        set_enabled(true);
        clear_ring();
        for i in 0..(EVENT_RING_CAPACITY + 8) {
            emit(WideEvent::new("ring_fill", "t").field("i", i as u64));
        }
        set_enabled(false);
        let events = recent(usize::MAX);
        assert_eq!(events.len(), EVENT_RING_CAPACITY);
        let last = events.last().unwrap();
        assert_eq!(
            last.get("i").and_then(Value::as_u64),
            Some((EVENT_RING_CAPACITY + 7) as u64)
        );
        // `recent` limits from the tail.
        assert_eq!(recent(3).len(), 3);
        clear_ring();
    }

    #[test]
    fn deltas_attach_only_nonzero_counters() {
        let _l = lock();
        let reg = crate::registry::Registry::default();
        reg.counter("ev.delta.work").add(4);
        reg.counter("ev.delta.idle"); // stays zero
        let delta = reg.snapshot();
        set_enabled(true);
        clear_ring();
        emit(WideEvent::new("delta_test", "t").deltas(&delta));
        set_enabled(false);
        let events = recent(1);
        let deltas = events[0].get("deltas").expect("deltas object");
        assert_eq!(deltas.get("ev.delta.work").and_then(Value::as_u64), Some(4));
        assert!(deltas.get("ev.delta.idle").is_none());
        clear_ring();
    }

    #[test]
    fn check_schema_rejects_malformed_events() {
        let ok = Value::object([
            ("record", Value::from("wide_event")),
            ("seq", Value::from(1u64)),
            ("kind", Value::from("k")),
            ("scope", Value::from("s")),
            ("outcome", Value::from("ok")),
        ]);
        assert!(check_schema(&ok).is_ok());

        let not_event = Value::object([("record", Value::from("other"))]);
        assert!(check_schema(&not_event).is_err());

        let empty_scope = Value::object([
            ("record", Value::from("wide_event")),
            ("seq", Value::from(1u64)),
            ("kind", Value::from("k")),
            ("scope", Value::from("")),
            ("outcome", Value::from("ok")),
        ]);
        assert!(check_schema(&empty_scope).is_err());

        let bad_duration = Value::object([
            ("record", Value::from("wide_event")),
            ("seq", Value::from(1u64)),
            ("kind", Value::from("k")),
            ("scope", Value::from("s")),
            ("outcome", Value::from("ok")),
            ("duration_ns", Value::from("fast")),
        ]);
        assert!(check_schema(&bad_duration).is_err());
    }

    #[test]
    fn check_schema_enforces_the_chaos_event_contracts() {
        fn base(kind: &'static str, extra: Vec<(&'static str, Value)>) -> Value {
            let mut fields = vec![
                ("record", Value::from("wide_event")),
                ("seq", Value::from(1u64)),
                ("kind", Value::from(kind)),
                ("scope", Value::from("faults")),
                ("outcome", Value::from("injected")),
            ];
            fields.extend(extra);
            Value::object(fields)
        }

        let fired = base(
            "fault_injected",
            vec![
                ("site", Value::from("store.fsync")),
                ("hit", Value::from(3u64)),
            ],
        );
        assert!(check_schema(&fired).is_ok());
        assert!(check_schema(&base("fault_injected", vec![("hit", Value::from(3u64))])).is_err());
        assert!(check_schema(&base(
            "fault_injected",
            vec![
                ("site", Value::from("store.fsync")),
                ("hit", Value::from("three")),
            ],
        ))
        .is_err());

        let degraded = base("store_degraded", vec![("cause", Value::from("fsync"))]);
        assert!(check_schema(&degraded).is_ok());
        assert!(check_schema(&base("store_degraded", vec![])).is_err());
        assert!(check_schema(&base("store_recovered", vec![("cause", Value::from(""))])).is_err());
    }

    #[test]
    fn sink_receives_events_and_flushes() {
        let _l = lock();
        let path = std::env::temp_dir().join(format!(
            "cable-obs-events-sink-{}.jsonl",
            std::process::id()
        ));
        install_sink(JsonlSink::create(&path).unwrap());
        emit(WideEvent::new("sinked", "t").outcome("ok"));
        let sink = take_sink().expect("sink installed");
        drop(sink); // flush-on-drop
        set_enabled(false);
        let text = std::fs::read_to_string(&path).unwrap();
        let records = crate::sink::parse_jsonl(&text).unwrap();
        assert!(records
            .iter()
            .any(|r| r.get("kind").and_then(Value::as_str) == Some("sinked")));
        for r in &records {
            check_schema(r).expect("sinked events keep the schema");
        }
        let _ = std::fs::remove_file(&path);
        clear_ring();
    }
}
