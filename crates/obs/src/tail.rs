//! Tail-based retention of finished request traces.
//!
//! Keeping every span of every request would turn the recorder into an
//! audit log; keeping none would make p99 investigations impossible.
//! Tail sampling decides *after* the request finishes, when the
//! interesting facts — wall time, status — are known:
//!
//! * every request leaves a bounded **summary** (ring of
//!   [`SUMMARY_CAP`]): trace id, route, status, wall time, span count;
//! * the **complete span tree** is kept only for requests that are slow
//!   (wall time ≥ the configurable [`slow_threshold_us`]), failed
//!   (status ≥ 500), or landed on the 1-in-N sample
//!   ([`set_sample_every`]) — in a ring of [`TREE_CAP`] trees.
//!
//! `/tracez?slowest=N` indexes the summaries; `/tracez?trace=ID`
//! renders a kept tree as a waterfall; `/tracez/export` dumps the whole
//! store as a `trace_export` JSON record for `reproduce trace-report`.

use crate::context::{FinishedTrace, SpanRec};
use crate::json::Value;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Per-request summaries retained (newest wins).
pub const SUMMARY_CAP: usize = 512;
/// Complete span trees retained (newest wins).
pub const TREE_CAP: usize = 128;
/// Default slow-request threshold, microseconds.
pub const DEFAULT_SLOW_US: u64 = 10_000;
/// Default sampling period for fast, successful requests.
pub const DEFAULT_SAMPLE_EVERY: u64 = 16;

static SLOW_US: AtomicU64 = AtomicU64::new(DEFAULT_SLOW_US);
static SAMPLE_EVERY: AtomicU64 = AtomicU64::new(DEFAULT_SAMPLE_EVERY);

/// Sets the wall-time threshold above which a request's complete span
/// tree is always kept (`--trace-slow-us` / `CABLE_TRACE_SLOW_US`).
pub fn set_slow_threshold_us(us: u64) {
    SLOW_US.store(us, Ordering::Relaxed);
}

/// The current slow-request threshold, microseconds.
pub fn slow_threshold_us() -> u64 {
    SLOW_US.load(Ordering::Relaxed)
}

/// Keeps the full tree of every `n`-th fast, successful request
/// (`0` disables sampling; slow/error trees are always kept).
pub fn set_sample_every(n: u64) {
    SAMPLE_EVERY.store(n, Ordering::Relaxed);
}

/// One retained request summary.
#[derive(Debug, Clone)]
pub struct TraceSummary {
    /// 32-hex-digit trace id.
    pub trace: String,
    /// Root span id.
    pub root: u64,
    /// Normalised route (`/api/label`, `/metrics`, ...).
    pub route: String,
    /// HTTP status the request finished with.
    pub status: u16,
    /// Root-span wall time (includes accept-queue wait), microseconds.
    pub wall_us: u64,
    /// Spans collected for the request.
    pub spans: usize,
    /// Spans lost to the per-request cap.
    pub dropped: u64,
    /// Why the full tree was kept: `slow`, `error`, `sampled`, or the
    /// empty string when only this summary survives.
    pub kept: &'static str,
}

#[derive(Debug)]
struct StoredTree {
    summary: TraceSummary,
    spans: Vec<SpanRec>,
}

#[derive(Debug, Default)]
struct TailStore {
    summaries: VecDeque<TraceSummary>,
    trees: VecDeque<StoredTree>,
    /// Requests ever offered (drives the 1-in-N sample).
    seen: u64,
}

fn store() -> &'static Mutex<TailStore> {
    static STORE: OnceLock<Mutex<TailStore>> = OnceLock::new();
    STORE.get_or_init(|| Mutex::new(TailStore::default()))
}

/// Serialises in-crate tests that reset or seed the process-wide tail
/// store (the store is global; concurrent test clears would race).
#[cfg(test)]
pub(crate) static TEST_STORE_LOCK: Mutex<()> = Mutex::new(());

/// Offers a finished request to the tail store. Returns the retention
/// decision (`slow`/`error`/`sampled`, or `""` for summary-only).
pub fn record(route: &str, status: u16, finished: &FinishedTrace) -> &'static str {
    let wall_us = finished.wall_us();
    let mut tail = store().lock().expect("tail store poisoned");
    tail.seen += 1;
    let sample = SAMPLE_EVERY.load(Ordering::Relaxed);
    let kept = if status >= 500 {
        "error"
    } else if wall_us >= SLOW_US.load(Ordering::Relaxed) {
        "slow"
    } else if sample > 0 && tail.seen.is_multiple_of(sample) {
        "sampled"
    } else {
        ""
    };
    let summary = TraceSummary {
        trace: finished.ctx.trace_hex(),
        root: finished.ctx.span_id,
        route: route.to_owned(),
        status,
        wall_us,
        spans: finished.spans.len(),
        dropped: finished.dropped,
        kept,
    };
    if !kept.is_empty() && !finished.spans.is_empty() {
        if tail.trees.len() >= TREE_CAP {
            tail.trees.pop_front();
        }
        tail.trees.push_back(StoredTree {
            summary: summary.clone(),
            spans: finished.spans.clone(),
        });
    }
    if tail.summaries.len() >= SUMMARY_CAP {
        tail.summaries.pop_front();
    }
    tail.summaries.push_back(summary);
    kept
}

/// The `n` slowest retained summaries, slowest first (ties broken by
/// trace id so the index is stable).
pub fn slowest(n: usize) -> Vec<TraceSummary> {
    let tail = store().lock().expect("tail store poisoned");
    let mut out: Vec<TraceSummary> = tail.summaries.iter().cloned().collect();
    out.sort_by(|a, b| {
        b.wall_us
            .cmp(&a.wall_us)
            .then_with(|| a.trace.cmp(&b.trace))
    });
    out.truncate(n);
    out
}

/// Looks up a kept span tree by its 32-hex-digit trace id.
pub fn tree(trace_hex: &str) -> Option<(TraceSummary, Vec<SpanRec>)> {
    let tail = store().lock().expect("tail store poisoned");
    tail.trees
        .iter()
        .rev()
        .find(|t| t.summary.trace == trace_hex)
        .map(|t| (t.summary.clone(), t.spans.clone()))
}

/// Empties the store (tests and capture-window scoping).
pub fn clear() {
    let mut tail = store().lock().expect("tail store poisoned");
    *tail = TailStore::default();
}

fn hex16(v: u64) -> String {
    format!("{v:016x}")
}

fn summary_json(s: &TraceSummary) -> Value {
    Value::object([
        ("trace", Value::from(s.trace.as_str())),
        ("root", Value::from(hex16(s.root))),
        ("route", Value::from(s.route.as_str())),
        ("status", Value::from(s.status as u64)),
        ("wall_us", Value::from(s.wall_us)),
        ("spans", Value::from(s.spans as u64)),
        ("dropped", Value::from(s.dropped)),
        ("kept", Value::from(s.kept)),
    ])
}

fn span_json(s: &SpanRec) -> Value {
    Value::object([
        ("name", Value::from(s.name)),
        ("span", Value::from(hex16(s.span))),
        ("parent", Value::from(hex16(s.parent))),
        ("start_ns", Value::from(s.start_ns)),
        ("end_ns", Value::from(s.end_ns)),
    ])
}

/// The `/tracez?slowest=N` body: the N slowest retained summaries.
pub fn slowest_json(n: usize) -> Value {
    Value::object([
        ("record", Value::from("trace_slowest")),
        ("slow_threshold_us", Value::from(slow_threshold_us())),
        (
            "slowest",
            Value::Array(slowest(n).iter().map(summary_json).collect()),
        ),
    ])
}

/// The whole store as a `trace_export` JSON record: every summary plus
/// every kept span tree. `reproduce trace-report` and `check-trace`
/// consume this.
pub fn export() -> Value {
    let tail = store().lock().expect("tail store poisoned");
    let summaries: Vec<Value> = tail.summaries.iter().map(summary_json).collect();
    let traces: Vec<Value> = tail
        .trees
        .iter()
        .map(|t| {
            let s = &t.summary;
            Value::object([
                ("trace", Value::from(s.trace.as_str())),
                ("root", Value::from(hex16(s.root))),
                ("route", Value::from(s.route.as_str())),
                ("status", Value::from(s.status as u64)),
                ("wall_us", Value::from(s.wall_us)),
                ("dropped", Value::from(s.dropped)),
                ("kept", Value::from(s.kept)),
                (
                    "spans_tree",
                    Value::Array(t.spans.iter().map(span_json).collect()),
                ),
            ])
        })
        .collect();
    Value::object([
        ("record", Value::from("trace_export")),
        ("slow_threshold_us", Value::from(slow_threshold_us())),
        (
            "sample_every",
            Value::from(SAMPLE_EVERY.load(Ordering::Relaxed)),
        ),
        ("seen", Value::from(tail.seen)),
        ("summaries", Value::Array(summaries)),
        ("traces", Value::Array(traces)),
    ])
}

/// Renders a kept tree as a plain-text waterfall: one line per span,
/// indented by tree depth, with offset/duration and a proportional bar.
pub fn render_waterfall(summary: &TraceSummary, spans: &[SpanRec]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace {}  route {}  status {}  wall {}us  spans {}{}",
        summary.trace,
        summary.route,
        summary.status,
        summary.wall_us,
        summary.spans,
        if summary.dropped > 0 {
            format!("  dropped {}", summary.dropped)
        } else {
            String::new()
        },
    );
    let t0 = spans.iter().map(|s| s.start_ns).min().unwrap_or(0);
    let t1 = spans.iter().map(|s| s.end_ns).max().unwrap_or(t0);
    let total = (t1 - t0).max(1);
    // Children under their parent, siblings by start time.
    fn visit<'a>(
        parent: u64,
        depth: usize,
        spans: &'a [SpanRec],
        out: &mut Vec<(&'a SpanRec, usize)>,
    ) {
        let mut kids: Vec<&SpanRec> = spans.iter().filter(|s| s.parent == parent).collect();
        kids.sort_by_key(|s| (s.start_ns, s.span));
        for kid in kids {
            out.push((kid, depth));
            if depth < 64 {
                visit(kid.span, depth + 1, spans, out);
            }
        }
    }
    let mut rows: Vec<(&SpanRec, usize)> = Vec::with_capacity(spans.len());
    visit(0, 0, spans, &mut rows);
    // Orphans (parent not kept, e.g. collector overflow) still print.
    for s in spans {
        if !rows.iter().any(|(r, _)| r.span == s.span) {
            rows.push((s, 0));
        }
    }
    const BAR: usize = 40;
    for (span, depth) in rows {
        let offset = span.start_ns - t0;
        let dur = span.end_ns.saturating_sub(span.start_ns);
        let lead = ((offset as u128 * BAR as u128) / total as u128) as usize;
        let fill = ((dur as u128 * BAR as u128).div_ceil(total as u128)) as usize;
        let fill = fill.clamp(1, BAR.saturating_sub(lead).max(1));
        let _ = writeln!(
            out,
            "  [{}{}{}] {:>9.1}us @{:>9.1}us  {}{} ({:016x})",
            " ".repeat(lead.min(BAR)),
            "█".repeat(fill),
            " ".repeat(BAR.saturating_sub(lead.min(BAR) + fill)),
            dur as f64 / 1e3,
            offset as f64 / 1e3,
            "· ".repeat(depth),
            span.name,
            span.span,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::TraceCtx;

    use super::TEST_STORE_LOCK as STORE_LOCK;

    fn finished(seq: u64, wall_us: u64, n_spans: usize) -> FinishedTrace {
        let ctx = TraceCtx::mint(99, seq);
        let mut spans = vec![SpanRec {
            name: "http.request",
            span: ctx.span_id,
            parent: 0,
            start_ns: 1_000,
            end_ns: 1_000 + wall_us * 1_000,
        }];
        for i in 0..n_spans.saturating_sub(1) as u64 {
            spans.push(SpanRec {
                name: "step",
                span: crate::context::mix(ctx.span_id, i + 1),
                parent: ctx.span_id,
                start_ns: 1_100 + i,
                end_ns: 1_200 + i,
            });
        }
        FinishedTrace {
            ctx,
            spans,
            dropped: 0,
        }
    }

    #[test]
    fn retention_keeps_slow_error_and_sampled_trees() {
        let _guard = STORE_LOCK.lock().unwrap();
        clear();
        set_slow_threshold_us(5_000);
        set_sample_every(0);
        assert_eq!(record("/api/label", 200, &finished(1, 100, 3)), "");
        assert_eq!(record("/api/label", 200, &finished(2, 9_000, 3)), "slow");
        assert_eq!(record("/api/label", 500, &finished(3, 100, 3)), "error");
        set_sample_every(1);
        assert_eq!(record("/api/label", 200, &finished(4, 100, 3)), "sampled");
        set_sample_every(DEFAULT_SAMPLE_EVERY);
        set_slow_threshold_us(DEFAULT_SLOW_US);

        let idx = slowest(10);
        assert_eq!(idx.len(), 4);
        assert_eq!(idx[0].wall_us, 9_000, "slowest first");
        // Fast unsampled request: summary only, no tree.
        let fast = finished(1, 100, 3).ctx.trace_hex();
        assert!(tree(&fast).is_none());
        let slow = finished(2, 9_000, 3).ctx.trace_hex();
        let (summary, spans) = tree(&slow).expect("slow tree kept");
        assert_eq!(summary.kept, "slow");
        assert_eq!(spans.len(), 3);
        let text = render_waterfall(&summary, &spans);
        assert!(text.contains("http.request"), "{text}");
        assert!(text.contains("step"), "{text}");
        clear();
    }

    #[test]
    fn export_round_trips_and_is_bounded() {
        let _guard = STORE_LOCK.lock().unwrap();
        clear();
        set_slow_threshold_us(0); // keep everything
        for seq in 0..(SUMMARY_CAP + 10) as u64 {
            record("/api/ingest", 200, &finished(seq, 50, 2));
        }
        set_slow_threshold_us(DEFAULT_SLOW_US);
        let value = export();
        assert_eq!(
            value.get("record").and_then(Value::as_str),
            Some("trace_export")
        );
        let summaries = value.get("summaries").and_then(Value::as_array).unwrap();
        assert_eq!(summaries.len(), SUMMARY_CAP, "summary ring is bounded");
        let trees = value.get("traces").and_then(Value::as_array).unwrap();
        assert_eq!(trees.len(), TREE_CAP, "tree ring is bounded");
        let spans = trees[0]
            .get("spans_tree")
            .and_then(Value::as_array)
            .unwrap();
        assert_eq!(spans.len(), 2);
        assert!(spans[0].get("span").and_then(Value::as_str).is_some());
        // Round-trips through the hand-rolled JSON.
        let text = value.to_string();
        assert_eq!(Value::parse(&text).unwrap(), value);
        clear();
    }
}
