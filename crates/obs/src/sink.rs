//! The JSON-lines sink: one JSON object per line, appended to a file.

use crate::json::Value;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

/// Appends JSON records to a file, one compact object per line — the
/// machine-readable perf trail (`BENCH_pipeline.json` is written through
/// this). Thread-safe; each record is flushed so partial lines never hit
/// disk.
#[derive(Debug)]
pub struct JsonlSink {
    writer: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Creates (truncating) the file at `path`.
    pub fn create<P: AsRef<Path>>(path: P) -> std::io::Result<JsonlSink> {
        let file = File::create(path)?;
        Ok(JsonlSink {
            writer: Mutex::new(BufWriter::new(file)),
        })
    }

    /// Opens `path` for appending, creating it if missing.
    pub fn append<P: AsRef<Path>>(path: P) -> std::io::Result<JsonlSink> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(JsonlSink {
            writer: Mutex::new(BufWriter::new(file)),
        })
    }

    /// Writes one record as a single line and flushes.
    pub fn write(&self, record: &Value) -> std::io::Result<()> {
        let mut w = self.writer.lock().expect("jsonl sink poisoned");
        writeln!(w, "{record}")?;
        w.flush()
    }
}

/// Parses a JSONL file back into records (used by tests and future
/// regression tooling; blank lines are skipped).
pub fn parse_jsonl(text: &str) -> Result<Vec<Value>, crate::json::ParseError> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(Value::parse)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Value;

    #[test]
    fn jsonl_round_trips_through_a_file() {
        let path =
            std::env::temp_dir().join(format!("cable-obs-sink-test-{}.jsonl", std::process::id()));
        let sink = JsonlSink::create(&path).unwrap();
        let a = Value::object([("run", Value::from(1u64))]);
        let b = Value::object([("run", Value::from(2u64)), ("note", Value::from("x\ny"))]);
        sink.write(&a).unwrap();
        sink.write(&b).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let records = parse_jsonl(&text).unwrap();
        assert_eq!(records, vec![a, b]);
        let _ = std::fs::remove_file(&path);
    }
}
