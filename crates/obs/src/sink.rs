//! The JSON-lines sink: one JSON object per line, appended to a file.

use crate::json::Value;
use crate::metrics::CounterHandle;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;
use std::sync::Mutex;

static FLUSHES: CounterHandle = CounterHandle::new("obs.sink.flushes");

/// Buffered complete lines beyond this size trigger a flush.
const FLUSH_THRESHOLD: usize = 64 * 1024;

#[derive(Debug)]
struct Inner {
    file: File,
    /// Complete lines only: records are serialised here whole, and the
    /// buffer is written to the file wholesale, so a partial line can
    /// never hit disk — even if the process dies mid-run, the file
    /// parses.
    buf: Vec<u8>,
}

/// Appends JSON records to a file, one compact object per line — the
/// machine-readable perf trail (`BENCH_pipeline.json` is written through
/// this). Thread-safe. Records accumulate in an internal buffer of
/// complete lines that is written out when it passes 64 KiB, on
/// [`JsonlSink::flush`], and on drop — one syscall per batch instead of
/// one per record, with flushes counted under `obs.sink.flushes`.
#[derive(Debug)]
pub struct JsonlSink {
    inner: Mutex<Inner>,
}

impl JsonlSink {
    /// Creates (truncating) the file at `path`.
    pub fn create<P: AsRef<Path>>(path: P) -> std::io::Result<JsonlSink> {
        Ok(JsonlSink::from_file(File::create(path)?))
    }

    /// Opens `path` for appending, creating it if missing.
    pub fn append<P: AsRef<Path>>(path: P) -> std::io::Result<JsonlSink> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(JsonlSink::from_file(file))
    }

    fn from_file(file: File) -> JsonlSink {
        JsonlSink {
            inner: Mutex::new(Inner {
                file,
                buf: Vec::new(),
            }),
        }
    }

    /// Buffers one record as a single complete line, flushing to the
    /// file once the buffer passes the threshold.
    pub fn write(&self, record: &Value) -> std::io::Result<()> {
        let mut inner = self.inner.lock().expect("jsonl sink poisoned");
        writeln!(inner.buf, "{record}")?;
        if inner.buf.len() >= FLUSH_THRESHOLD {
            flush_inner(&mut inner)?;
        }
        Ok(())
    }

    /// Writes all buffered lines to the file now.
    pub fn flush(&self) -> std::io::Result<()> {
        let mut inner = self.inner.lock().expect("jsonl sink poisoned");
        flush_inner(&mut inner)
    }
}

fn flush_inner(inner: &mut Inner) -> std::io::Result<()> {
    if inner.buf.is_empty() {
        return Ok(());
    }
    inner.file.write_all(&inner.buf)?;
    inner.buf.clear();
    FLUSHES.get().incr();
    Ok(())
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        if let Ok(mut inner) = self.inner.lock() {
            let _ = flush_inner(&mut inner);
        }
    }
}

/// Parses a JSONL file back into records (used by tests and future
/// regression tooling; blank lines are skipped).
pub fn parse_jsonl(text: &str) -> Result<Vec<Value>, crate::json::ParseError> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(Value::parse)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Value;

    #[test]
    fn jsonl_round_trips_through_a_file() {
        let path =
            std::env::temp_dir().join(format!("cable-obs-sink-test-{}.jsonl", std::process::id()));
        let sink = JsonlSink::create(&path).unwrap();
        let a = Value::object([("run", Value::from(1u64))]);
        let b = Value::object([("run", Value::from(2u64)), ("note", Value::from("x\ny"))]);
        sink.write(&a).unwrap();
        sink.write(&b).unwrap();
        drop(sink); // flush-on-drop
        let text = std::fs::read_to_string(&path).unwrap();
        let records = parse_jsonl(&text).unwrap();
        assert_eq!(records, vec![a, b]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn records_are_buffered_until_flush_and_flushes_are_counted() {
        let path = std::env::temp_dir().join(format!(
            "cable-obs-sink-buffer-test-{}.jsonl",
            std::process::id()
        ));
        let sink = JsonlSink::create(&path).unwrap();
        let record = Value::object([("k", Value::from("v"))]);
        sink.write(&record).unwrap();
        // Below the threshold nothing has reached the file yet.
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "");

        let flushes_before = FLUSHES.get().get();
        sink.flush().unwrap();
        assert_eq!(FLUSHES.get().get(), flushes_before + 1);
        assert_eq!(
            parse_jsonl(&std::fs::read_to_string(&path).unwrap())
                .unwrap()
                .len(),
            1
        );

        // Flushing an empty buffer is free and uncounted.
        sink.flush().unwrap();
        assert_eq!(FLUSHES.get().get(), flushes_before + 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn big_writes_trigger_the_threshold_flush() {
        let path = std::env::temp_dir().join(format!(
            "cable-obs-sink-threshold-test-{}.jsonl",
            std::process::id()
        ));
        let sink = JsonlSink::create(&path).unwrap();
        let blob = "x".repeat(8 * 1024);
        let record = Value::object([("blob", Value::from(blob.as_str()))]);
        for _ in 0..9 {
            sink.write(&record).unwrap();
        }
        // 9 × ~8 KiB crosses 64 KiB: the file holds complete lines only.
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(!text.is_empty(), "threshold flush happened");
        assert!(text.ends_with('\n'), "only complete lines hit disk");
        assert!(parse_jsonl(&text).is_ok());
        let _ = std::fs::remove_file(&path);
    }
}
