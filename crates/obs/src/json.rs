//! A minimal JSON model with a hand-rolled writer and parser.
//!
//! The workspace policy is no serde; the perf records (`--json-out`, the
//! JSONL sink) and their round-trip tests need only this small subset:
//! objects, arrays, strings, finite numbers, booleans and null. Object
//! keys keep insertion order via `BTreeMap` (sorted), which also makes
//! every emission deterministic.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (emitted as an integer when it is one).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with sorted keys.
    Object(BTreeMap<String, Value>),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Number(v as f64)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Number(v as f64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Number(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}

impl Value {
    /// Builds an object from key/value pairs.
    pub fn object<I: IntoIterator<Item = (&'static str, Value)>>(pairs: I) -> Value {
        Value::Object(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// The value at an object key, if this is an object with that key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// Serialises with two-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in, colon) = match indent {
            Some(w) => (
                "\n",
                " ".repeat(w * depth),
                " ".repeat(w * (depth + 1)),
                ": ",
            ),
            None => ("", String::new(), String::new(), ":"),
        };
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => write_number(out, *n),
            Value::String(s) => write_string(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Value::Object(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_string(out, k);
                    out.push_str(colon);
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    pub fn parse(text: &str) -> Result<Value, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }
}

/// Compact JSON serialisation (`value.to_string()` or `{value}`).
impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        f.write_str(&out)
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_owned(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {word}")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected , or ]")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected , or }")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code).ok_or_else(|| self.err("bad code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid UTF-8"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact_and_pretty() {
        let v = Value::object([
            ("name", Value::from("Godin \"fast\" path\n")),
            ("count", Value::from(42u64)),
            ("ratio", Value::from(0.5)),
            ("ok", Value::from(true)),
            ("none", Value::Null),
            (
                "xs",
                Value::Array(vec![Value::from(1u64), Value::from(2u64)]),
            ),
        ]);
        for text in [v.to_string(), v.to_pretty()] {
            assert_eq!(Value::parse(&text).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn integers_are_emitted_without_fraction() {
        assert_eq!(Value::from(1500u64).to_string(), "1500");
        assert_eq!(Value::from(0.25).to_string(), "0.25");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("\"unterminated").is_err());
        assert!(Value::parse("12 34").is_err());
    }

    #[test]
    fn unicode_escapes_parse() {
        let v = Value::parse("\"a\\u0041b\"").unwrap();
        assert_eq!(v.as_str(), Some("aAb"));
    }
}
