//! Consumers of the flight recorder: Chrome trace-event JSON export and
//! the self-time profile.
//!
//! The export follows the Trace Event Format that Perfetto and
//! `chrome://tracing` load: a `traceEvents` array of duration events
//! (`ph: "B"`/`"E"`), instants (`ph: "i"`), counters (`ph: "C"`), and
//! `thread_name` metadata, with microsecond `ts` values. One lane — one
//! `tid` — per recorded thread, so every `cable-par` worker gets its own
//! swimlane.
//!
//! A partially-overwritten ring (see [`crate::recorder`]) can expose
//! orphan `End` events (their `Begin` was overwritten) and trailing open
//! `Begin`s (the snapshot was taken mid-span). The export repairs both:
//! orphan ends are dropped, and open begins are closed with a synthetic
//! end at the lane's last timestamp — so the emitted `B`/`E` events are
//! always matched per `tid`, and `ts` is non-decreasing per lane.
//!
//! **Self time** (the profile): a span's *inclusive* time is its whole
//! begin→end duration; its *exclusive* (self) time is the inclusive time
//! minus the inclusive time of the spans nested directly inside it on
//! the same lane. Exclusive sums over a lane partition that lane's
//! recorded wall time, which is what makes the profile table answer
//! "where does time actually go".

use crate::json::Value;
use crate::recorder::{Event, EventKind, LaneSnapshot};
use std::collections::BTreeMap;

/// Renders lane snapshots as a Chrome trace-event JSON value:
/// `{"traceEvents": [...], "displayTimeUnit": "ms"}`.
pub fn chrome_trace(lanes: &[LaneSnapshot]) -> Value {
    let mut events = Vec::new();
    for lane in lanes {
        // Lane metadata first: Perfetto names the track from it.
        events.push(Value::object([
            ("ph", Value::from("M")),
            ("name", Value::from("thread_name")),
            ("pid", Value::from(1u64)),
            ("tid", Value::from(lane.id)),
            (
                "args",
                Value::object([("name", Value::from(lane.label.as_str()))]),
            ),
        ]));
        for repaired in balance(&lane.events) {
            events.push(emit(&repaired, lane.id));
        }
    }
    Value::object([
        ("traceEvents", Value::Array(events)),
        ("displayTimeUnit", Value::from("ms")),
    ])
}

/// Repairs one lane's event sequence: drops `End`s whose `Begin` was
/// overwritten, and appends synthetic `End`s (at the last timestamp) for
/// spans still open when the snapshot was taken. The result has matched
/// `Begin`/`End` pairs and non-decreasing timestamps.
fn balance(events: &[Event]) -> Vec<Event> {
    let mut out = Vec::with_capacity(events.len());
    let mut open: Vec<Event> = Vec::new();
    let mut last_ts = 0u64;
    for &event in events {
        last_ts = last_ts.max(event.ts_ns);
        match event.kind {
            EventKind::Begin => {
                open.push(event);
                out.push(event);
            }
            EventKind::End => {
                // An end can only close the innermost open span; with
                // the begin overwritten there is nothing to close.
                if open.last().map(|b| b.name) == Some(event.name) {
                    open.pop();
                    out.push(event);
                }
            }
            EventKind::Instant | EventKind::Counter(_) => out.push(event),
        }
    }
    // Synthetic ends inherit the begin's causal ids, so a mid-span
    // snapshot still exports a fully id-stamped pair.
    while let Some(begin) = open.pop() {
        out.push(Event {
            kind: EventKind::End,
            ts_ns: last_ts,
            ..begin
        });
    }
    out
}

fn emit(event: &Event, tid: u64) -> Value {
    let ts_us = event.ts_ns as f64 / 1e3;
    let mut pairs = vec![
        ("name", Value::from(event.name)),
        ("pid", Value::from(1u64)),
        ("tid", Value::from(tid)),
        ("ts", Value::from(ts_us)),
    ];
    match event.kind {
        EventKind::Begin => pairs.push(("ph", Value::from("B"))),
        EventKind::End => pairs.push(("ph", Value::from("E"))),
        EventKind::Instant => {
            pairs.push(("ph", Value::from("i")));
            pairs.push(("s", Value::from("t")));
        }
        EventKind::Counter(v) => {
            pairs.push(("ph", Value::from("C")));
            pairs.push(("args", Value::object([("value", Value::from(v))])));
        }
    }
    // Causal ids ride along as args so Perfetto queries can group a
    // request's spans across worker lanes. Counter args already carry
    // the value; id-less events stay as small as before.
    if event.span != 0 && !matches!(event.kind, EventKind::Counter(_)) {
        pairs.push((
            "args",
            Value::object([
                (
                    "trace",
                    Value::from(format!("{:016x}{:016x}", event.trace_hi, event.trace_lo)),
                ),
                ("span", Value::from(format!("{:016x}", event.span))),
                ("parent", Value::from(format!("{:016x}", event.parent))),
            ]),
        ));
    }
    Value::object(pairs)
}

/// One row of the self-time profile: a span name aggregated over every
/// lane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileRow {
    /// Span name.
    pub name: &'static str,
    /// Completed (or synthetically closed) occurrences.
    pub count: u64,
    /// Total begin→end time.
    pub inclusive_ns: u64,
    /// Inclusive time minus directly nested spans' inclusive time.
    pub exclusive_ns: u64,
}

/// Folds lane snapshots into a self-time profile, sorted by exclusive
/// time descending (ties by name, so the table is deterministic).
pub fn self_time(lanes: &[LaneSnapshot]) -> Vec<ProfileRow> {
    let mut rows: BTreeMap<&'static str, (u64, u64, u64)> = BTreeMap::new();
    for lane in lanes {
        // (name, begin ts, nested children's inclusive ns)
        let mut stack: Vec<(&'static str, u64, u64)> = Vec::new();
        for event in balance(&lane.events) {
            match event.kind {
                EventKind::Begin => stack.push((event.name, event.ts_ns, 0)),
                EventKind::End => {
                    let (name, begin_ts, child_ns) =
                        stack.pop().expect("balance() matches every end");
                    let inclusive = event.ts_ns.saturating_sub(begin_ts);
                    let row = rows.entry(name).or_insert((0, 0, 0));
                    row.0 += 1;
                    row.1 += inclusive;
                    row.2 += inclusive.saturating_sub(child_ns);
                    if let Some(parent) = stack.last_mut() {
                        parent.2 += inclusive;
                    }
                }
                EventKind::Instant | EventKind::Counter(_) => {}
            }
        }
    }
    let mut out: Vec<ProfileRow> = rows
        .into_iter()
        .map(|(name, (count, inclusive_ns, exclusive_ns))| ProfileRow {
            name,
            count,
            inclusive_ns,
            exclusive_ns,
        })
        .collect();
    out.sort_by(|a, b| {
        b.exclusive_ns
            .cmp(&a.exclusive_ns)
            .then_with(|| a.name.cmp(b.name))
    });
    out
}

/// The profile as a JSON array (the `profile` field of the perf
/// records; excluded from the determinism gate like every timing field).
pub fn profile_json(rows: &[ProfileRow]) -> Value {
    Value::Array(
        rows.iter()
            .map(|r| {
                Value::object([
                    ("name", Value::from(r.name)),
                    ("count", Value::from(r.count)),
                    ("inclusive_ns", Value::from(r.inclusive_ns)),
                    ("exclusive_ns", Value::from(r.exclusive_ns)),
                ])
            })
            .collect(),
    )
}

/// Renders the profile as an aligned text table (the `--stats` section).
pub fn render_profile(rows: &[ProfileRow]) -> String {
    use std::fmt::Write as _;
    if rows.is_empty() {
        return String::new();
    }
    let mut out = String::from("── self-time profile (exclusive / inclusive) ──\n");
    let width = rows.iter().map(|r| r.name.len()).max().unwrap_or(0);
    for r in rows {
        let _ = writeln!(
            out,
            "{:width$}  n={:<8} self={:>10} total={:>10}",
            r.name,
            r.count,
            fmt_ns(r.exclusive_ns),
            fmt_ns(r.inclusive_ns),
        );
    }
    out
}

fn fmt_ns(v: u64) -> String {
    match v {
        0..=9_999 => format!("{v}ns"),
        10_000..=9_999_999 => format!("{:.1}µs", v as f64 / 1e3),
        10_000_000..=999_999_999 => format!("{:.1}ms", v as f64 / 1e6),
        _ => format!("{:.2}s", v as f64 / 1e9),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &'static str, kind: EventKind, ts_ns: u64) -> Event {
        Event::plain(name, kind, ts_ns)
    }

    fn lane(events: Vec<Event>) -> LaneSnapshot {
        LaneSnapshot {
            id: 7,
            label: "test-lane".into(),
            events,
            dropped: 0,
        }
    }

    #[test]
    fn balance_drops_orphan_ends_and_closes_open_begins() {
        // Suffix of a well-nested sequence: E(a) is orphaned, b stays
        // open.
        let events = vec![
            ev("a", EventKind::End, 10),
            ev("b", EventKind::Begin, 20),
            ev("c", EventKind::Begin, 30),
            ev("c", EventKind::End, 40),
        ];
        let repaired = balance(&events);
        let shape: Vec<(&str, EventKind)> = repaired.iter().map(|e| (e.name, e.kind)).collect();
        assert_eq!(
            shape,
            vec![
                ("b", EventKind::Begin),
                ("c", EventKind::Begin),
                ("c", EventKind::End),
                ("b", EventKind::End),
            ]
        );
        assert_eq!(repaired.last().unwrap().ts_ns, 40, "closed at the last ts");
    }

    #[test]
    fn causal_ids_survive_synthetic_ends_and_export_as_args() {
        let mut begin = ev("req", EventKind::Begin, 10);
        begin.trace_hi = 0xaa;
        begin.trace_lo = 0xbb;
        begin.span = 0x3;
        let repaired = balance(&[begin]);
        assert_eq!(repaired.len(), 2, "open begin gets a synthetic end");
        assert_eq!(repaired[1].kind, EventKind::End);
        assert_eq!(repaired[1].span, 0x3, "synthetic end inherits the ids");
        let json = emit(&repaired[1], 1);
        let args = json.get("args").expect("id-stamped events carry args");
        assert_eq!(
            args.get("span").and_then(Value::as_str),
            Some("0000000000000003")
        );
        assert_eq!(
            args.get("trace").and_then(Value::as_str),
            Some("00000000000000aa00000000000000bb")
        );
        // Id-less events stay arg-free (Counter keeps its value args).
        assert!(emit(&ev("x", EventKind::Begin, 0), 1).get("args").is_none());
    }

    #[test]
    fn chrome_trace_has_metadata_and_matched_pairs() {
        let l = lane(vec![
            ev("work", EventKind::Begin, 1_000),
            ev("steal", EventKind::Instant, 1_500),
            ev("queue", EventKind::Counter(3), 1_600),
            ev("work", EventKind::End, 2_000),
        ]);
        let trace = chrome_trace(&[l]);
        let events = trace
            .get("traceEvents")
            .and_then(Value::as_array)
            .expect("traceEvents array");
        assert_eq!(events.len(), 5, "metadata + 4 events");
        let phases: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("ph").and_then(Value::as_str))
            .collect();
        assert_eq!(phases, vec!["M", "B", "i", "C", "E"]);
        // Microsecond timestamps.
        let b = &events[1];
        assert_eq!(b.get("ts").and_then(Value::as_f64), Some(1.0));
        assert_eq!(b.get("tid").and_then(Value::as_u64), Some(7));
        // Round-trips through the hand-rolled JSON.
        let text = trace.to_string();
        assert_eq!(Value::parse(&text).unwrap(), trace);
    }

    #[test]
    fn self_time_splits_exclusive_from_inclusive() {
        // outer [0, 100] wraps inner [20, 60]: outer self = 60.
        let l = lane(vec![
            ev("outer", EventKind::Begin, 0),
            ev("inner", EventKind::Begin, 20),
            ev("inner", EventKind::End, 60),
            ev("outer", EventKind::End, 100),
        ]);
        let rows = self_time(&[l]);
        assert_eq!(rows.len(), 2);
        let outer = rows.iter().find(|r| r.name == "outer").unwrap();
        assert_eq!(outer.count, 1);
        assert_eq!(outer.inclusive_ns, 100);
        assert_eq!(outer.exclusive_ns, 60);
        let inner = rows.iter().find(|r| r.name == "inner").unwrap();
        assert_eq!(inner.inclusive_ns, 40);
        assert_eq!(inner.exclusive_ns, 40);
        // Sorted by exclusive descending.
        assert_eq!(rows[0].name, "outer");
    }

    #[test]
    fn self_time_only_counts_direct_children_once() {
        // a wraps b wraps c: a's self excludes b (which already contains
        // c), not b and c both.
        let l = lane(vec![
            ev("a", EventKind::Begin, 0),
            ev("b", EventKind::Begin, 10),
            ev("c", EventKind::Begin, 20),
            ev("c", EventKind::End, 30),
            ev("b", EventKind::End, 40),
            ev("a", EventKind::End, 50),
        ]);
        let rows = self_time(&[l]);
        let a = rows.iter().find(|r| r.name == "a").unwrap();
        assert_eq!(a.inclusive_ns, 50);
        assert_eq!(a.exclusive_ns, 20, "50 - b's 30");
        let b = rows.iter().find(|r| r.name == "b").unwrap();
        assert_eq!(b.exclusive_ns, 20, "30 - c's 10");
    }

    #[test]
    fn profile_render_and_json_cover_all_rows() {
        let rows = vec![
            ProfileRow {
                name: "x.build",
                count: 2,
                inclusive_ns: 3_000_000,
                exclusive_ns: 2_000_000,
            },
            ProfileRow {
                name: "x.merge",
                count: 1,
                inclusive_ns: 1_000_000,
                exclusive_ns: 1_000_000,
            },
        ];
        let text = render_profile(&rows);
        assert!(text.contains("x.build"), "{text}");
        assert!(text.contains("self-time profile"), "{text}");
        let json = profile_json(&rows);
        assert_eq!(json.as_array().unwrap().len(), 2);
        assert_eq!(render_profile(&[]), "");
    }
}
