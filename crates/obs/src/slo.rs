//! SLO tracking: rolling latency / error-rate windows over the
//! wide-event stream, with burn-rate computation.
//!
//! Every [`crate::events::emit`] feeds [`observe`] with the event's
//! window key (`kind`, or `kind:stage` when a stage is set), duration,
//! and success flag. Each key keeps a rolling window of the last
//! [`WINDOW_SECONDS`] of samples (bounded at [`WINDOW_CAP`], oldest
//! evicted first). From the window, [`reports`] derives:
//!
//! * **error rate** — `errors / count` over the window;
//! * **burn rate** — `error_rate / error_budget`, where the error
//!   budget is `1 − slo_target` (the default budget of 0.01 encodes a
//!   99% success SLO). A burn rate of 1.0 consumes the budget exactly
//!   at the sustainable pace; >1 exhausts it early — the standard
//!   multi-window alerting quantity;
//! * **latency quantiles** — exact p50/p95/p99 over the window's
//!   samples (the window is small and sorted on demand, so no sketch is
//!   needed here, unlike the process-lifetime histograms).
//!
//! `/sloz` serves [`sloz_json`]; `reproduce slo-check` enforces
//! *committed* per-stage latency budgets offline against a benchmark
//! run's histograms — same math, CI-gated.

use crate::json::Value;
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::{Mutex, OnceLock};

/// Rolling window width in seconds.
pub const WINDOW_SECONDS: u64 = 300;
/// Samples kept per window key (oldest evicted first).
pub const WINDOW_CAP: usize = 2048;
/// Default error budget: 1 − 0.99 (a 99% success objective).
pub const DEFAULT_ERROR_BUDGET: f64 = 0.01;

#[derive(Debug, Clone, Copy)]
struct Sample {
    ts_ns: u64,
    duration_ns: u64,
    ok: bool,
}

#[derive(Debug, Default)]
struct Window {
    samples: VecDeque<Sample>,
}

impl Window {
    fn push(&mut self, sample: Sample) {
        if self.samples.len() >= WINDOW_CAP {
            self.samples.pop_front();
        }
        self.samples.push_back(sample);
    }

    /// Drops samples older than the window width (timestamps are
    /// monotonic per [`crate::recorder::now_ns`], so pruning from the
    /// front is exact).
    fn prune(&mut self, now_ns: u64) {
        let horizon = now_ns.saturating_sub(WINDOW_SECONDS * 1_000_000_000);
        while let Some(front) = self.samples.front() {
            if front.ts_ns < horizon {
                self.samples.pop_front();
            } else {
                break;
            }
        }
    }
}

fn windows() -> &'static Mutex<BTreeMap<String, Window>> {
    static WINDOWS: OnceLock<Mutex<BTreeMap<String, Window>>> = OnceLock::new();
    WINDOWS.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Records one observation into `key`'s rolling window. Called by
/// [`crate::events::emit`] for every event; callable directly for
/// units that have no wide event.
pub fn observe(key: &str, duration_ns: u64, ok: bool) {
    let sample = Sample {
        ts_ns: crate::recorder::now_ns(),
        duration_ns,
        ok,
    };
    let mut map = windows().lock().expect("slo windows poisoned");
    map.entry(key.to_owned()).or_default().push(sample);
}

/// One window key's derived SLO state.
#[derive(Debug, Clone, PartialEq)]
pub struct SloReport {
    /// The window key (`kind` or `kind:stage`).
    pub key: String,
    /// Samples in the window.
    pub count: u64,
    /// Failed samples in the window.
    pub errors: u64,
    /// `errors / count` (0 with no samples).
    pub error_rate: f64,
    /// `error_rate / error_budget`.
    pub burn_rate: f64,
    /// Exact latency quantiles over the window, in nanoseconds.
    pub p50_ns: u64,
    /// 95th percentile latency in nanoseconds.
    pub p95_ns: u64,
    /// 99th percentile latency in nanoseconds.
    pub p99_ns: u64,
    /// Largest latency in the window, in nanoseconds.
    pub max_ns: u64,
}

fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil().max(1.0) as usize).min(sorted.len());
    sorted[rank - 1]
}

/// Derives every window's report (pruned to the rolling width first),
/// sorted by key.
pub fn reports(error_budget: f64) -> Vec<SloReport> {
    let now = crate::recorder::now_ns();
    let mut map = windows().lock().expect("slo windows poisoned");
    map.iter_mut()
        .map(|(key, window)| {
            window.prune(now);
            let count = window.samples.len() as u64;
            let errors = window.samples.iter().filter(|s| !s.ok).count() as u64;
            let error_rate = if count == 0 {
                0.0
            } else {
                errors as f64 / count as f64
            };
            let mut durations: Vec<u64> = window.samples.iter().map(|s| s.duration_ns).collect();
            durations.sort_unstable();
            SloReport {
                key: key.clone(),
                count,
                errors,
                error_rate,
                burn_rate: error_rate / error_budget.max(f64::EPSILON),
                p50_ns: quantile(&durations, 0.50),
                p95_ns: quantile(&durations, 0.95),
                p99_ns: quantile(&durations, 0.99),
                max_ns: durations.last().copied().unwrap_or(0),
            }
        })
        .collect()
}

/// The `/sloz` body: the objective, the window parameters, and every
/// key's derived state.
pub fn sloz_json() -> Value {
    let keys: Vec<Value> = reports(DEFAULT_ERROR_BUDGET)
        .into_iter()
        .map(|r| {
            Value::object([
                ("key", Value::from(r.key)),
                ("count", Value::from(r.count)),
                ("errors", Value::from(r.errors)),
                ("error_rate", Value::from(r.error_rate)),
                ("burn_rate", Value::from(r.burn_rate)),
                ("p50_ns", Value::from(r.p50_ns)),
                ("p95_ns", Value::from(r.p95_ns)),
                ("p99_ns", Value::from(r.p99_ns)),
                ("max_ns", Value::from(r.max_ns)),
            ])
        })
        .collect();
    Value::object([
        ("error_budget", Value::from(DEFAULT_ERROR_BUDGET)),
        ("window_seconds", Value::from(WINDOW_SECONDS)),
        ("windows", Value::Array(keys)),
    ])
}

/// Empties every window (tests and benchmark sections).
pub fn reset() {
    windows().lock().expect("slo windows poisoned").clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Window state is process-global; tests must not interleave.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn error_rate_and_burn_rate_follow_the_window() {
        let _l = lock();
        reset();
        for i in 0..100u64 {
            observe("slo.test.err", i * 1000, i % 10 != 0); // 10% errors
        }
        let reports = reports(0.01);
        let r = reports
            .iter()
            .find(|r| r.key == "slo.test.err")
            .expect("window exists");
        assert_eq!(r.count, 100);
        assert_eq!(r.errors, 10);
        assert!((r.error_rate - 0.10).abs() < 1e-9);
        // 10% errors against a 1% budget burns 10× sustainable pace.
        assert!((r.burn_rate - 10.0).abs() < 1e-9);
        reset();
    }

    #[test]
    fn quantiles_are_exact_over_the_window() {
        let _l = lock();
        reset();
        for v in 1..=100u64 {
            observe("slo.test.quant", v, true);
        }
        let reports = reports(DEFAULT_ERROR_BUDGET);
        let r = reports.iter().find(|r| r.key == "slo.test.quant").unwrap();
        assert_eq!(r.p50_ns, 50);
        assert_eq!(r.p95_ns, 95);
        assert_eq!(r.p99_ns, 99);
        assert_eq!(r.max_ns, 100);
        assert_eq!(r.burn_rate, 0.0);
        reset();
    }

    #[test]
    fn windows_are_bounded() {
        let _l = lock();
        reset();
        for i in 0..(WINDOW_CAP + 50) {
            observe("slo.test.cap", i as u64, true);
        }
        let reports = reports(DEFAULT_ERROR_BUDGET);
        let r = reports.iter().find(|r| r.key == "slo.test.cap").unwrap();
        assert_eq!(r.count, WINDOW_CAP as u64);
        // Newest survive: the max is the last value pushed.
        assert_eq!(r.max_ns, (WINDOW_CAP + 49) as u64);
        reset();
    }

    #[test]
    fn empty_quantile_is_zero() {
        assert_eq!(quantile(&[], 0.5), 0);
        assert_eq!(quantile(&[7], 0.5), 7);
        assert_eq!(quantile(&[7], 1.0), 7);
    }

    #[test]
    fn sloz_json_has_the_expected_shape() {
        let _l = lock();
        reset();
        observe("slo.test.shape", 1234, true);
        let json = sloz_json();
        assert!(json.get("error_budget").is_some());
        assert!(json.get("window_seconds").is_some());
        let windows = json.get("windows").and_then(Value::as_array).unwrap();
        let w = windows
            .iter()
            .find(|w| w.get("key").and_then(Value::as_str) == Some("slo.test.shape"))
            .expect("window serialised");
        assert_eq!(w.get("count").and_then(Value::as_u64), Some(1));
        assert_eq!(w.get("p95_ns").and_then(Value::as_u64), Some(1234));
        reset();
    }
}
