//! Counters and log2-bucketed histograms on atomics.

use crate::registry::registry;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Number of histogram buckets: bucket `i` holds values `v` with
/// `floor(log2(v)) == i - 1` (bucket 0 holds `v == 0`), so the largest
/// bucket covers everything from `2^62` up.
pub const BUCKETS: usize = 64;

/// A monotonic counter. All operations are relaxed atomics — safe and
/// cheap on hot paths, deterministic totals once threads join.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A fresh, unregistered counter (registered ones come from
    /// [`CounterHandle`] or [`crate::Registry::counter`]).
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Raises the counter to `v` if it is currently lower — high-water
    /// marks such as `par.queue_max`.
    #[inline]
    pub fn record_max(&self, v: u64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// The current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets to zero (used between benchmark sections).
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// The bucket index a value falls into: 0 for 0, else
/// `64 - leading_zeros(v)` (i.e. one past the index of the highest set
/// bit), capped at [`BUCKETS`]` - 1`.
#[inline]
pub(crate) fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros() as usize).min(BUCKETS - 1)
}

/// The inclusive upper bound of a bucket (`u64::MAX` for the last).
pub(crate) fn bucket_bound(i: usize) -> u64 {
    if i >= BUCKETS - 1 {
        u64::MAX
    } else if i == 0 {
        0
    } else {
        (1u64 << i) - 1
    }
}

/// A log2-bucketed histogram of `u64` samples (durations in nanoseconds,
/// sizes in elements). Lock-free; per-bucket counts plus count/sum/max.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// A fresh, unregistered histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a [`std::time::Duration`] in nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// A consistent-enough copy of the current state (exact once all
    /// recording threads have joined).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// Resets all buckets and tallies.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// An immutable copy of a [`Histogram`]'s state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`BUCKETS`]).
    pub buckets: [u64; BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample.
    pub max: u64,
}

impl HistogramSnapshot {
    /// Rebuilds a snapshot from its serialised parts: the
    /// `(inclusive upper bound, count)` pairs of
    /// [`HistogramSnapshot::nonzero_buckets`] plus the tallies. This is
    /// the inverse of the JSONL histogram shape, used by offline
    /// consumers (`reproduce slo-check`) to run the same quantile math
    /// over persisted runs. Bounds that are not exact bucket bounds
    /// land in the bucket that contains them.
    pub fn from_nonzero_buckets(pairs: &[(u64, u64)], count: u64, sum: u64, max: u64) -> Self {
        let mut buckets = [0u64; BUCKETS];
        for &(bound, n) in pairs {
            buckets[bucket_of(bound)] += n;
        }
        HistogramSnapshot {
            buckets,
            count,
            sum,
            max,
        }
    }

    /// Mean sample, or 0 with no samples.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// An upper bound on the `q`-quantile (0 ≤ q ≤ 1): the bound of the
    /// bucket the quantile sample lands in.
    pub fn quantile_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// An interpolated estimate of the `q`-quantile (0 ≤ q ≤ 1).
    ///
    /// Where [`HistogramSnapshot::quantile_bound`] answers with the whole
    /// bucket's upper bound — off by up to 2× with log2 buckets — this
    /// assumes samples are spread uniformly *inside* the quantile's
    /// bucket and interpolates linearly between the bucket's lower bound
    /// and `min(upper bound, max)`. The estimate is exact for the zero
    /// bucket and never exceeds the observed maximum.
    pub fn quantile_estimate(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                if i == 0 {
                    return 0.0; // bucket 0 holds only v == 0
                }
                let lower = bucket_bound(i - 1) + 1;
                let upper = bucket_bound(i).min(self.max).max(lower);
                let frac = (rank - seen) as f64 / c as f64;
                return lower as f64 + frac * (upper - lower) as f64;
            }
            seen += c;
        }
        self.max as f64
    }

    /// The non-empty buckets as `(inclusive upper bound, count)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_bound(i), c))
            .collect()
    }
}

/// A static handle to a named counter: registration on first use, an
/// atomic add thereafter.
///
/// ```
/// static CALLS: cable_obs::CounterHandle = cable_obs::CounterHandle::new("example.calls");
/// CALLS.get().incr();
/// ```
pub struct CounterHandle {
    name: &'static str,
    cell: OnceLock<Arc<Counter>>,
}

impl CounterHandle {
    /// Declares a handle (const, so it can be a `static`).
    pub const fn new(name: &'static str) -> Self {
        CounterHandle {
            name,
            cell: OnceLock::new(),
        }
    }

    /// The registered counter.
    #[inline]
    pub fn get(&self) -> &Counter {
        self.cell.get_or_init(|| registry().counter(self.name))
    }
}

/// A static handle to a named histogram; see [`CounterHandle`].
pub struct HistogramHandle {
    name: &'static str,
    cell: OnceLock<Arc<Histogram>>,
}

impl HistogramHandle {
    /// Declares a handle (const, so it can be a `static`).
    pub const fn new(name: &'static str) -> Self {
        HistogramHandle {
            name,
            cell: OnceLock::new(),
        }
    }

    /// The registered histogram.
    #[inline]
    pub fn get(&self) -> &Histogram {
        self.cell.get_or_init(|| registry().histogram(self.name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(7), 3);
        assert_eq!(bucket_of(8), 4);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        // Bounds are consistent with membership.
        for v in [0u64, 1, 2, 3, 4, 5, 127, 128, 1 << 20] {
            let b = bucket_of(v);
            assert!(v <= bucket_bound(b), "{v} in bucket {b}");
            if b > 0 {
                assert!(v > bucket_bound(b - 1), "{v} beyond bucket {}", b - 1);
            }
        }
    }

    #[test]
    fn record_max_is_a_high_water_mark() {
        let c = Counter::new();
        c.record_max(5);
        c.record_max(3);
        assert_eq!(c.get(), 5);
        c.record_max(9);
        assert_eq!(c.get(), 9);
    }

    #[test]
    fn histogram_tallies() {
        let h = Histogram::new();
        for v in [0u64, 1, 1, 3, 8, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1013);
        assert_eq!(s.max, 1000);
        assert_eq!(s.buckets[0], 1); // the zero
        assert_eq!(s.buckets[1], 2); // the ones
        assert_eq!(s.buckets[2], 1); // 3
        assert_eq!(s.buckets[4], 1); // 8
        assert!((s.mean() - 1013.0 / 6.0).abs() < 1e-9);
        assert!(s.quantile_bound(0.5) <= 3);
        assert_eq!(s.quantile_bound(1.0), 1000);
    }

    #[test]
    fn quantile_estimate_interpolates_a_uniform_distribution() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        // rank 50 lands in bucket 6 (32..=63) behind 31 earlier samples:
        // 32 + 19/32 * 31 = 50.40625 — close to the true median, where
        // quantile_bound can only say "≤ 63".
        assert!((s.quantile_estimate(0.5) - 50.40625).abs() < 1e-9);
        assert_eq!(s.quantile_bound(0.5), 63);
        // rank 99 lands in bucket 7, clamped to the observed max 100:
        // 64 + 36/37 * 36 = 99.027…
        assert!((s.quantile_estimate(0.99) - (64.0 + 36.0 / 37.0 * 36.0)).abs() < 1e-9);
        // The extremes are exact.
        assert!((s.quantile_estimate(1.0) - 100.0).abs() < 1e-9);
        assert!((s.quantile_estimate(0.01) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn quantile_estimate_edge_cases() {
        let empty = Histogram::new().snapshot();
        assert_eq!(empty.quantile_estimate(0.5), 0.0);

        let zeros = Histogram::new();
        for _ in 0..10 {
            zeros.record(0);
        }
        assert_eq!(zeros.snapshot().quantile_estimate(0.99), 0.0);

        // A constant sample interpolates inside its bucket but never
        // above the observed max.
        let sevens = Histogram::new();
        for _ in 0..10 {
            sevens.record(7);
        }
        let s = sevens.snapshot();
        assert!((s.quantile_estimate(1.0) - 7.0).abs() < 1e-9);
        assert!(s.quantile_estimate(0.5) >= 4.0 && s.quantile_estimate(0.5) <= 7.0);

        // A single sample: every quantile is that sample (the bucket
        // interpolation clamps to the observed max).
        let single = Histogram::new();
        single.record(1000);
        let s = single.snapshot();
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert!(
                (s.quantile_estimate(q) - 1000.0).abs() < 1e-9,
                "q={q}: {}",
                s.quantile_estimate(q)
            );
        }

        // Everything in one bucket: interpolation stays inside
        // [lower bound, observed max].
        let packed = Histogram::new();
        for v in [130u64, 200, 255] {
            packed.record(v); // all in bucket 8 (128..=255)
        }
        let s = packed.snapshot();
        for q in [0.01, 0.5, 0.99] {
            let est = s.quantile_estimate(q);
            assert!((128.0..=255.0).contains(&est), "q={q}: {est}");
        }
        assert!((s.quantile_estimate(1.0) - 255.0).abs() < 1e-9);

        // The overflow bucket (v ≥ 2^62) is unbounded above; estimates
        // clamp to the observed max instead of u64::MAX.
        let overflow = Histogram::new();
        overflow.record(u64::MAX);
        overflow.record(u64::MAX - 1);
        let s = overflow.snapshot();
        assert_eq!(s.buckets[BUCKETS - 1], 2);
        for q in [0.5, 0.99, 1.0] {
            let est = s.quantile_estimate(q);
            assert!(est <= u64::MAX as f64, "q={q}: {est}");
            assert!(est >= (1u64 << 62) as f64, "q={q}: {est}");
        }
        assert_eq!(s.quantile_bound(0.99), u64::MAX);
    }

    #[test]
    fn snapshot_round_trips_through_nonzero_buckets() {
        let h = Histogram::new();
        for v in [0u64, 1, 5, 900, 70_000, u64::MAX] {
            h.record(v);
        }
        let s = h.snapshot();
        let rebuilt =
            HistogramSnapshot::from_nonzero_buckets(&s.nonzero_buckets(), s.count, s.sum, s.max);
        assert_eq!(rebuilt, s);
        assert_eq!(rebuilt.quantile_estimate(0.95), s.quantile_estimate(0.95));
    }
}
