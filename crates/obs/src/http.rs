//! Std-only HTTP/1.1 server: the exposition endpoints (`/metrics`,
//! `/healthz`, `/tracez`, `/tracez/export`, `/eventz`, `/sloz`) plus a
//! pluggable JSON API plane under `/api/` (see [`set_api_handler`]).
//!
//! Every parsed request is minted a [`TraceCtx`] (seeded via
//! [`set_trace_seed`], sequence-numbered per request) and handled under
//! a request root span; the finished span tree feeds the tail store
//! (see [`crate::tail`]), `/tracez?trace=ID` renders kept trees as
//! waterfalls, `/tracez?slowest=N` indexes the slowest requests, and
//! per-route latency lands in the `http_request_us` scoped family.
//!
//! Per DESIGN.md §8 this is hand-rolled over [`std::net::TcpListener`] —
//! no external HTTP stack. Connections are served by a fixed pool of
//! worker threads (default [`MAX_CONNECTIONS`], tunable via
//! [`ServerConfig`] / `--max-connections` / `CABLE_MAX_CONNS`) fed from
//! a bounded accept queue: when every worker is busy, up to
//! [`ServerConfig::queue_depth`] connections wait their turn, and only
//! past *that* does the accept loop shed load — with `429 Too Many
//! Requests` plus a `Retry-After` header, so well-behaved clients back
//! off and retry instead of treating the flat refusal as an outage
//! (DESIGN.md §14's backpressure protocol; previously this was an
//! immediate `503` at the worker cap). A connection may send at most
//! [`MAX_HEADER_BYTES`] of request line plus headers (`431` past that)
//! and at most [`MAX_BODY_BYTES`] of body (`413` past that), must make
//! read progress within the 2 s timeout, and is always closed after the
//! response — slowloris-style trickles cost one worker for at most one
//! timeout, and queued victims behind them are served as workers free
//! up.
//!
//! Security posture (DESIGN.md §11): addresses given as a bare port bind
//! `127.0.0.1`; exposing the endpoints beyond localhost requires an
//! explicit interface in `--obs-listen`.

use crate::chrome;
use crate::context::{self, TraceCtx};
use crate::events::{self, WideEvent};
use crate::json::Value;
use crate::metrics::{CounterHandle, HistogramHandle};
use crate::recorder;
use crate::registry::registry;
use crate::slo;
use crate::tail;
use crate::{prom, Counter};
use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, Read as _, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

static REQUESTS: CounterHandle = CounterHandle::new("obs.http.requests");
/// Connections turned away with `429` when the accept queue is full.
static REJECTED: CounterHandle = CounterHandle::new("obs.http.rejected");
/// Requests refused with `431` for oversized request line + headers.
static OVERSIZED: CounterHandle = CounterHandle::new("obs.http.oversized");
/// Responses whose write failed mid-flight (EPIPE, connection reset):
/// the client hung up first. Counted, never panicking.
static CLIENT_ABORTS: CounterHandle = CounterHandle::new("http.client_abort");
/// Connections cut with `408` because they failed to deliver a whole
/// request within the per-connection deadline (the slowloris guard).
static SLOW_CLIENT_ABORTS: CounterHandle = CounterHandle::new("obs.http.slow_client_aborts");
/// Connections that waited in the accept queue before being served.
static QUEUED: CounterHandle = CounterHandle::new("obs.http.queued");
/// Time served connections spent in the bounded accept queue before a
/// worker picked them up, microseconds — the queue half of the
/// `/metrics` contention families.
static WAIT_QUEUE: HistogramHandle = HistogramHandle::new("wait.queue.us");

/// Seed that minted trace ids derive from; the request sequence number
/// advances once per parsed request. With a pinned seed and the same
/// request order, a drill mints the same trace ids run to run.
static TRACE_SEED: AtomicU64 = AtomicU64::new(0);
static REQUEST_SEQ: AtomicU64 = AtomicU64::new(0);

/// Pins the seed request trace ids are minted from (`CABLE_TRACE_SEED`
/// / `cable serve --trace-seed`).
pub fn set_trace_seed(seed: u64) {
    TRACE_SEED.store(seed, Ordering::Relaxed);
}

/// Ceiling on request line + header bytes a connection may send.
pub const MAX_HEADER_BYTES: usize = 8 * 1024;
/// Ceiling on request body bytes (`413` past it) — bounds what one
/// `POST /api/sessions/:id/ingest` can make the server buffer.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;
/// Default ceiling on concurrently served connections (the worker-pool
/// size). Tunable per server via [`ServerConfig`].
pub const MAX_CONNECTIONS: usize = 8;
/// Default depth of the accept queue behind the worker pool; past
/// workers + queue the server answers `429` with `Retry-After`.
pub const QUEUE_DEPTH: usize = 32;
/// The `Retry-After` value (seconds) sent with `429` responses.
pub const RETRY_AFTER_SECONDS: u64 = 1;
/// Default per-read/per-write socket timeout on a served connection.
pub const IO_TIMEOUT: Duration = Duration::from_secs(2);
/// Default overall deadline for one connection to deliver its whole
/// request (line, headers, and body). The per-read timeout alone resets
/// on every byte, so a client trickling one byte per interval could
/// hold a worker forever; the deadline bounds the total and answers
/// `408` — the slowloris guard.
pub const CONNECTION_DEADLINE: Duration = Duration::from_secs(10);

/// Most recent spans per lane served by `/tracez` (override per request
/// with `?limit=N`).
pub const TRACEZ_SPAN_LIMIT: usize = 64;

/// Most recent events served by `/eventz` (override with `?limit=N`).
pub const EVENTZ_EVENT_LIMIT: usize = 64;

/// Ceiling on a `?limit=N` override — keeps one request from asking for
/// a multi-MB response.
pub const MAX_QUERY_LIMIT: usize = 100_000;

/// Sizing of one server: how many connections are served concurrently
/// and how many may wait behind them before load-shedding starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Worker threads — concurrently served connections.
    pub max_connections: usize,
    /// Accepted connections allowed to wait for a worker; past
    /// `max_connections + queue_depth` in flight, new connections get
    /// `429` + `Retry-After`.
    pub queue_depth: usize,
    /// Per-read/per-write socket timeout on a served connection.
    pub io_timeout: Duration,
    /// Overall deadline for one connection to deliver its whole request
    /// (the slowloris guard; `408` + `obs.http.slow_client_aborts` past
    /// it).
    pub connection_deadline: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: MAX_CONNECTIONS,
            queue_depth: QUEUE_DEPTH,
            io_timeout: IO_TIMEOUT,
            connection_deadline: CONNECTION_DEADLINE,
        }
    }
}

/// What `/healthz` reports about an open store, set by whoever holds
/// one (the `cable` binary) via [`set_health`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthInfo {
    /// Snapshot generation of the open store.
    pub generation: u64,
    /// Journal bytes past the header — work lost to a crash, recovered
    /// on resume.
    pub journal_lag_bytes: u64,
    /// Journal records not yet folded into the snapshot.
    pub journal_lag_records: u64,
    /// The degradation cause when the store is read-only after a
    /// write-path failure (fail-stop durability), `None` while
    /// writable.
    pub degraded: Option<String>,
}

fn health_slot() -> &'static Mutex<Option<HealthInfo>> {
    static SLOT: OnceLock<Mutex<Option<HealthInfo>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

/// Publishes store health for `/healthz`. Call with `None` when no
/// store is open (the endpoint then reports `"store": "none"` but stays
/// healthy — a serving process without a store is not broken).
pub fn set_health(info: Option<HealthInfo>) {
    *health_slot().lock().expect("obs health poisoned") = info;
}

/// A request routed to the API plane: anything under `/api/`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiRequest {
    /// The HTTP method (`GET`, `POST`, …), uppercased as received.
    pub method: String,
    /// The path without the query string, e.g. `/api/sessions/s1/label`.
    pub route: String,
    /// The raw query string after `?`, if any.
    pub query: Option<String>,
    /// The request body (bounded by [`MAX_BODY_BYTES`]).
    pub body: String,
}

/// An API plane's answer. The server adds framing (status text,
/// `Content-Length`, `Connection: close`) around it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiResponse {
    /// HTTP status code (200, 201, 400, 404, …).
    pub status: u16,
    /// The `Content-Type` header value.
    pub content_type: &'static str,
    /// The response body.
    pub body: String,
    /// When set, the server adds a `Retry-After: <seconds>` header —
    /// how degraded-store `503`s tell clients the condition is
    /// retryable.
    pub retry_after: Option<u64>,
}

impl ApiResponse {
    /// A JSON response. Rendering is a `serialize.response` span: on
    /// large lattice views the body formatting is real work, and the
    /// trace-report serialization stage accounts for it.
    pub fn json(status: u16, value: &Value) -> ApiResponse {
        crate::recorder::begin("serialize.response");
        let body = format!("{value}\n");
        crate::recorder::end("serialize.response");
        ApiResponse {
            status,
            content_type: "application/json; charset=utf-8",
            body,
            retry_after: None,
        }
    }

    /// An error response with the standard `{"error": …, "status": …}`
    /// body.
    pub fn error(status: u16, message: &str) -> ApiResponse {
        ApiResponse::json(
            status,
            &Value::object([
                ("error", Value::from(message)),
                ("status", Value::from(u64::from(status))),
            ]),
        )
    }

    /// Attaches a `Retry-After` header value (seconds).
    pub fn with_retry_after(mut self, seconds: u64) -> ApiResponse {
        self.retry_after = Some(seconds);
        self
    }
}

/// The API plane behind `/api/` routes. `cable-obs` deliberately knows
/// nothing about sessions — the dependency runs the other way — so the
/// session service (`cable-core`'s `CableApi`) installs itself here via
/// [`set_api_handler`], exactly like [`set_health`].
pub trait ApiHandler: Send + Sync {
    /// Handles one API request. Infallible by construction: errors are
    /// [`ApiResponse`]s with 4xx/5xx statuses.
    fn handle(&self, request: &ApiRequest) -> ApiResponse;
}

fn api_slot() -> &'static Mutex<Option<Arc<dyn ApiHandler>>> {
    static SLOT: OnceLock<Mutex<Option<Arc<dyn ApiHandler>>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

/// Installs (or with `None` removes) the `/api/` handler. Without one,
/// API routes answer `404` with a hint to start `cable serve --api`.
pub fn set_api_handler(handler: Option<Arc<dyn ApiHandler>>) {
    *api_slot().lock().expect("obs api handler poisoned") = handler;
}

fn api_handler() -> Option<Arc<dyn ApiHandler>> {
    api_slot().lock().expect("obs api handler poisoned").clone()
}

/// Parses an `--obs-listen` value: either a full socket address
/// (`127.0.0.1:9090`, `0.0.0.0:9090`) or a bare port, which binds
/// localhost.
pub fn parse_listen_addr(s: &str) -> Result<SocketAddr, String> {
    if let Ok(port) = s.parse::<u16>() {
        return Ok(SocketAddr::from(([127, 0, 0, 1], port)));
    }
    s.parse::<SocketAddr>()
        .map_err(|e| format!("invalid listen address {s:?}: {e}"))
}

/// The HTTP server. [`ObsServer::bind`], then either
/// [`ObsServer::serve`] (block forever, for `cable serve`) or
/// [`ObsServer::spawn`] (background thread with a stop guard, for
/// `--obs-listen` alongside other work).
pub struct ObsServer {
    listener: TcpListener,
    addr: SocketAddr,
    config: ServerConfig,
}

impl ObsServer {
    /// Binds the listener with the default [`ServerConfig`]. `addr`
    /// accepts the [`parse_listen_addr`] forms; port 0 picks an
    /// ephemeral port (see [`ObsServer::addr`]).
    pub fn bind(addr: &str) -> Result<ObsServer, String> {
        Self::bind_with(addr, ServerConfig::default())
    }

    /// [`ObsServer::bind`] with explicit sizing.
    ///
    /// # Errors
    ///
    /// Fails on an unparsable address, a bind error, or a zero
    /// `max_connections`.
    pub fn bind_with(addr: &str, config: ServerConfig) -> Result<ObsServer, String> {
        if config.max_connections == 0 {
            return Err("max connections must be at least 1".to_owned());
        }
        let addr = parse_listen_addr(addr)?;
        let listener = TcpListener::bind(addr)
            .map_err(|e| format!("cannot bind obs server on {addr}: {e}"))?;
        let addr = listener
            .local_addr()
            .map_err(|e| format!("obs server has no local address: {e}"))?;
        Ok(ObsServer {
            listener,
            addr,
            config,
        })
    }

    /// The bound address (resolves port 0 to the real ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Serves requests on the calling thread until the process exits.
    pub fn serve(self) -> ! {
        let pool = WorkerPool::start(self.config);
        loop {
            if let Ok((stream, _)) = self.listener.accept() {
                pool.submit(stream);
            }
        }
    }

    /// Serves requests from a background thread; the returned guard
    /// stops the server when dropped.
    pub fn spawn(self) -> ServerGuard {
        let stop = Arc::new(AtomicBool::new(false));
        let addr = self.addr;
        let pool = WorkerPool::start(self.config);
        let accept_pool = pool.clone();
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("cable-obs-http".into())
            .spawn(move || loop {
                let Ok((stream, _)) = self.listener.accept() else {
                    continue;
                };
                if thread_stop.load(Ordering::Acquire) {
                    return;
                }
                accept_pool.submit(stream);
            })
            .expect("spawn obs http thread");
        ServerGuard {
            addr,
            stop,
            handle: Some(handle),
            pool: Some(pool),
        }
    }
}

/// The fixed pool of connection-handler threads plus the bounded queue
/// feeding them. Submitting past `workers + queue_depth` in flight
/// answers `429` on the accept thread (cheap: one small write, no
/// reads) so the loop is back to accepting without waiting on anyone's
/// timeout.
#[derive(Clone)]
struct WorkerPool {
    shared: Arc<PoolShared>,
}

struct PoolShared {
    state: Mutex<PoolState>,
    ready: Condvar,
    queue_depth: usize,
    config: ServerConfig,
}

struct PoolState {
    /// Waiting connections, each with its enqueue instant so the
    /// dequeuing worker can account the queue wait (a cross-thread
    /// wait can't be a recorder span — lanes are single-writer).
    queue: VecDeque<(TcpStream, Instant)>,
    stop: bool,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    fn start(config: ServerConfig) -> WorkerPool {
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                stop: false,
                workers: Vec::new(),
            }),
            ready: Condvar::new(),
            queue_depth: config.queue_depth,
            config,
        });
        let mut workers = Vec::with_capacity(config.max_connections);
        for i in 0..config.max_connections {
            let worker_shared = Arc::clone(&shared);
            let handle = std::thread::Builder::new()
                .name(format!("cable-obs-conn-{i}"))
                .spawn(move || worker_loop(&worker_shared))
                .expect("spawn obs worker thread");
            workers.push(handle);
        }
        shared.state.lock().expect("obs pool poisoned").workers = workers;
        WorkerPool { shared }
    }

    /// Queues a connection for a worker, or sheds it with `429` when
    /// the queue is at depth.
    fn submit(&self, stream: TcpStream) {
        {
            let mut state = self.shared.state.lock().expect("obs pool poisoned");
            if state.queue.len() < self.shared.queue_depth {
                if !state.queue.is_empty() {
                    QUEUED.get().incr();
                }
                state.queue.push_back((stream, Instant::now()));
                drop(state);
                self.shared.ready.notify_one();
                return;
            }
        }
        REJECTED.get().incr();
        let mut stream = stream;
        let _ = stream.set_write_timeout(Some(self.shared.config.io_timeout));
        let body = "server over capacity, retry\n";
        let _ = write!(
            stream,
            "HTTP/1.1 429 Too Many Requests\r\nContent-Type: text/plain; charset=utf-8\r\nRetry-After: {RETRY_AFTER_SECONDS}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        );
        // Closing with unread request bytes still buffered makes the
        // kernel send RST, which can discard the 429 we just wrote
        // before the client reads it. Shut down our write side (the
        // client's read completes) and drain the request — bounded in
        // both bytes and time, so a slow sender cannot pin the accept
        // thread.
        let _ = stream.shutdown(std::net::Shutdown::Write);
        let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
        let mut scratch = [0u8; 4096];
        for _ in 0..8 {
            match stream.read(&mut scratch) {
                Ok(0) | Err(_) => break,
                Ok(_) => {}
            }
        }
    }

    /// Stops the workers and joins them. Safe to call once, from the
    /// owning [`ServerGuard`].
    fn shutdown(&self) {
        let workers = {
            let mut state = self.shared.state.lock().expect("obs pool poisoned");
            state.stop = true;
            std::mem::take(&mut state.workers)
        };
        self.shared.ready.notify_all();
        for handle in workers {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let (stream, enqueued) = {
            let mut state = shared.state.lock().expect("obs pool poisoned");
            loop {
                if let Some(job) = state.queue.pop_front() {
                    break job;
                }
                if state.stop {
                    return;
                }
                state = shared.ready.wait(state).expect("obs pool condvar poisoned");
            }
        };
        handle_connection(stream, REQUESTS.get(), enqueued.elapsed(), shared.config);
    }
}

/// Stops the background server (from [`ObsServer::spawn`]) on drop.
pub struct ServerGuard {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
    pool: Option<WorkerPool>,
}

impl ServerGuard {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for ServerGuard {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock accept() so the thread observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
        if let Some(pool) = self.pool.take() {
            pool.shutdown();
        }
    }
}

/// A response ready for framing.
struct HttpResponse {
    status: u16,
    content_type: &'static str,
    body: String,
    retry_after: Option<u64>,
}

impl HttpResponse {
    fn text(status: u16, body: impl Into<String>) -> HttpResponse {
        HttpResponse {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
            retry_after: None,
        }
    }

    fn json(status: u16, value: &Value) -> HttpResponse {
        HttpResponse {
            status,
            content_type: "application/json; charset=utf-8",
            body: format!("{value}\n"),
            retry_after: None,
        }
    }
}

/// The reason phrase for the status codes this server emits.
fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Content Too Large",
        422 => "Unprocessable Content",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

/// A [`TcpStream`] whose reads share one absolute deadline: before
/// every read the socket timeout is clamped to the time remaining, so
/// no sequence of trickled bytes can stretch the total read time past
/// the deadline (each byte received resets a plain socket timeout —
/// that reset is exactly what a slowloris client exploits).
struct DeadlineStream {
    stream: TcpStream,
    deadline: Instant,
    io_timeout: Duration,
}

impl std::io::Read for DeadlineStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let remaining = self.deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "connection deadline exceeded",
            ));
        }
        let _ = self
            .stream
            .set_read_timeout(Some(self.io_timeout.min(remaining)));
        self.stream.read(buf)
    }
}

/// Answers `408` (best-effort — the peer may be gone) and counts the
/// slow client when a request read failed because time ran out rather
/// than because the connection dropped.
fn abort_unfinished_read(reader: BufReader<DeadlineStream>, deadline: Instant) {
    if Instant::now() < deadline {
        // The read failed before the deadline: a reset or early close,
        // not a slow client. Nothing useful to write back.
        return;
    }
    SLOW_CLIENT_ABORTS.get().incr();
    let mut stream = reader.into_inner().stream;
    let body = "request not received within the connection deadline\n";
    if write!(
        stream,
        "HTTP/1.1 408 Request Timeout\r\nContent-Type: text/plain; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .is_err()
    {
        CLIENT_ABORTS.get().incr();
    }
}

fn handle_connection(
    stream: TcpStream,
    requests: &Counter,
    queue_wait: Duration,
    config: ServerConfig,
) {
    let deadline = Instant::now() + config.connection_deadline;
    let _ = stream.set_read_timeout(Some(config.io_timeout));
    let _ = stream.set_write_timeout(Some(config.io_timeout));
    let mut reader = BufReader::new(DeadlineStream {
        stream,
        deadline,
        io_timeout: config.io_timeout,
    });
    // The `take` caps how many request-line + header bytes one
    // connection may feed us: past it `read_line` sees EOF, and we
    // answer 431 instead of buffering without bound. The body is read
    // separately below, under its own cap.
    let mut head = (&mut reader).take(MAX_HEADER_BYTES as u64);
    let mut request_line = String::new();
    if head.read_line(&mut request_line).is_err() {
        return abort_unfinished_read(reader, deadline);
    }
    // Drain headers (keeping Content-Length) so well-behaved clients
    // see a clean close.
    let mut saw_end = false;
    let mut content_length: usize = 0;
    let mut line = String::new();
    loop {
        line.clear();
        match head.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) if line == "\r\n" || line == "\n" => {
                saw_end = true;
                break;
            }
            Ok(_) => {
                if let Some((name, value)) = line.split_once(':') {
                    if name.trim().eq_ignore_ascii_case("content-length") {
                        content_length = value.trim().parse().unwrap_or(0);
                    }
                }
            }
            Err(_) => return abort_unfinished_read(reader, deadline),
        }
    }
    requests.incr();
    let started = Instant::now();
    // Mint the request's causal context: every recorder span opened
    // while handling — on this thread or adopted by pool workers — is
    // stamped with this trace id. The accept-queue wait becomes part of
    // the request's wall time via a synthetic `wait.queue` child span.
    let queue_wait_us = queue_wait.as_micros().min(u64::MAX as u128) as u64;
    WAIT_QUEUE.get().record(queue_wait_us);
    let seq = REQUEST_SEQ.fetch_add(1, Ordering::Relaxed);
    let ctx = TraceCtx::mint(TRACE_SEED.load(Ordering::Relaxed), seq);
    let queue_wait_ns = queue_wait.as_nanos().min(u64::MAX as u128) as u64;
    let trace = context::begin_request(ctx, "http.request", queue_wait_ns);
    if queue_wait_us > 0 {
        recorder::counter_mark("wait.queue.us", queue_wait_us);
    }
    let oversized = !saw_end && head.limit() == 0;
    let mut route = String::new();
    let response = if oversized {
        OVERSIZED.get().incr();
        HttpResponse::text(
            431,
            format!("request line + headers exceed {MAX_HEADER_BYTES} bytes\n"),
        )
    } else if content_length > MAX_BODY_BYTES {
        HttpResponse::text(
            413,
            format!("request body exceeds {MAX_BODY_BYTES} bytes\n"),
        )
    } else {
        let mut body = vec![0u8; content_length];
        if content_length > 0 && reader.read_exact(&mut body).is_err() {
            return abort_unfinished_read(reader, deadline);
        }
        let body = String::from_utf8_lossy(&body).into_owned();
        let mut parts = request_line.split_whitespace();
        let method = parts.next().unwrap_or("");
        let path = parts.next().unwrap_or("");
        route = path.split('?').next().unwrap_or("").to_owned();
        respond(method, path, body)
    };
    // Close the root span and offer the finished tree to the tail
    // store (summary always; full tree for slow/error/sampled).
    let finished = trace.finish();
    let label = route_label(&route);
    record_route_latency(
        label,
        started.elapsed().as_micros().min(u64::MAX as u128) as u64,
    );
    if recorder::recording() {
        tail::record(label, response.status, &finished);
    }
    // One wide event per request: the server observes itself through
    // the same stream it serves (outcome = the status code).
    events::emit(
        WideEvent::new("http_request", "http")
            .stage(route)
            .outcome(response.status.to_string())
            .duration(started.elapsed())
            .field("bytes", response.body.len() as u64)
            .field("trace", finished.ctx.trace_hex()),
    );
    // Keep the persistent event log current through each request: the
    // chaos drill kills the server and then replays the fault timeline
    // from this file, so it must not trail by a buffer's worth.
    events::flush_sink();
    let mut stream = reader.into_inner().stream;
    let retry_after = response
        .retry_after
        .map(|seconds| format!("Retry-After: {seconds}\r\n"))
        .unwrap_or_default();
    // A peer that hangs up mid-response (EPIPE / reset) is routine
    // under load-test churn: count it and move on — the request was
    // already served and accounted above.
    let wrote = write!(
        stream,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\n{}Content-Length: {}\r\nConnection: close\r\n\r\n",
        response.status,
        status_text(response.status),
        response.content_type,
        retry_after,
        response.body.len()
    )
    .and_then(|()| stream.write_all(response.body.as_bytes()))
    .and_then(|()| stream.flush());
    if wrote.is_err() {
        CLIENT_ABORTS.get().incr();
    }
}

/// Parses an optional `?limit=N` query. `N` must be an integer in
/// `1..=`[`MAX_QUERY_LIMIT`]; any other query (unknown keys, garbage
/// values, out-of-range) is a client error.
fn parse_limit(query: Option<&str>, default: usize) -> Result<usize, String> {
    let Some(query) = query else {
        return Ok(default);
    };
    let mut limit = default;
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
        if key != "limit" {
            return Err(format!("unknown query parameter {key:?}\n"));
        }
        match value.parse::<usize>() {
            Ok(n) if (1..=MAX_QUERY_LIMIT).contains(&n) => limit = n,
            _ => {
                return Err(format!(
                    "limit must be an integer in 1..={MAX_QUERY_LIMIT}, got {value:?}\n"
                ))
            }
        }
    }
    Ok(limit)
}

/// Normalises a request path to one of a bounded set of route labels
/// for the per-route latency family: an unbounded label set would grow
/// `/metrics` without limit, so session ids are collapsed to `:id` and
/// unknown paths to `other`.
fn route_label(route: &str) -> &'static str {
    match route {
        "/metrics" => "/metrics",
        "/healthz" => "/healthz",
        "/tracez" => "/tracez",
        "/tracez/export" => "/tracez/export",
        "/eventz" => "/eventz",
        "/sloz" => "/sloz",
        _ => {
            let segments: Vec<&str> = route
                .strip_prefix("/api/")
                .unwrap_or("")
                .split('/')
                .filter(|s| !s.is_empty())
                .collect();
            match segments.as_slice() {
                ["sessions"] => "/api/sessions",
                ["sessions", _, "ingest"] => "/api/sessions/:id/ingest",
                ["sessions", _, "label"] => "/api/sessions/:id/label",
                ["sessions", _, "recover"] => "/api/sessions/:id/recover",
                ["sessions", _, "lattice"] => "/api/sessions/:id/lattice",
                ["sessions", _, "concepts"] => "/api/sessions/:id/concepts",
                ["sessions", _, "focus"] => "/api/sessions/:id/focus",
                ["sessions", _, "digest"] => "/api/sessions/:id/digest",
                _ => "other",
            }
        }
    }
}

/// Records one request into the per-route HTTP latency family
/// (`http_request_us_summary{route="..."}` on `/metrics`). Scopes are
/// opened on first hit and held for the life of the process: per-request
/// open/drop would churn the bounded retired-scope ring and lose the
/// live series between scrapes.
fn record_route_latency(route: &'static str, us: u64) {
    static SCOPES: OnceLock<Mutex<HashMap<&'static str, crate::Scope>>> = OnceLock::new();
    let scopes = SCOPES.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = scopes.lock().expect("obs route scopes poisoned");
    map.entry(route)
        .or_insert_with(|| crate::scoped().open(&[("route", route)]))
        .record("http.request.us", us);
}

/// What one `/tracez` request asks for.
#[derive(Debug, Clone, PartialEq, Eq)]
enum TracezView {
    /// The per-lane recorder view, at most this many events per lane.
    Lanes(usize),
    /// One kept request's waterfall, by 32-hex-digit trace id.
    Trace(String),
    /// The N slowest retained request summaries.
    Slowest(usize),
}

/// Parses the `/tracez` query: `limit=N` (lanes view), `trace=ID`, or
/// `slowest=N`; anything else is a client error. When several are
/// given, the last one wins.
fn parse_tracez_query(query: Option<&str>) -> Result<TracezView, String> {
    let Some(query) = query else {
        return Ok(TracezView::Lanes(TRACEZ_SPAN_LIMIT));
    };
    let mut view = TracezView::Lanes(TRACEZ_SPAN_LIMIT);
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
        match key {
            "limit" => match value.parse::<usize>() {
                Ok(n) if (1..=MAX_QUERY_LIMIT).contains(&n) => view = TracezView::Lanes(n),
                _ => {
                    return Err(format!(
                        "limit must be an integer in 1..={MAX_QUERY_LIMIT}, got {value:?}\n"
                    ))
                }
            },
            "trace" => match context::parse_trace_hex(value) {
                Some(_) => view = TracezView::Trace(value.to_owned()),
                None => return Err(format!("trace must be 32 hex digits, got {value:?}\n")),
            },
            "slowest" => match value.parse::<usize>() {
                Ok(n) if (1..=MAX_QUERY_LIMIT).contains(&n) => view = TracezView::Slowest(n),
                _ => {
                    return Err(format!(
                        "slowest must be an integer in 1..={MAX_QUERY_LIMIT}, got {value:?}\n"
                    ))
                }
            },
            _ => return Err(format!("unknown query parameter {key:?}\n")),
        }
    }
    Ok(view)
}

fn respond(method: &str, path: &str, body: String) -> HttpResponse {
    let (route, query) = match path.split_once('?') {
        Some((route, query)) => (route, Some(query)),
        None => (path, None),
    };
    // The API plane first: it owns its own methods and status codes.
    if route == "/api" || route.starts_with("/api/") {
        return match api_handler() {
            Some(handler) => {
                let request = ApiRequest {
                    method: method.to_owned(),
                    route: route.to_owned(),
                    query: query.map(str::to_owned),
                    body,
                };
                let answer = handler.handle(&request);
                HttpResponse {
                    status: answer.status,
                    content_type: answer.content_type,
                    body: answer.body,
                    retry_after: answer.retry_after,
                }
            }
            None => HttpResponse::text(
                404,
                "no session API is enabled (start `cable serve --api`)\n",
            ),
        };
    }
    if method != "GET" {
        return HttpResponse::text(405, "only GET is served outside /api/\n");
    }
    let bad_request = |message: String| HttpResponse::text(400, message);
    match route {
        "/metrics" => match parse_limit(query, 0) {
            Err(e) => bad_request(e),
            Ok(_) => HttpResponse {
                status: 200,
                content_type: "text/plain; version=0.0.4; charset=utf-8",
                body: prom::encode_full(&registry().snapshot(), &crate::scoped().snapshot()),
                retry_after: None,
            },
        },
        "/healthz" => match parse_limit(query, 0) {
            Err(e) => bad_request(e),
            Ok(_) => HttpResponse::json(200, &healthz_json()),
        },
        "/tracez" => match parse_tracez_query(query) {
            Err(e) => bad_request(e),
            Ok(TracezView::Lanes(limit)) => HttpResponse::json(200, &tracez_json(limit)),
            Ok(TracezView::Trace(id)) => match tail::tree(&id) {
                Some((summary, spans)) => {
                    HttpResponse::text(200, tail::render_waterfall(&summary, &spans))
                }
                None => HttpResponse::text(
                    404,
                    format!(
                        "no kept span tree for trace {id} (trees are kept for \
                         slow/error/sampled requests; see /tracez?slowest=N)\n"
                    ),
                ),
            },
            Ok(TracezView::Slowest(n)) => HttpResponse::json(200, &tail::slowest_json(n)),
        },
        "/tracez/export" => match parse_limit(query, 0) {
            Err(e) => bad_request(e),
            Ok(_) => HttpResponse::json(200, &tail::export()),
        },
        "/eventz" => match parse_limit(query, EVENTZ_EVENT_LIMIT) {
            Err(e) => bad_request(e),
            Ok(limit) => HttpResponse::json(200, &events::eventz_json(limit)),
        },
        "/sloz" => match parse_limit(query, 0) {
            Err(e) => bad_request(e),
            Ok(_) => HttpResponse::json(200, &slo::sloz_json()),
        },
        _ => HttpResponse::text(
            404,
            "try /metrics, /healthz, /tracez, /tracez/export, /eventz, /sloz, or /api/sessions\n",
        ),
    }
}

fn healthz_json() -> Value {
    let health = health_slot().lock().expect("obs health poisoned").clone();
    let build = crate::build_info();
    let degraded_cause = health.as_ref().and_then(|h| h.degraded.clone());
    let mut pairs = vec![
        (
            "status",
            Value::from(if degraded_cause.is_some() {
                "degraded"
            } else {
                "ok"
            }),
        ),
        ("version", Value::from(build.version)),
        ("git_hash", Value::from(build.git_hash)),
        ("uptime_seconds", Value::from(crate::uptime_seconds())),
    ];
    match health {
        Some(h) => {
            pairs.push(("store", Value::from("open")));
            pairs.push(("generation", Value::from(h.generation)));
            pairs.push(("journal_lag_bytes", Value::from(h.journal_lag_bytes)));
            pairs.push(("journal_lag_records", Value::from(h.journal_lag_records)));
        }
        None => pairs.push(("store", Value::from("none"))),
    }
    match degraded_cause {
        Some(cause) => pairs.push(("degraded", Value::from(cause))),
        None => pairs.push(("degraded", Value::from(false))),
    }
    pairs.push(("durability", durability_json()));
    pairs.push(("guard", guard_json()));
    Value::object(pairs)
}

/// Degraded-mode counters for `/healthz`, read from the registry by
/// name (same contract as [`guard_json`]): `degraded_now` is derived as
/// enters minus exits, so it reads `1` while the store is read-only
/// even when [`set_health`] has not been refreshed since the failure.
fn durability_json() -> Value {
    let snapshot = registry().snapshot();
    let read = |name: &str| snapshot.counter(name).unwrap_or(0);
    let enter = read("store.degraded.enter");
    let exit = read("store.degraded.exit");
    Value::object([
        ("degraded_now", Value::from(enter.saturating_sub(exit))),
        ("degraded_enters", Value::from(enter)),
        ("degraded_exits", Value::from(exit)),
        (
            "refused_writes",
            Value::from(read("store.degraded.refusals")),
        ),
        ("recoveries", Value::from(read("core.session.recoveries"))),
        ("client_aborts", Value::from(read("http.client_abort"))),
        (
            "slow_client_aborts",
            Value::from(read("obs.http.slow_client_aborts")),
        ),
    ])
}

/// Guard/robustness counters for `/healthz`, read from the registry by
/// name: cable-obs deliberately does not depend on cable-guard (the
/// dependency runs the other way), so names are the contract here.
fn guard_json() -> Value {
    let snapshot = registry().snapshot();
    let read = |name: &str| Value::from(snapshot.counter(name).unwrap_or(0));
    Value::object([
        ("checkpoints", read("guard.checkpoints")),
        ("cancelled", read("guard.cancelled")),
        ("budget_exceeded", read("guard.budget_exceeded")),
        ("task_panics", read("par.task_panics")),
    ])
}

/// The `/tracez` body: the most recent `limit` events per lane, plus
/// per-lane drop accounting.
fn tracez_json(limit: usize) -> Value {
    let lanes = recorder::snapshot();
    let lanes_json: Vec<Value> = lanes
        .iter()
        .map(|lane| {
            let start = lane.events.len().saturating_sub(limit);
            let events: Vec<Value> = lane.events[start..]
                .iter()
                .map(|e| {
                    let kind = match e.kind {
                        recorder::EventKind::Begin => "begin",
                        recorder::EventKind::End => "end",
                        recorder::EventKind::Instant => "instant",
                        recorder::EventKind::Counter(_) => "counter",
                    };
                    let mut pairs = vec![
                        ("name", Value::from(e.name)),
                        ("kind", Value::from(kind)),
                        ("ts_ns", Value::from(e.ts_ns)),
                    ];
                    if let recorder::EventKind::Counter(v) = e.kind {
                        pairs.push(("value", Value::from(v)));
                    }
                    if e.span != 0 {
                        pairs.push((
                            "trace",
                            Value::from(format!("{:016x}{:016x}", e.trace_hi, e.trace_lo)),
                        ));
                        pairs.push(("span", Value::from(format!("{:016x}", e.span))));
                        pairs.push(("parent", Value::from(format!("{:016x}", e.parent))));
                    }
                    Value::object(pairs)
                })
                .collect();
            Value::object([
                ("id", Value::from(lane.id)),
                ("label", Value::from(lane.label.as_str())),
                ("dropped", Value::from(lane.dropped)),
                ("events", Value::Array(events)),
            ])
        })
        .collect();
    Value::object([
        ("recording", Value::from(recorder::recording())),
        ("lanes", Value::Array(lanes_json)),
        ("profile", chrome::profile_json(&chrome::self_time(&lanes))),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read response");
        let (head, body) = response
            .split_once("\r\n\r\n")
            .expect("response has a header/body split");
        (head.to_owned(), body.to_owned())
    }

    fn post(addr: SocketAddr, path: &str, body: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(
            stream,
            "POST {path} HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read response");
        let (head, body) = response
            .split_once("\r\n\r\n")
            .expect("response has a header/body split");
        (head.to_owned(), body.to_owned())
    }

    #[test]
    fn parse_listen_addr_accepts_bare_ports_and_full_addrs() {
        assert_eq!(
            parse_listen_addr("0").unwrap(),
            SocketAddr::from(([127, 0, 0, 1], 0))
        );
        assert_eq!(
            parse_listen_addr("9090").unwrap(),
            SocketAddr::from(([127, 0, 0, 1], 9090))
        );
        assert_eq!(
            parse_listen_addr("0.0.0.0:7777").unwrap(),
            SocketAddr::from(([0, 0, 0, 0], 7777))
        );
        assert!(parse_listen_addr("not-an-addr").is_err());
    }

    #[test]
    fn server_answers_metrics_healthz_tracez_and_404() {
        registry().counter("obs.test.http_unit").add(3);
        let guard = ObsServer::bind("0").expect("bind ephemeral").spawn();
        let addr = guard.addr();

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(body.contains("obs_test_http_unit 3"), "{body}");

        let (head, body) = get(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        let health = Value::parse(body.trim()).expect("healthz is JSON");
        assert_eq!(health.get("status").and_then(Value::as_str), Some("ok"));
        let counters = health.get("guard").expect("healthz reports guard counters");
        assert!(counters
            .get("checkpoints")
            .and_then(Value::as_u64)
            .is_some());
        assert!(counters
            .get("task_panics")
            .and_then(Value::as_u64)
            .is_some());

        set_health(Some(HealthInfo {
            generation: 4,
            journal_lag_bytes: 128,
            journal_lag_records: 2,
            degraded: None,
        }));
        let (_, body) = get(addr, "/healthz");
        let health = Value::parse(body.trim()).unwrap();
        assert_eq!(health.get("generation").and_then(Value::as_u64), Some(4));
        assert_eq!(
            health.get("journal_lag_bytes").and_then(Value::as_u64),
            Some(128)
        );
        assert_eq!(health.get("status").and_then(Value::as_str), Some("ok"));
        assert_eq!(health.get("degraded").and_then(Value::as_bool), Some(false));
        assert!(health
            .get("durability")
            .and_then(|d| d.get("degraded_now"))
            .and_then(Value::as_u64)
            .is_some());

        set_health(Some(HealthInfo {
            generation: 4,
            journal_lag_bytes: 128,
            journal_lag_records: 2,
            degraded: Some("fsync".to_owned()),
        }));
        let (_, body) = get(addr, "/healthz");
        let health = Value::parse(body.trim()).unwrap();
        assert_eq!(
            health.get("status").and_then(Value::as_str),
            Some("degraded")
        );
        assert_eq!(
            health.get("degraded").and_then(Value::as_str),
            Some("fsync")
        );
        set_health(None);

        let (head, body) = get(addr, "/tracez");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        let tracez = Value::parse(body.trim()).expect("tracez is JSON");
        assert!(tracez.get("lanes").and_then(Value::as_array).is_some());

        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");

        drop(guard); // must join cleanly
    }

    #[test]
    fn healthz_reports_build_identity_and_uptime() {
        let guard = ObsServer::bind("0").expect("bind ephemeral").spawn();
        let (_, body) = get(guard.addr(), "/healthz");
        let health = Value::parse(body.trim()).expect("healthz is JSON");
        assert_eq!(
            health.get("version").and_then(Value::as_str),
            Some(env!("CARGO_PKG_VERSION"))
        );
        assert!(health.get("git_hash").and_then(Value::as_str).is_some());
        assert!(health
            .get("uptime_seconds")
            .and_then(Value::as_u64)
            .is_some());
        drop(guard);
    }

    #[test]
    fn eventz_and_sloz_serve_json() {
        let guard = ObsServer::bind("0").expect("bind ephemeral").spawn();
        let addr = guard.addr();

        let (head, body) = get(addr, "/eventz");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        let eventz = Value::parse(body.trim()).expect("eventz is JSON");
        assert!(eventz.get("events").and_then(Value::as_array).is_some());
        assert!(eventz.get("total").and_then(Value::as_u64).is_some());

        let (head, body) = get(addr, "/sloz");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        let sloz = Value::parse(body.trim()).expect("sloz is JSON");
        assert!(sloz.get("windows").and_then(Value::as_array).is_some());
        assert!(sloz.get("error_budget").and_then(Value::as_f64).is_some());

        drop(guard);
    }

    #[test]
    fn limit_query_is_validated() {
        assert_eq!(parse_limit(None, 7), Ok(7));
        assert_eq!(parse_limit(Some("limit=3"), 7), Ok(3));
        assert_eq!(parse_limit(Some(""), 7), Ok(7));
        assert!(parse_limit(Some("limit=0"), 7).is_err());
        assert!(parse_limit(Some("limit=-1"), 7).is_err());
        assert!(parse_limit(Some("limit=abc"), 7).is_err());
        assert!(parse_limit(Some("limit="), 7).is_err());
        assert!(parse_limit(Some("limit=999999999"), 7).is_err());
        assert!(parse_limit(Some("frobnicate=1"), 7).is_err());

        let guard = ObsServer::bind("0").expect("bind ephemeral").spawn();
        let addr = guard.addr();
        let (head, _) = get(addr, "/tracez?limit=5");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        let (head, body) = get(addr, "/tracez?limit=garbage");
        assert!(head.starts_with("HTTP/1.1 400"), "{head}");
        assert!(body.contains("limit must be an integer"), "{body}");
        let (head, _) = get(addr, "/eventz?limit=0");
        assert!(head.starts_with("HTTP/1.1 400"), "{head}");
        let (head, _) = get(addr, "/metrics?unknown=1");
        assert!(head.starts_with("HTTP/1.1 400"), "{head}");
        drop(guard);
    }

    #[test]
    fn tracez_query_views_parse_and_reject_garbage() {
        let hex = "0123456789abcdef0123456789abcdef";
        assert_eq!(
            parse_tracez_query(None),
            Ok(TracezView::Lanes(TRACEZ_SPAN_LIMIT))
        );
        assert_eq!(
            parse_tracez_query(Some("limit=9")),
            Ok(TracezView::Lanes(9))
        );
        assert_eq!(
            parse_tracez_query(Some(&format!("trace={hex}"))),
            Ok(TracezView::Trace(hex.to_owned()))
        );
        assert_eq!(
            parse_tracez_query(Some("slowest=5")),
            Ok(TracezView::Slowest(5))
        );
        assert!(parse_tracez_query(Some("trace=short")).is_err());
        assert!(parse_tracez_query(Some("trace=zz23456789abcdef0123456789abcdef")).is_err());
        assert!(parse_tracez_query(Some("slowest=0")).is_err());
        assert!(parse_tracez_query(Some("slowest=abc")).is_err());
        assert!(parse_tracez_query(Some("frob=1")).is_err());
    }

    #[test]
    fn route_labels_are_bounded() {
        assert_eq!(route_label("/metrics"), "/metrics");
        assert_eq!(
            route_label("/api/sessions/s-42/ingest"),
            "/api/sessions/:id/ingest"
        );
        assert_eq!(route_label("/api/sessions"), "/api/sessions");
        assert_eq!(
            route_label("/api/sessions/x/digest"),
            "/api/sessions/:id/digest"
        );
        assert_eq!(route_label("/api/unknown/thing"), "other");
        assert_eq!(route_label("/favicon.ico"), "other");
        assert_eq!(route_label(""), "other");
    }

    #[test]
    fn tracez_serves_waterfalls_slowest_index_and_export() {
        use crate::context::{FinishedTrace, SpanRec};
        let _store = tail::TEST_STORE_LOCK.lock().unwrap();
        tail::clear();
        // Seed one slow request's tree directly (the end-to-end mint →
        // collect path is covered by the request_tracing integration
        // test, which owns the global recording flag in its own
        // process).
        let ctx = TraceCtx::mint(7, 1);
        let finished = FinishedTrace {
            ctx,
            spans: vec![
                SpanRec {
                    name: "wait.fsync",
                    span: context::mix(ctx.span_id, 1),
                    parent: ctx.span_id,
                    start_ns: 2_000,
                    end_ns: 80_000_000,
                },
                SpanRec {
                    name: "http.request",
                    span: ctx.span_id,
                    parent: 0,
                    start_ns: 1_000,
                    end_ns: 100_001_000,
                },
            ],
            dropped: 0,
        };
        assert_eq!(
            tail::record("/api/sessions/:id/ingest", 200, &finished),
            "slow"
        );

        let guard = ObsServer::bind("0").expect("bind ephemeral").spawn();
        let addr = guard.addr();

        let slow_id = ctx.trace_hex();
        let (head, body) = get(addr, &format!("/tracez?trace={slow_id}"));
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(body.contains("http.request"), "{body}");
        assert!(body.contains("wait.fsync"), "{body}");

        let (head, _) = get(addr, "/tracez?trace=ffffffffffffffffffffffffffffffff");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");

        let (head, body) = get(addr, "/tracez?slowest=3");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        let index = Value::parse(body.trim()).expect("slowest is JSON");
        let rows = index.get("slowest").and_then(Value::as_array).unwrap();
        assert!(
            rows.iter()
                .any(|r| r.get("trace").and_then(Value::as_str) == Some(slow_id.as_str())),
            "{body}"
        );

        let (head, body) = get(addr, "/tracez/export");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        let export = Value::parse(body.trim()).expect("export is JSON");
        assert_eq!(
            export.get("record").and_then(Value::as_str),
            Some("trace_export")
        );
        assert!(export
            .get("traces")
            .and_then(Value::as_array)
            .is_some_and(|t| !t.is_empty()));

        tail::clear();
        drop(guard);
    }

    #[test]
    fn metrics_exports_per_route_latency_and_queue_wait_families() {
        let guard = ObsServer::bind("0").expect("bind ephemeral").spawn();
        let addr = guard.addr();
        // One request to /healthz populates its route scope; the next
        // /metrics scrape must show the labelled family and the queue
        // wait histogram.
        let _ = get(addr, "/healthz");
        let (_, body) = get(addr, "/metrics");
        assert!(
            body.contains("http_request_us_summary{route=\"/healthz\""),
            "per-route family missing: {body}"
        );
        assert!(body.contains("wait_queue_us_bucket"), "{body}");
        drop(guard);
    }

    #[test]
    fn oversized_headers_get_431_not_an_unbounded_buffer() {
        let guard = ObsServer::bind("0").expect("bind ephemeral").spawn();
        let mut stream = TcpStream::connect(guard.addr()).expect("connect");
        write!(stream, "GET /metrics HTTP/1.1\r\n").unwrap();
        // One absurd header, comfortably past the cap.
        let filler = "x".repeat(2 * MAX_HEADER_BYTES);
        let _ = write!(stream, "X-Filler: {filler}\r\n\r\n");
        // The server stops reading at the cap and closes; unread bytes
        // on its side can turn the close into a reset, so read whatever
        // arrives instead of insisting on a clean EOF.
        let mut bytes = Vec::new();
        let mut buf = [0u8; 1024];
        loop {
            match stream.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => bytes.extend_from_slice(&buf[..n]),
            }
        }
        let response = String::from_utf8_lossy(&bytes);
        assert!(
            response.starts_with("HTTP/1.1 431"),
            "expected 431, got: {}",
            response.lines().next().unwrap_or("")
        );
        assert!(OVERSIZED.get().get() >= 1);
        drop(guard);
    }

    #[test]
    fn requests_under_the_cap_are_unaffected_by_the_limit() {
        let guard = ObsServer::bind("0").expect("bind ephemeral").spawn();
        let mut stream = TcpStream::connect(guard.addr()).expect("connect");
        // Several headers, well under MAX_HEADER_BYTES in total.
        write!(stream, "GET /healthz HTTP/1.1\r\nHost: x\r\n").unwrap();
        for i in 0..8 {
            write!(stream, "X-H{i}: {}\r\n", "v".repeat(64)).unwrap();
        }
        write!(stream, "\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read response");
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        drop(guard);
    }

    #[test]
    fn oversized_bodies_get_413() {
        let guard = ObsServer::bind("0").expect("bind ephemeral").spawn();
        let mut stream = TcpStream::connect(guard.addr()).expect("connect");
        write!(
            stream,
            "POST /api/sessions HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        )
        .unwrap();
        let mut bytes = Vec::new();
        let mut buf = [0u8; 1024];
        loop {
            match stream.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => bytes.extend_from_slice(&buf[..n]),
            }
        }
        let response = String::from_utf8_lossy(&bytes);
        assert!(
            response.starts_with("HTTP/1.1 413"),
            "expected 413, got: {}",
            response.lines().next().unwrap_or("")
        );
        drop(guard);
    }

    #[test]
    fn api_routes_404_without_a_handler_and_dispatch_with_one() {
        struct Echo;
        impl ApiHandler for Echo {
            fn handle(&self, request: &ApiRequest) -> ApiResponse {
                ApiResponse::json(
                    200,
                    &Value::object([
                        ("method", Value::from(request.method.as_str())),
                        ("route", Value::from(request.route.as_str())),
                        (
                            "query",
                            request
                                .query
                                .as_deref()
                                .map(Value::from)
                                .unwrap_or(Value::Null),
                        ),
                        ("body", Value::from(request.body.as_str())),
                    ]),
                )
            }
        }
        let guard = ObsServer::bind("0").expect("bind ephemeral").spawn();
        let addr = guard.addr();

        set_api_handler(None);
        let (head, body) = get(addr, "/api/sessions");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");
        assert!(body.contains("--api"), "{body}");

        set_api_handler(Some(Arc::new(Echo)));
        let (head, body) = post(addr, "/api/sessions/s1/ingest?tenant=t", "{\"x\":1}");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        let echoed = Value::parse(body.trim()).expect("echo is JSON");
        assert_eq!(echoed.get("method").and_then(Value::as_str), Some("POST"));
        assert_eq!(
            echoed.get("route").and_then(Value::as_str),
            Some("/api/sessions/s1/ingest")
        );
        assert_eq!(
            echoed.get("query").and_then(Value::as_str),
            Some("tenant=t")
        );
        assert_eq!(
            echoed.get("body").and_then(Value::as_str),
            Some("{\"x\":1}")
        );
        set_api_handler(None);
        drop(guard);
    }

    #[test]
    fn non_get_outside_the_api_is_405() {
        let guard = ObsServer::bind("0").expect("bind ephemeral").spawn();
        let (head, _) = post(guard.addr(), "/metrics", "");
        assert!(head.starts_with("HTTP/1.1 405"), "{head}");
        drop(guard);
    }

    #[test]
    fn queue_full_sheds_with_429_and_retry_after() {
        // One worker, zero queue: a second concurrent connection must be
        // shed with 429 + Retry-After while the first is being served.
        let guard = ObsServer::bind_with(
            "0",
            ServerConfig {
                max_connections: 1,
                queue_depth: 0,
                ..ServerConfig::default()
            },
        )
        .expect("bind ephemeral")
        .spawn();
        let addr = guard.addr();
        // Occupy the only worker with an idle connection (it waits up to
        // the 2 s read timeout for a request line).
        let first = TcpStream::connect(addr).expect("occupy worker");
        // Give the worker a moment to pick the first connection up.
        std::thread::sleep(Duration::from_millis(100));
        let mut second = TcpStream::connect(addr).expect("connect past capacity");
        second
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut response = String::new();
        second.read_to_string(&mut response).expect("read 429");
        assert!(
            response.starts_with("HTTP/1.1 429"),
            "expected 429, got: {}",
            response.lines().next().unwrap_or("")
        );
        assert!(
            response.contains(&format!("Retry-After: {RETRY_AFTER_SECONDS}")),
            "{response}"
        );
        assert!(REJECTED.get().get() >= 1);
        drop(first);
        drop(guard);
    }

    #[test]
    fn queued_connections_are_served_when_a_worker_frees_up() {
        let guard = ObsServer::bind_with(
            "0",
            ServerConfig {
                max_connections: 1,
                queue_depth: 8,
                ..ServerConfig::default()
            },
        )
        .expect("bind ephemeral")
        .spawn();
        let addr = guard.addr();
        // Hold the worker briefly with an idle connection, then issue a
        // real request: it queues, and once the idle connection times
        // out (2 s), the worker serves it.
        let idle = TcpStream::connect(addr).expect("idle");
        std::thread::sleep(Duration::from_millis(50));
        let mut stream = TcpStream::connect(addr).expect("queued connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        write!(stream, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read response");
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        drop(idle);
        drop(guard);
    }

    #[test]
    fn bind_rejects_zero_workers() {
        assert!(ObsServer::bind_with(
            "0",
            ServerConfig {
                max_connections: 0,
                queue_depth: 4,
                ..ServerConfig::default()
            }
        )
        .is_err());
    }

    #[test]
    fn slow_client_gets_408_past_the_connection_deadline() {
        // Tight deadline: a client that trickles its request line slower
        // than the connection deadline must be cut off with 408 and
        // counted, not held for the full io_timeout per byte.
        let guard = ObsServer::bind_with(
            "0",
            ServerConfig {
                io_timeout: Duration::from_millis(400),
                connection_deadline: Duration::from_millis(300),
                ..ServerConfig::default()
            },
        )
        .expect("bind ephemeral")
        .spawn();
        let before = SLOW_CLIENT_ABORTS.get().get();
        let mut stream = TcpStream::connect(guard.addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        // Trickle one byte at a time: each write arrives within the
        // io_timeout, so only the absolute deadline can stop us.
        let started = Instant::now();
        let mut response = String::new();
        for byte in b"GET /healthz HTTP/1.1\r\n" {
            if stream.write_all(&[*byte]).is_err() {
                break; // server already hung up on us — expected
            }
            std::thread::sleep(Duration::from_millis(50));
            if started.elapsed() > Duration::from_secs(3) {
                break;
            }
        }
        let _ = stream.read_to_string(&mut response);
        assert!(
            response.starts_with("HTTP/1.1 408") || response.is_empty(),
            "expected a 408 or a cut connection, got: {}",
            response.lines().next().unwrap_or("")
        );
        assert!(
            SLOW_CLIENT_ABORTS.get().get() > before,
            "slow client must be counted"
        );
        drop(guard);
    }

    #[test]
    fn client_abort_during_response_write_is_counted_not_fatal() {
        let guard = ObsServer::bind("0").expect("bind ephemeral").spawn();
        let addr = guard.addr();
        // Send a full request, then slam the connection shut without
        // reading the response: whether the server's write lands in the
        // doomed socket buffer or errors (EPIPE/reset → counted in
        // `http.client_abort`), the worker must shrug it off and keep
        // serving.
        {
            let mut stream = TcpStream::connect(addr).expect("connect");
            write!(stream, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
            let _ = stream.shutdown(std::net::Shutdown::Both);
            drop(stream);
        }
        // The next request must still be served normally.
        std::thread::sleep(Duration::from_millis(100));
        let (head, _) = get(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        drop(guard);
    }
}
