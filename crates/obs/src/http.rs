//! Std-only HTTP/1.1 exposition server: `/metrics`, `/healthz`,
//! `/tracez`, `/eventz`, `/sloz`.
//!
//! Per DESIGN.md §8 this is hand-rolled over [`std::net::TcpListener`] —
//! no external HTTP stack. Each accepted connection is handled on a
//! short-lived thread, but never more than [`MAX_CONNECTIONS`] at once:
//! past the cap, connections get an immediate `503` and a close, so a
//! herd of slow clients (deliberate or not) occupies a bounded number of
//! threads while the accept loop keeps draining the backlog. A
//! connection may send at most [`MAX_HEADER_BYTES`] of request line plus
//! headers (`431` past that), must make read progress within the 2 s
//! timeout, and is always closed after the response — slowloris-style
//! trickles cost one capped slot for at most one timeout.
//!
//! Security posture (DESIGN.md §11): addresses given as a bare port bind
//! `127.0.0.1`; exposing the endpoints beyond localhost requires an
//! explicit interface in `--obs-listen`.

use crate::chrome;
use crate::events::{self, WideEvent};
use crate::json::Value;
use crate::metrics::CounterHandle;
use crate::recorder;
use crate::registry::registry;
use crate::slo;
use crate::{prom, Counter};
use std::io::{BufRead, BufReader, Read as _, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

static REQUESTS: CounterHandle = CounterHandle::new("obs.http.requests");
/// Connections turned away with `503` at the concurrency cap.
static REJECTED: CounterHandle = CounterHandle::new("obs.http.rejected");
/// Requests refused with `431` for oversized request line + headers.
static OVERSIZED: CounterHandle = CounterHandle::new("obs.http.oversized");

/// Ceiling on request line + header bytes a connection may send.
pub const MAX_HEADER_BYTES: usize = 8 * 1024;
/// Ceiling on concurrently served connections; the accept loop answers
/// `503 Service Unavailable` beyond it.
pub const MAX_CONNECTIONS: usize = 8;

/// Most recent spans per lane served by `/tracez` (override per request
/// with `?limit=N`).
pub const TRACEZ_SPAN_LIMIT: usize = 64;

/// Most recent events served by `/eventz` (override with `?limit=N`).
pub const EVENTZ_EVENT_LIMIT: usize = 64;

/// Ceiling on a `?limit=N` override — keeps one request from asking for
/// a multi-MB response.
pub const MAX_QUERY_LIMIT: usize = 100_000;

/// What `/healthz` reports about an open store, set by whoever holds
/// one (the `cable` binary) via [`set_health`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthInfo {
    /// Snapshot generation of the open store.
    pub generation: u64,
    /// Journal bytes past the header — work lost to a crash, recovered
    /// on resume.
    pub journal_lag_bytes: u64,
    /// Journal records not yet folded into the snapshot.
    pub journal_lag_records: u64,
}

fn health_slot() -> &'static Mutex<Option<HealthInfo>> {
    static SLOT: OnceLock<Mutex<Option<HealthInfo>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

/// Publishes store health for `/healthz`. Call with `None` when no
/// store is open (the endpoint then reports `"store": "none"` but stays
/// healthy — a serving process without a store is not broken).
pub fn set_health(info: Option<HealthInfo>) {
    *health_slot().lock().expect("obs health poisoned") = info;
}

/// Parses an `--obs-listen` value: either a full socket address
/// (`127.0.0.1:9090`, `0.0.0.0:9090`) or a bare port, which binds
/// localhost.
pub fn parse_listen_addr(s: &str) -> Result<SocketAddr, String> {
    if let Ok(port) = s.parse::<u16>() {
        return Ok(SocketAddr::from(([127, 0, 0, 1], port)));
    }
    s.parse::<SocketAddr>()
        .map_err(|e| format!("invalid listen address {s:?}: {e}"))
}

/// The exposition server. [`ObsServer::bind`], then either
/// [`ObsServer::serve`] (block forever, for `cable serve`) or
/// [`ObsServer::spawn`] (background thread with a stop guard, for
/// `--obs-listen` alongside other work).
pub struct ObsServer {
    listener: TcpListener,
    addr: SocketAddr,
}

impl ObsServer {
    /// Binds the listener. `addr` accepts the [`parse_listen_addr`]
    /// forms; port 0 picks an ephemeral port (see [`ObsServer::addr`]).
    pub fn bind(addr: &str) -> Result<ObsServer, String> {
        let addr = parse_listen_addr(addr)?;
        let listener = TcpListener::bind(addr)
            .map_err(|e| format!("cannot bind obs server on {addr}: {e}"))?;
        let addr = listener
            .local_addr()
            .map_err(|e| format!("obs server has no local address: {e}"))?;
        Ok(ObsServer { listener, addr })
    }

    /// The bound address (resolves port 0 to the real ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Serves requests on the calling thread until the process exits.
    pub fn serve(self) -> ! {
        let active = Arc::new(AtomicUsize::new(0));
        loop {
            if let Ok((stream, _)) = self.listener.accept() {
                dispatch(stream, &active);
            }
        }
    }

    /// Serves requests from a background thread; the returned guard
    /// stops the server when dropped.
    pub fn spawn(self) -> ServerGuard {
        let stop = Arc::new(AtomicBool::new(false));
        let addr = self.addr;
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("cable-obs-http".into())
            .spawn(move || {
                let active = Arc::new(AtomicUsize::new(0));
                loop {
                    let Ok((stream, _)) = self.listener.accept() else {
                        continue;
                    };
                    if thread_stop.load(Ordering::Acquire) {
                        return;
                    }
                    dispatch(stream, &active);
                }
            })
            .expect("spawn obs http thread");
        ServerGuard {
            addr,
            stop,
            handle: Some(handle),
        }
    }
}

/// Hands a connection to a short-lived handler thread, bounded by
/// [`MAX_CONNECTIONS`]. At the cap the connection gets an immediate
/// `503` on the accept thread (cheap: one small write, no reads) so the
/// loop is back to accepting without waiting on anyone's timeout.
fn dispatch(stream: TcpStream, active: &Arc<AtomicUsize>) {
    let acquired = active
        .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
            (n < MAX_CONNECTIONS).then_some(n + 1)
        })
        .is_ok();
    if !acquired {
        REJECTED.get().incr();
        let mut stream = stream;
        let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
        let body = "server at connection capacity, retry\n";
        let _ = write!(
            stream,
            "HTTP/1.1 503 Service Unavailable\r\nContent-Type: text/plain; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        );
        return;
    }
    let slot = Arc::clone(active);
    let spawned = std::thread::Builder::new()
        .name("cable-obs-conn".into())
        .spawn(move || {
            handle_connection(stream, REQUESTS.get());
            slot.fetch_sub(1, Ordering::AcqRel);
        });
    if spawned.is_err() {
        // Thread spawn failed (resource exhaustion): drop the
        // connection and release the slot rather than wedging.
        active.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Stops the background server (from [`ObsServer::spawn`]) on drop.
pub struct ServerGuard {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl ServerGuard {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for ServerGuard {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock accept() so the thread observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn handle_connection(stream: TcpStream, requests: &Counter) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    // The `take` caps how many request-line + header bytes one
    // connection may feed us: past it `read_line` sees EOF, and we
    // answer 431 instead of buffering without bound.
    let mut reader = BufReader::new(stream).take(MAX_HEADER_BYTES as u64);
    let mut request_line = String::new();
    if reader.read_line(&mut request_line).is_err() {
        return;
    }
    // Drain headers so well-behaved clients see a clean close.
    let mut saw_end = false;
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) if line == "\r\n" || line == "\n" => {
                saw_end = true;
                break;
            }
            Ok(_) => continue,
            Err(_) => return,
        }
    }
    requests.incr();
    let started = Instant::now();
    let oversized = !saw_end && reader.limit() == 0;
    let mut stream = reader.into_inner().into_inner();
    let mut route = String::new();
    let (status, content_type, body) = if oversized {
        OVERSIZED.get().incr();
        (
            "431 Request Header Fields Too Large",
            "text/plain; charset=utf-8",
            format!("request line + headers exceed {MAX_HEADER_BYTES} bytes\n"),
        )
    } else {
        let mut parts = request_line.split_whitespace();
        let method = parts.next().unwrap_or("");
        let path = parts.next().unwrap_or("");
        route = path.split('?').next().unwrap_or("").to_owned();
        respond(method, path)
    };
    // One wide event per request: the server observes itself through
    // the same stream it serves (outcome = the status code).
    events::emit(
        WideEvent::new("http_request", "http")
            .stage(route)
            .outcome(status.split_whitespace().next().unwrap_or("?"))
            .duration(started.elapsed())
            .field("bytes", body.len() as u64),
    );
    let _ = write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

/// Parses an optional `?limit=N` query. `N` must be an integer in
/// `1..=`[`MAX_QUERY_LIMIT`]; any other query (unknown keys, garbage
/// values, out-of-range) is a client error.
fn parse_limit(query: Option<&str>, default: usize) -> Result<usize, String> {
    let Some(query) = query else {
        return Ok(default);
    };
    let mut limit = default;
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
        if key != "limit" {
            return Err(format!("unknown query parameter {key:?}\n"));
        }
        match value.parse::<usize>() {
            Ok(n) if (1..=MAX_QUERY_LIMIT).contains(&n) => limit = n,
            _ => {
                return Err(format!(
                    "limit must be an integer in 1..={MAX_QUERY_LIMIT}, got {value:?}\n"
                ))
            }
        }
    }
    Ok(limit)
}

fn respond(method: &str, path: &str) -> (&'static str, &'static str, String) {
    if method != "GET" {
        return (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "only GET is served\n".into(),
        );
    }
    let (route, query) = match path.split_once('?') {
        Some((route, query)) => (route, Some(query)),
        None => (path, None),
    };
    let bad_request = |message: String| {
        (
            "400 Bad Request" as &'static str,
            "text/plain; charset=utf-8",
            message,
        )
    };
    match route {
        "/metrics" => match parse_limit(query, 0) {
            Err(e) => bad_request(e),
            Ok(_) => (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                prom::encode_full(&registry().snapshot(), &crate::scoped().snapshot()),
            ),
        },
        "/healthz" => match parse_limit(query, 0) {
            Err(e) => bad_request(e),
            Ok(_) => (
                "200 OK",
                "application/json; charset=utf-8",
                format!("{}\n", healthz_json()),
            ),
        },
        "/tracez" => match parse_limit(query, TRACEZ_SPAN_LIMIT) {
            Err(e) => bad_request(e),
            Ok(limit) => (
                "200 OK",
                "application/json; charset=utf-8",
                format!("{}\n", tracez_json(limit)),
            ),
        },
        "/eventz" => match parse_limit(query, EVENTZ_EVENT_LIMIT) {
            Err(e) => bad_request(e),
            Ok(limit) => (
                "200 OK",
                "application/json; charset=utf-8",
                format!("{}\n", events::eventz_json(limit)),
            ),
        },
        "/sloz" => match parse_limit(query, 0) {
            Err(e) => bad_request(e),
            Ok(_) => (
                "200 OK",
                "application/json; charset=utf-8",
                format!("{}\n", slo::sloz_json()),
            ),
        },
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "try /metrics, /healthz, /tracez, /eventz, or /sloz\n".into(),
        ),
    }
}

fn healthz_json() -> Value {
    let health = *health_slot().lock().expect("obs health poisoned");
    let build = crate::build_info();
    let mut pairs = vec![
        ("status", Value::from("ok")),
        ("version", Value::from(build.version)),
        ("git_hash", Value::from(build.git_hash)),
        ("uptime_seconds", Value::from(crate::uptime_seconds())),
    ];
    match health {
        Some(h) => {
            pairs.push(("store", Value::from("open")));
            pairs.push(("generation", Value::from(h.generation)));
            pairs.push(("journal_lag_bytes", Value::from(h.journal_lag_bytes)));
            pairs.push(("journal_lag_records", Value::from(h.journal_lag_records)));
        }
        None => pairs.push(("store", Value::from("none"))),
    }
    pairs.push(("guard", guard_json()));
    Value::object(pairs)
}

/// Guard/robustness counters for `/healthz`, read from the registry by
/// name: cable-obs deliberately does not depend on cable-guard (the
/// dependency runs the other way), so names are the contract here.
fn guard_json() -> Value {
    let snapshot = registry().snapshot();
    let read = |name: &str| Value::from(snapshot.counter(name).unwrap_or(0));
    Value::object([
        ("checkpoints", read("guard.checkpoints")),
        ("cancelled", read("guard.cancelled")),
        ("budget_exceeded", read("guard.budget_exceeded")),
        ("task_panics", read("par.task_panics")),
    ])
}

/// The `/tracez` body: the most recent `limit` events per lane, plus
/// per-lane drop accounting.
fn tracez_json(limit: usize) -> Value {
    let lanes = recorder::snapshot();
    let lanes_json: Vec<Value> = lanes
        .iter()
        .map(|lane| {
            let start = lane.events.len().saturating_sub(limit);
            let events: Vec<Value> = lane.events[start..]
                .iter()
                .map(|e| {
                    let kind = match e.kind {
                        recorder::EventKind::Begin => "begin",
                        recorder::EventKind::End => "end",
                        recorder::EventKind::Instant => "instant",
                        recorder::EventKind::Counter(_) => "counter",
                    };
                    let mut pairs = vec![
                        ("name", Value::from(e.name)),
                        ("kind", Value::from(kind)),
                        ("ts_ns", Value::from(e.ts_ns)),
                    ];
                    if let recorder::EventKind::Counter(v) = e.kind {
                        pairs.push(("value", Value::from(v)));
                    }
                    Value::object(pairs)
                })
                .collect();
            Value::object([
                ("id", Value::from(lane.id)),
                ("label", Value::from(lane.label.as_str())),
                ("dropped", Value::from(lane.dropped)),
                ("events", Value::Array(events)),
            ])
        })
        .collect();
    Value::object([
        ("recording", Value::from(recorder::recording())),
        ("lanes", Value::Array(lanes_json)),
        ("profile", chrome::profile_json(&chrome::self_time(&lanes))),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read response");
        let (head, body) = response
            .split_once("\r\n\r\n")
            .expect("response has a header/body split");
        (head.to_owned(), body.to_owned())
    }

    #[test]
    fn parse_listen_addr_accepts_bare_ports_and_full_addrs() {
        assert_eq!(
            parse_listen_addr("0").unwrap(),
            SocketAddr::from(([127, 0, 0, 1], 0))
        );
        assert_eq!(
            parse_listen_addr("9090").unwrap(),
            SocketAddr::from(([127, 0, 0, 1], 9090))
        );
        assert_eq!(
            parse_listen_addr("0.0.0.0:7777").unwrap(),
            SocketAddr::from(([0, 0, 0, 0], 7777))
        );
        assert!(parse_listen_addr("not-an-addr").is_err());
    }

    #[test]
    fn server_answers_metrics_healthz_tracez_and_404() {
        registry().counter("obs.test.http_unit").add(3);
        let guard = ObsServer::bind("0").expect("bind ephemeral").spawn();
        let addr = guard.addr();

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(body.contains("obs_test_http_unit 3"), "{body}");

        let (head, body) = get(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        let health = Value::parse(body.trim()).expect("healthz is JSON");
        assert_eq!(health.get("status").and_then(Value::as_str), Some("ok"));
        let counters = health.get("guard").expect("healthz reports guard counters");
        assert!(counters
            .get("checkpoints")
            .and_then(Value::as_u64)
            .is_some());
        assert!(counters
            .get("task_panics")
            .and_then(Value::as_u64)
            .is_some());

        set_health(Some(HealthInfo {
            generation: 4,
            journal_lag_bytes: 128,
            journal_lag_records: 2,
        }));
        let (_, body) = get(addr, "/healthz");
        let health = Value::parse(body.trim()).unwrap();
        assert_eq!(health.get("generation").and_then(Value::as_u64), Some(4));
        assert_eq!(
            health.get("journal_lag_bytes").and_then(Value::as_u64),
            Some(128)
        );
        set_health(None);

        let (head, body) = get(addr, "/tracez");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        let tracez = Value::parse(body.trim()).expect("tracez is JSON");
        assert!(tracez.get("lanes").and_then(Value::as_array).is_some());

        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");

        drop(guard); // must join cleanly
    }

    #[test]
    fn healthz_reports_build_identity_and_uptime() {
        let guard = ObsServer::bind("0").expect("bind ephemeral").spawn();
        let (_, body) = get(guard.addr(), "/healthz");
        let health = Value::parse(body.trim()).expect("healthz is JSON");
        assert_eq!(
            health.get("version").and_then(Value::as_str),
            Some(env!("CARGO_PKG_VERSION"))
        );
        assert!(health.get("git_hash").and_then(Value::as_str).is_some());
        assert!(health
            .get("uptime_seconds")
            .and_then(Value::as_u64)
            .is_some());
        drop(guard);
    }

    #[test]
    fn eventz_and_sloz_serve_json() {
        let guard = ObsServer::bind("0").expect("bind ephemeral").spawn();
        let addr = guard.addr();

        let (head, body) = get(addr, "/eventz");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        let eventz = Value::parse(body.trim()).expect("eventz is JSON");
        assert!(eventz.get("events").and_then(Value::as_array).is_some());
        assert!(eventz.get("total").and_then(Value::as_u64).is_some());

        let (head, body) = get(addr, "/sloz");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        let sloz = Value::parse(body.trim()).expect("sloz is JSON");
        assert!(sloz.get("windows").and_then(Value::as_array).is_some());
        assert!(sloz.get("error_budget").and_then(Value::as_f64).is_some());

        drop(guard);
    }

    #[test]
    fn limit_query_is_validated() {
        assert_eq!(parse_limit(None, 7), Ok(7));
        assert_eq!(parse_limit(Some("limit=3"), 7), Ok(3));
        assert_eq!(parse_limit(Some(""), 7), Ok(7));
        assert!(parse_limit(Some("limit=0"), 7).is_err());
        assert!(parse_limit(Some("limit=-1"), 7).is_err());
        assert!(parse_limit(Some("limit=abc"), 7).is_err());
        assert!(parse_limit(Some("limit="), 7).is_err());
        assert!(parse_limit(Some("limit=999999999"), 7).is_err());
        assert!(parse_limit(Some("frobnicate=1"), 7).is_err());

        let guard = ObsServer::bind("0").expect("bind ephemeral").spawn();
        let addr = guard.addr();
        let (head, _) = get(addr, "/tracez?limit=5");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        let (head, body) = get(addr, "/tracez?limit=garbage");
        assert!(head.starts_with("HTTP/1.1 400"), "{head}");
        assert!(body.contains("limit must be an integer"), "{body}");
        let (head, _) = get(addr, "/eventz?limit=0");
        assert!(head.starts_with("HTTP/1.1 400"), "{head}");
        let (head, _) = get(addr, "/metrics?unknown=1");
        assert!(head.starts_with("HTTP/1.1 400"), "{head}");
        drop(guard);
    }

    #[test]
    fn oversized_headers_get_431_not_an_unbounded_buffer() {
        let guard = ObsServer::bind("0").expect("bind ephemeral").spawn();
        let mut stream = TcpStream::connect(guard.addr()).expect("connect");
        write!(stream, "GET /metrics HTTP/1.1\r\n").unwrap();
        // One absurd header, comfortably past the cap.
        let filler = "x".repeat(2 * MAX_HEADER_BYTES);
        let _ = write!(stream, "X-Filler: {filler}\r\n\r\n");
        // The server stops reading at the cap and closes; unread bytes
        // on its side can turn the close into a reset, so read whatever
        // arrives instead of insisting on a clean EOF.
        let mut bytes = Vec::new();
        let mut buf = [0u8; 1024];
        loop {
            match stream.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => bytes.extend_from_slice(&buf[..n]),
            }
        }
        let response = String::from_utf8_lossy(&bytes);
        assert!(
            response.starts_with("HTTP/1.1 431"),
            "expected 431, got: {}",
            response.lines().next().unwrap_or("")
        );
        assert!(OVERSIZED.get().get() >= 1);
        drop(guard);
    }

    #[test]
    fn requests_under_the_cap_are_unaffected_by_the_limit() {
        let guard = ObsServer::bind("0").expect("bind ephemeral").spawn();
        let mut stream = TcpStream::connect(guard.addr()).expect("connect");
        // Several headers, well under MAX_HEADER_BYTES in total.
        write!(stream, "GET /healthz HTTP/1.1\r\nHost: x\r\n").unwrap();
        for i in 0..8 {
            write!(stream, "X-H{i}: {}\r\n", "v".repeat(64)).unwrap();
        }
        write!(stream, "\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read response");
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        drop(guard);
    }
}
