//! The human-readable stage-cost report.

use crate::registry::Snapshot;
use std::fmt::Write as _;

impl Snapshot {
    /// Renders the snapshot as an aligned text report: histograms (span
    /// timings and size distributions) first, then counters, both sorted
    /// by name. Nanosecond histograms (names ending in `_ns`) are shown
    /// in human time units.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.histograms.values().all(|h| h.count == 0) && self.counters.values().all(|&c| c == 0)
        {
            out.push_str("cable-obs: no activity recorded\n");
            return out;
        }
        let timed: Vec<_> = self
            .histograms
            .iter()
            .filter(|(_, h)| h.count > 0)
            .collect();
        if !timed.is_empty() {
            out.push_str("── spans / distributions ──\n");
            let width = timed.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
            for (name, h) in timed {
                let is_time = name.ends_with("_ns");
                let _ = writeln!(
                    out,
                    "{name:width$}  n={:<8} mean={:>10} p50={:>10} p95={:>10} p99={:>10} max={:>10} total={}",
                    h.count,
                    fmt_value(h.mean() as u64, is_time),
                    fmt_value(h.quantile_estimate(0.5) as u64, is_time),
                    fmt_value(h.quantile_estimate(0.95) as u64, is_time),
                    fmt_value(h.quantile_estimate(0.99) as u64, is_time),
                    fmt_value(h.max, is_time),
                    fmt_value(h.sum, is_time),
                );
            }
        }
        let stages = self.parallel_stages();
        if !stages.is_empty() {
            out.push_str("── parallel stages (busy/wall speedup) ──\n");
            let width = stages.iter().map(|(k, _, _, _)| k.len()).max().unwrap_or(0);
            for (label, busy, wall, speedup) in stages {
                let _ = writeln!(
                    out,
                    "{label:width$}  busy={:>10} wall={:>10} speedup={speedup:.2}×",
                    fmt_value(busy, true),
                    fmt_value(wall, true),
                );
            }
        }
        let counted: Vec<_> = self.counters.iter().filter(|(_, &c)| c > 0).collect();
        if !counted.is_empty() {
            out.push_str("── counters ──\n");
            let width = counted.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
            for (name, &c) in counted {
                let _ = writeln!(out, "{name:width$}  {c}");
            }
        }
        out
    }

    /// The `par.stage.<label>` histogram pairs as
    /// `(label, busy ns, wall ns, busy/wall speedup)`, label-sorted.
    /// Busy sums per-unit run time across workers; wall is the elapsed
    /// time of the whole stage, so the ratio is the stage's effective
    /// parallel speedup (1.0 when sequential).
    pub fn parallel_stages(&self) -> Vec<(String, u64, u64, f64)> {
        self.histograms
            .iter()
            .filter_map(|(name, busy)| {
                let label = name.strip_prefix("par.stage.")?.strip_suffix(".busy_ns")?;
                let wall = self.histograms.get(&format!("par.stage.{label}.wall_ns"))?;
                if busy.count == 0 || wall.sum == 0 {
                    return None;
                }
                let speedup = busy.sum as f64 / wall.sum as f64;
                Some((label.to_owned(), busy.sum, wall.sum, speedup))
            })
            .collect()
    }
}

/// Formats a value, as a duration when it counts nanoseconds.
fn fmt_value(v: u64, is_time: bool) -> String {
    if !is_time {
        return v.to_string();
    }
    match v {
        0..=9_999 => format!("{v}ns"),
        10_000..=9_999_999 => format!("{:.1}µs", v as f64 / 1e3),
        10_000_000..=999_999_999 => format!("{:.1}ms", v as f64 / 1e6),
        _ => format!("{:.2}s", v as f64 / 1e9),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::HistogramSnapshot;
    use crate::metrics::BUCKETS;

    #[test]
    fn empty_snapshot_says_so() {
        let s = Snapshot::default();
        assert!(s.render().contains("no activity"));
    }

    #[test]
    fn report_lists_active_metrics_only() {
        let mut s = Snapshot::default();
        s.counters.insert("a.active".into(), 3);
        s.counters.insert("b.idle".into(), 0);
        let mut h = HistogramSnapshot {
            buckets: [0; BUCKETS],
            count: 2,
            sum: 3_000_000,
            max: 2_900_000,
        };
        h.buckets[21] = 2;
        s.histograms.insert("x.build_ns".into(), h);
        let text = s.render();
        assert!(text.contains("a.active"), "{text}");
        assert!(!text.contains("b.idle"), "{text}");
        assert!(text.contains("x.build_ns"), "{text}");
        assert!(text.contains("ms") || text.contains("µs"), "{text}");
    }

    #[test]
    fn parallel_stages_pair_busy_with_wall() {
        let mut s = Snapshot::default();
        let h = |sum: u64| HistogramSnapshot {
            buckets: [0; BUCKETS],
            count: 1,
            sum,
            max: sum,
        };
        s.histograms
            .insert("par.stage.fca.godin.shard.busy_ns".into(), h(4_000_000));
        s.histograms
            .insert("par.stage.fca.godin.shard.wall_ns".into(), h(1_000_000));
        // An unpaired busy histogram is skipped.
        s.histograms.insert("par.stage.orphan.busy_ns".into(), h(9));
        let stages = s.parallel_stages();
        assert_eq!(stages.len(), 1);
        let (label, busy, wall, speedup) = &stages[0];
        assert_eq!(label, "fca.godin.shard");
        assert_eq!((*busy, *wall), (4_000_000, 1_000_000));
        assert!((speedup - 4.0).abs() < 1e-9);
        let text = s.render();
        assert!(text.contains("parallel stages"), "{text}");
        assert!(text.contains("4.00×"), "{text}");
    }

    #[test]
    fn time_formatting_picks_units() {
        assert_eq!(fmt_value(500, true), "500ns");
        assert_eq!(fmt_value(50_000, true), "50.0µs");
        assert_eq!(fmt_value(50_000_000, true), "50.0ms");
        assert_eq!(fmt_value(2_500_000_000, true), "2.50s");
        assert_eq!(fmt_value(1234, false), "1234");
    }
}
