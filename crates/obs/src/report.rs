//! The human-readable stage-cost report.

use crate::registry::Snapshot;
use std::fmt::Write as _;

impl Snapshot {
    /// Renders the snapshot as an aligned text report: histograms (span
    /// timings and size distributions) first, then counters, both sorted
    /// by name. Nanosecond histograms (names ending in `_ns`) are shown
    /// in human time units.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.histograms.values().all(|h| h.count == 0) && self.counters.values().all(|&c| c == 0)
        {
            out.push_str("cable-obs: no activity recorded\n");
            return out;
        }
        let timed: Vec<_> = self
            .histograms
            .iter()
            .filter(|(_, h)| h.count > 0)
            .collect();
        if !timed.is_empty() {
            out.push_str("── spans / distributions ──\n");
            let width = timed.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
            for (name, h) in timed {
                let is_time = name.ends_with("_ns");
                let _ = writeln!(
                    out,
                    "{name:width$}  n={:<8} mean={:>10} p95≤{:>10} max={:>10} total={}",
                    h.count,
                    fmt_value(h.mean() as u64, is_time),
                    fmt_value(h.quantile_bound(0.95), is_time),
                    fmt_value(h.max, is_time),
                    fmt_value(h.sum, is_time),
                );
            }
        }
        let counted: Vec<_> = self.counters.iter().filter(|(_, &c)| c > 0).collect();
        if !counted.is_empty() {
            out.push_str("── counters ──\n");
            let width = counted.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
            for (name, &c) in counted {
                let _ = writeln!(out, "{name:width$}  {c}");
            }
        }
        out
    }
}

/// Formats a value, as a duration when it counts nanoseconds.
fn fmt_value(v: u64, is_time: bool) -> String {
    if !is_time {
        return v.to_string();
    }
    match v {
        0..=9_999 => format!("{v}ns"),
        10_000..=9_999_999 => format!("{:.1}µs", v as f64 / 1e3),
        10_000_000..=999_999_999 => format!("{:.1}ms", v as f64 / 1e6),
        _ => format!("{:.2}s", v as f64 / 1e9),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::HistogramSnapshot;
    use crate::metrics::BUCKETS;

    #[test]
    fn empty_snapshot_says_so() {
        let s = Snapshot::default();
        assert!(s.render().contains("no activity"));
    }

    #[test]
    fn report_lists_active_metrics_only() {
        let mut s = Snapshot::default();
        s.counters.insert("a.active".into(), 3);
        s.counters.insert("b.idle".into(), 0);
        let mut h = HistogramSnapshot {
            buckets: [0; BUCKETS],
            count: 2,
            sum: 3_000_000,
            max: 2_900_000,
        };
        h.buckets[21] = 2;
        s.histograms.insert("x.build_ns".into(), h);
        let text = s.render();
        assert!(text.contains("a.active"), "{text}");
        assert!(!text.contains("b.idle"), "{text}");
        assert!(text.contains("x.build_ns"), "{text}");
        assert!(text.contains("ms") || text.contains("µs"), "{text}");
    }

    #[test]
    fn time_formatting_picks_units() {
        assert_eq!(fmt_value(500, true), "500ns");
        assert_eq!(fmt_value(50_000, true), "50.0µs");
        assert_eq!(fmt_value(50_000_000, true), "50.0ms");
        assert_eq!(fmt_value(2_500_000_000, true), "2.50s");
        assert_eq!(fmt_value(1234, false), "1234");
    }
}
