//! `cable-obs`: the observability substrate of the Cable workspace.
//!
//! The paper's claims are *cost* claims — Table 2 times Godin's lattice
//! construction, Table 3 counts user decisions, §5.2 claims near-linear
//! scaling — so the reproduction needs to see where time and work go.
//! This crate provides that visibility with **no dependencies beyond
//! `std`** (the workspace builds offline, and the repo policy is
//! hand-rolled serialisation rather than serde):
//!
//! * [`Counter`] — monotonic counters on cheap atomics, safe to leave in
//!   hot paths unconditionally;
//! * [`Histogram`] — log2-bucketed duration/size histograms, also
//!   atomics;
//! * [`Span`] — RAII wall-clock timers with per-thread nesting, recorded
//!   into histograms only while observation is [`enabled`], so release
//!   paths pay one relaxed load when it is off;
//! * [`Registry`] — the process-wide metric table, with a [`Snapshot`]
//!   API, a human-readable [report printer](Snapshot::render), and a
//!   [JSONL sink](JsonlSink) for machine-readable perf records;
//! * [`json`] — a minimal JSON value model with a hand-rolled writer and
//!   parser, used for the perf records and their round-trip tests;
//! * [`recorder`] — the flight recorder: fixed-capacity per-thread ring
//!   buffers of timestamped events (span begin/end, instants, counter
//!   marks), overflow tracked under `obs.recorder.dropped`;
//! * [`chrome`] — Chrome trace-event JSON export of the recorder (one
//!   lane per thread, loadable in Perfetto) and the self-time profile;
//! * [`prom`] + [`http`] — Prometheus text exposition of the registry
//!   and the std-only HTTP server behind `--obs-listen` (`/metrics`,
//!   `/healthz`, `/tracez`, `/eventz`, `/sloz`);
//! * [`scope`] — per-session/per-tenant [`Scope`]s whose writes roll up
//!   into the global registry and export as labelled series;
//! * [`events`] — the wide-event log: one self-describing JSONL record
//!   per unit of work, ring-buffered for `/eventz` and persisted via
//!   `--events-out`;
//! * [`slo`] — rolling latency/error windows over the event stream with
//!   burn-rate computation (`/sloz`);
//! * [`profdiff`] — continuous self-time profiling into the store dir
//!   and the `cable profile diff` regression report.
//!
//! # Usage
//!
//! Instrumented code declares static handles; registration happens on
//! first use and every later hit is an atomic op:
//!
//! ```
//! use cable_obs as obs;
//!
//! static INSERTS: obs::CounterHandle = obs::CounterHandle::new("demo.inserts");
//! static BUILD: obs::HistogramHandle = obs::HistogramHandle::new("demo.build_ns");
//!
//! obs::set_enabled(true);
//! {
//!     let _span = obs::Span::enter("demo.build", &BUILD);
//!     INSERTS.get().incr();
//! }
//! let snap = obs::registry().snapshot();
//! assert_eq!(snap.counter("demo.inserts"), Some(1));
//! assert!(snap.histogram("demo.build_ns").is_some());
//! ```
//!
//! Counters count even while disabled (they are the workload accounting
//! the tables rely on); spans only time while enabled, so the `--stats`
//! flags and `CABLE_OBS=1` gate the `Instant::now` cost.

pub mod chrome;
pub mod context;
pub mod events;
pub mod http;
pub mod json;
mod metrics;
pub mod profdiff;
pub mod prom;
pub mod recorder;
mod registry;
mod report;
pub mod scope;
mod sink;
pub mod slo;
mod span;
pub mod tail;

pub use context::{
    begin_request, AdoptGuard, FinishedTrace, RequestGuard, SpanRec, TraceCtx, TraceHandle,
};
pub use events::WideEvent;
pub use http::{
    set_api_handler, ApiHandler, ApiRequest, ApiResponse, HealthInfo, ObsServer, ServerConfig,
    ServerGuard, RETRY_AFTER_SECONDS,
};
pub use metrics::{Counter, CounterHandle, Histogram, HistogramHandle, HistogramSnapshot, BUCKETS};
pub use registry::{registry, Registry, Snapshot};
pub use scope::{render_scopes, scoped, Scope, ScopeSnapshot, ScopedRegistry};
pub use sink::{parse_jsonl, JsonlSink};
pub use span::{current_depth, current_stack, current_stage, enter_stage, Span, StageGuard};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether span timing is on. Counters are unconditional; only the
/// `Instant::now` cost of spans is gated on this flag.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns span timing on or off.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Enables span timing — and the flight recorder and the wide-event
/// log — if the `CABLE_OBS` environment variable is set to anything
/// other than `0` or the empty string. Returns the resulting state.
pub fn init_from_env() -> bool {
    let _ = process_start(); // pin the uptime epoch as early as possible
    if let Ok(v) = std::env::var("CABLE_OBS") {
        if !v.is_empty() && v != "0" {
            set_enabled(true);
            recorder::set_recording(true);
            events::set_enabled(true);
        }
    }
    // Tail-sampling knobs (see [`tail`]): the slow-tree threshold and
    // the 1-in-N sample for fast requests.
    if let Some(us) = std::env::var("CABLE_TRACE_SLOW_US")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
    {
        tail::set_slow_threshold_us(us);
    }
    if let Some(n) = std::env::var("CABLE_TRACE_SAMPLE")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
    {
        tail::set_sample_every(n);
    }
    if let Some(seed) = std::env::var("CABLE_TRACE_SEED")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
    {
        http::set_trace_seed(seed);
    }
    enabled()
}

fn process_start() -> Instant {
    static START: OnceLock<Instant> = OnceLock::new();
    *START.get_or_init(Instant::now)
}

/// Whole seconds since the process's uptime epoch (pinned by the first
/// call to this, [`init_from_env`], or the HTTP server). Exposed as the
/// `uptime_seconds` gauge on `/metrics` and in `/healthz`.
pub fn uptime_seconds() -> u64 {
    process_start().elapsed().as_secs()
}

/// Build identity baked in at compile time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuildInfo {
    /// The crate version (`CARGO_PKG_VERSION`).
    pub version: &'static str,
    /// The git commit, when the build environment exported
    /// `CABLE_GIT_HASH`; `"unknown"` otherwise.
    pub git_hash: &'static str,
    /// The rustc version, when the build environment exported
    /// `CABLE_RUSTC_VERSION`; `"unknown"` otherwise.
    pub rustc: &'static str,
}

/// The build identity exposed as the `cable_build_info` gauge and in
/// `/healthz`. The git hash and rustc version come from `option_env!`
/// so plain `cargo build` (no exported env) still compiles and reports
/// `"unknown"`.
pub fn build_info() -> BuildInfo {
    BuildInfo {
        version: env!("CARGO_PKG_VERSION"),
        git_hash: option_env!("CABLE_GIT_HASH").unwrap_or("unknown"),
        rustc: option_env!("CABLE_RUSTC_VERSION").unwrap_or("unknown"),
    }
}
