//! Request-scoped trace context: causal ids for recorder events.
//!
//! The flight recorder ([`crate::recorder`]) stamps *when* things
//! happened, one lane per thread. This module stamps *why*: every event
//! recorded while a request is active carries the originating 128-bit
//! trace id, its own span id, and its parent span id — so a request's
//! spans can be reassembled into one causal tree even when the work
//! crossed `cable-par` workers via work stealing.
//!
//! # Model
//!
//! * A [`TraceCtx`] is minted per HTTP request (`obs::http`), seeded
//!   from the drill seed and a request sequence number so ids are
//!   reproducible run to run.
//! * [`begin_request`] installs the context on the handling thread and
//!   opens the **root span**; every `recorder::begin`/`end` on that
//!   thread then maintains a frame stack here, minting deterministic
//!   child span ids and, at span close, appending a [`SpanRec`] to the
//!   request's collector.
//! * Crossing threads is explicit: [`capture`] snapshots the current
//!   context into a cloneable [`TraceHandle`]; the receiving worker
//!   calls [`TraceHandle::adopt`] with a deterministic task tag (e.g.
//!   the chunk index), which swaps the worker's *entire* frame stack in
//!   and restores it on drop — a stolen task can never leak spans into
//!   whatever request the worker was touching before.
//!
//! # Deterministic span ids
//!
//! Child ids are minted structurally, not from a clock or a global
//! counter: `child = mix(parent_span_id, k)` where `k` is the parent's
//! per-frame child sequence number for in-thread children, or the
//! caller-supplied adopt tag for cross-thread tasks (chunk index, spawn
//! index). Chunk boundaries depend only on input length, so the same
//! request produces the same span ids under `CABLE_PAR=1` and
//! `CABLE_PAR=8` — which is what lets the determinism gate cover
//! attribution.

use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Spans kept per request before the collector starts counting drops.
pub const MAX_SPANS_PER_TRACE: usize = 4096;

/// Tag space for `par_map` chunk tasks (`CHUNK_TAG | chunk_index`).
pub const CHUNK_TAG: u64 = 0x8000_0000_0000_0000;
/// Tag space for `scope().spawn` tasks (`SPAWN_TAG | spawn_index`).
pub const SPAWN_TAG: u64 = 0x4000_0000_0000_0000;
/// Tag for the synthetic accept-queue wait span under the request root.
pub const QUEUE_TAG: u64 = 0x2000_0000_0000_0001;

/// SplitMix64 finaliser over `a ⊕ rotated b`: the deterministic child
/// span id mint. Mirrors `cable_util::rng::derive_seed` (this crate is
/// dependency-free, so the mixing is restated here).
#[inline]
pub fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.rotate_left(17) ^ 0x9e37_79b9_7f4a_7c15;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A causal context: 128-bit trace id plus the current span id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    /// High half of the 128-bit trace id.
    pub trace_hi: u64,
    /// Low half of the 128-bit trace id.
    pub trace_lo: u64,
    /// The span this context denotes (the request root at mint time).
    pub span_id: u64,
}

impl TraceCtx {
    /// Mints the context for request number `seq` under `seed`. Pure:
    /// the same (seed, seq) pair always yields the same ids, so drill
    /// traces are addressable run to run.
    pub fn mint(seed: u64, seq: u64) -> TraceCtx {
        let hi = mix(seed, seq);
        let lo = mix(hi, !seq);
        TraceCtx {
            trace_hi: hi,
            trace_lo: lo,
            span_id: mix(lo, seq),
        }
    }

    /// The 128-bit trace id as 32 lowercase hex digits.
    pub fn trace_hex(&self) -> String {
        format!("{:016x}{:016x}", self.trace_hi, self.trace_lo)
    }
}

/// Parses a 32-hex-digit trace id back into its halves.
pub fn parse_trace_hex(s: &str) -> Option<(u64, u64)> {
    if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    let hi = u64::from_str_radix(&s[..16], 16).ok()?;
    let lo = u64::from_str_radix(&s[16..], 16).ok()?;
    Some((hi, lo))
}

/// One closed span, as collected into a request's span tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRec {
    /// Span name (the recorder event name).
    pub name: &'static str,
    /// This span's id.
    pub span: u64,
    /// Parent span id (`0` only for the request root).
    pub parent: u64,
    /// Start, nanoseconds since the recorder epoch.
    pub start_ns: u64,
    /// End, nanoseconds since the recorder epoch.
    pub end_ns: u64,
}

/// The per-request span sink, shared across every thread that worked on
/// the request.
#[derive(Debug)]
struct Collector {
    spans: Mutex<Vec<SpanRec>>,
    dropped: AtomicU64,
}

impl Collector {
    fn new() -> Arc<Collector> {
        Arc::new(Collector {
            spans: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
        })
    }

    fn push(&self, rec: SpanRec) {
        let mut spans = self.spans.lock().expect("trace collector poisoned");
        if spans.len() < MAX_SPANS_PER_TRACE {
            spans.push(rec);
        } else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// One open span on the active context's frame stack.
#[derive(Debug)]
struct Frame {
    name: &'static str,
    span: u64,
    parent: u64,
    start_ns: u64,
    /// Children minted so far under this frame.
    child_seq: u64,
}

/// The thread's active trace state (the whole stack swaps on adopt).
#[derive(Debug)]
struct TraceState {
    trace_hi: u64,
    trace_lo: u64,
    /// Parent id for top-level spans (0 at the request root).
    base_parent: u64,
    /// Id of the first top-level span; later ones derive from it.
    base_key: u64,
    /// Top-level spans opened so far.
    base_seq: u64,
    frames: Vec<Frame>,
    collector: Arc<Collector>,
}

thread_local! {
    static STATE: RefCell<Option<TraceState>> = const { RefCell::new(None) };
}

/// The ids stamped onto one recorder event.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct EventIds {
    pub trace_hi: u64,
    pub trace_lo: u64,
    pub span: u64,
    pub parent: u64,
}

/// Called by `recorder::push` on a `Begin`: mints the child span id,
/// pushes the frame, and returns the ids for the event. Zeroes when no
/// context is active on this thread.
pub(crate) fn on_begin(name: &'static str, ts_ns: u64) -> EventIds {
    STATE.with(|s| {
        let mut slot = s.borrow_mut();
        let Some(state) = slot.as_mut() else {
            return EventIds::default();
        };
        let (span, parent) = match state.frames.last_mut() {
            Some(top) => {
                top.child_seq += 1;
                (mix(top.span, top.child_seq), top.span)
            }
            None => {
                let span = if state.base_seq == 0 {
                    state.base_key
                } else {
                    mix(state.base_key, state.base_seq)
                };
                state.base_seq += 1;
                (span, state.base_parent)
            }
        };
        state.frames.push(Frame {
            name,
            span,
            parent,
            start_ns: ts_ns,
            child_seq: 0,
        });
        EventIds {
            trace_hi: state.trace_hi,
            trace_lo: state.trace_lo,
            span,
            parent,
        }
    })
}

/// Called by `recorder::push` on an `End`: pops the matching frame,
/// appends the closed span to the request collector, and returns the
/// popped span's ids. An `End` whose `Begin` predates the context (or
/// was never recorded) leaves the stack alone and stamps current ids.
pub(crate) fn on_end(name: &'static str, ts_ns: u64) -> EventIds {
    STATE.with(|s| {
        let mut slot = s.borrow_mut();
        let Some(state) = slot.as_mut() else {
            return EventIds::default();
        };
        if state.frames.last().map(|f| f.name) == Some(name) {
            let frame = state.frames.pop().expect("just matched");
            state.collector.push(SpanRec {
                name: frame.name,
                span: frame.span,
                parent: frame.parent,
                start_ns: frame.start_ns,
                end_ns: ts_ns,
            });
            EventIds {
                trace_hi: state.trace_hi,
                trace_lo: state.trace_lo,
                span: frame.span,
                parent: frame.parent,
            }
        } else {
            current_ids(state)
        }
    })
}

/// Called by `recorder::push` on `Instant`/`Counter` events: stamps the
/// innermost open span's ids without touching the stack.
pub(crate) fn on_mark() -> EventIds {
    STATE.with(|s| match s.borrow().as_ref() {
        Some(state) => current_ids(state),
        None => EventIds::default(),
    })
}

fn current_ids(state: &TraceState) -> EventIds {
    let (span, parent) = match state.frames.last() {
        Some(top) => (top.span, top.parent),
        None => (0, state.base_parent),
    };
    EventIds {
        trace_hi: state.trace_hi,
        trace_lo: state.trace_lo,
        span,
        parent,
    }
}

/// The trace id active on this thread, if a request context is
/// installed (wide events use this to tag their records).
pub fn active() -> Option<TraceCtx> {
    STATE.with(|s| {
        s.borrow().as_ref().map(|state| TraceCtx {
            trace_hi: state.trace_hi,
            trace_lo: state.trace_lo,
            span_id: state.frames.last().map(|f| f.span).unwrap_or(0),
        })
    })
}

/// Everything collected for one finished request.
#[derive(Debug, Clone)]
pub struct FinishedTrace {
    /// The request's minted context (root span id included).
    pub ctx: TraceCtx,
    /// Every closed span, in close order, root last.
    pub spans: Vec<SpanRec>,
    /// Spans lost to the per-request cap.
    pub dropped: u64,
}

impl FinishedTrace {
    /// Wall time of the request root span (including the synthetic
    /// accept-queue wait), microseconds. Zero when nothing was
    /// collected.
    pub fn wall_us(&self) -> u64 {
        self.spans
            .iter()
            .find(|s| s.span == self.ctx.span_id)
            .map(|s| s.end_ns.saturating_sub(s.start_ns) / 1_000)
            .unwrap_or(0)
    }
}

/// Installs `ctx` on this thread and opens the request root span; the
/// returned guard's [`RequestGuard::finish`] closes the root and yields
/// the collected tree. `queue_wait_ns` (time the connection sat in the
/// bounded accept queue) widens the root span backwards and lands as a
/// synthetic `wait.queue` child, so queueing is part of request wall
/// time without the recorder having to pair events across lanes.
///
/// While the flight recorder is off this is a no-op guard.
pub fn begin_request(ctx: TraceCtx, name: &'static str, queue_wait_ns: u64) -> RequestGuard {
    if !crate::recorder::recording() {
        return RequestGuard {
            ctx,
            name,
            queue_wait_ns,
            active: false,
            _not_send: PhantomData,
        };
    }
    STATE.with(|s| {
        *s.borrow_mut() = Some(TraceState {
            trace_hi: ctx.trace_hi,
            trace_lo: ctx.trace_lo,
            base_parent: 0,
            base_key: ctx.span_id,
            base_seq: 0,
            frames: Vec::new(),
            collector: Collector::new(),
        });
    });
    crate::recorder::begin(name);
    RequestGuard {
        ctx,
        name,
        queue_wait_ns,
        active: true,
        _not_send: PhantomData,
    }
}

/// Closes the request root span on drop; [`RequestGuard::finish`]
/// additionally returns the collected span tree. `!Send`: the guard
/// owns this thread's context slot.
pub struct RequestGuard {
    ctx: TraceCtx,
    name: &'static str,
    queue_wait_ns: u64,
    active: bool,
    _not_send: PhantomData<*const ()>,
}

impl RequestGuard {
    /// Closes the root span, uninstalls the context, and returns the
    /// request's span tree (empty when the recorder was off).
    pub fn finish(mut self) -> FinishedTrace {
        self.close()
    }

    fn close(&mut self) -> FinishedTrace {
        if !self.active {
            return FinishedTrace {
                ctx: self.ctx,
                spans: Vec::new(),
                dropped: 0,
            };
        }
        self.active = false;
        crate::recorder::end(self.name);
        let state = STATE.with(|s| s.borrow_mut().take());
        let Some(state) = state else {
            return FinishedTrace {
                ctx: self.ctx,
                spans: Vec::new(),
                dropped: 0,
            };
        };
        let mut spans = state
            .collector
            .spans
            .lock()
            .map(|s| s.clone())
            .unwrap_or_default();
        let dropped = state.collector.dropped.load(Ordering::Relaxed);
        if self.queue_wait_ns > 0 {
            if let Some(root) = spans.iter_mut().find(|s| s.span == self.ctx.span_id) {
                let handled_start = root.start_ns;
                root.start_ns = handled_start.saturating_sub(self.queue_wait_ns);
                let start = root.start_ns;
                spans.push(SpanRec {
                    name: "wait.queue",
                    span: mix(self.ctx.span_id, QUEUE_TAG),
                    parent: self.ctx.span_id,
                    start_ns: start,
                    end_ns: handled_start,
                });
            }
        }
        FinishedTrace {
            ctx: self.ctx,
            spans,
            dropped,
        }
    }
}

impl Drop for RequestGuard {
    fn drop(&mut self) {
        if self.active {
            let _ = self.close();
        }
    }
}

/// A cloneable snapshot of the current context, for handing work to
/// another thread. Captures the innermost open span as the parent the
/// adopted task's spans will attach to.
#[derive(Debug, Clone)]
pub struct TraceHandle {
    trace_hi: u64,
    trace_lo: u64,
    parent_span: u64,
    collector: Arc<Collector>,
}

/// Snapshots the context active on this thread, or `None` outside a
/// request. Call on the *submitting* thread, before moving the task.
pub fn capture() -> Option<TraceHandle> {
    STATE.with(|s| {
        s.borrow().as_ref().map(|state| TraceHandle {
            trace_hi: state.trace_hi,
            trace_lo: state.trace_lo,
            parent_span: state
                .frames
                .last()
                .map(|f| f.span)
                .unwrap_or(state.base_key),
            collector: state.collector.clone(),
        })
    })
}

impl TraceHandle {
    /// Installs this context on the current thread for the guard's
    /// lifetime, swapping out (and on drop restoring) whatever context
    /// the thread had — a worker mid-steal can never interleave two
    /// requests' frames. `tag` must be deterministic for the task
    /// (chunk index, spawn index): the task's top-level spans get ids
    /// derived from `mix(parent_span, tag)` regardless of which worker
    /// runs it.
    pub fn adopt(&self, tag: u64) -> AdoptGuard {
        let saved = STATE.with(|s| {
            s.borrow_mut().replace(TraceState {
                trace_hi: self.trace_hi,
                trace_lo: self.trace_lo,
                base_parent: self.parent_span,
                base_key: mix(self.parent_span, tag),
                base_seq: 0,
                frames: Vec::new(),
                collector: self.collector.clone(),
            })
        });
        AdoptGuard {
            saved,
            _not_send: PhantomData,
        }
    }
}

/// Restores the thread's previous context on drop.
pub struct AdoptGuard {
    saved: Option<TraceState>,
    _not_send: PhantomData<*const ()>,
}

impl Drop for AdoptGuard {
    fn drop(&mut self) {
        let saved = self.saved.take();
        STATE.with(|s| *s.borrow_mut() = saved);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives the frame hooks directly (no recorder), so these tests
    /// cannot race other tests over the global recording flag.
    fn install(ctx: TraceCtx) -> Arc<Collector> {
        let collector = Collector::new();
        STATE.with(|s| {
            *s.borrow_mut() = Some(TraceState {
                trace_hi: ctx.trace_hi,
                trace_lo: ctx.trace_lo,
                base_parent: 0,
                base_key: ctx.span_id,
                base_seq: 0,
                frames: Vec::new(),
                collector: collector.clone(),
            });
        });
        collector
    }

    fn uninstall() {
        STATE.with(|s| *s.borrow_mut() = None);
    }

    #[test]
    fn mint_is_deterministic_and_distinct() {
        let a = TraceCtx::mint(42, 7);
        let b = TraceCtx::mint(42, 7);
        let c = TraceCtx::mint(42, 8);
        assert_eq!(a, b);
        assert_ne!(a.trace_hex(), c.trace_hex());
        assert_eq!(a.trace_hex().len(), 32);
        assert_eq!(
            parse_trace_hex(&a.trace_hex()),
            Some((a.trace_hi, a.trace_lo))
        );
        assert_eq!(parse_trace_hex("xyz"), None);
    }

    #[test]
    fn frames_chain_parent_ids_and_collect_on_close() {
        let ctx = TraceCtx::mint(1, 1);
        let collector = install(ctx);
        let root = on_begin("req", 10);
        assert_eq!(root.span, ctx.span_id);
        assert_eq!(root.parent, 0);
        let child = on_begin("work", 20);
        assert_eq!(child.parent, ctx.span_id);
        assert_eq!(child.span, mix(ctx.span_id, 1));
        let grand = on_begin("inner", 30);
        assert_eq!(grand.parent, child.span);
        on_end("inner", 40);
        on_end("work", 50);
        on_end("req", 60);
        uninstall();
        let spans = collector.spans.lock().unwrap();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].name, "inner");
        assert_eq!(spans[2].name, "req");
        assert_eq!(spans[2].parent, 0);
        assert!(spans.iter().all(|s| s.end_ns >= s.start_ns));
    }

    #[test]
    fn sibling_spans_get_distinct_ids() {
        let ctx = TraceCtx::mint(2, 2);
        let _collector = install(ctx);
        on_begin("req", 0);
        let a = on_begin("step", 1);
        on_end("step", 2);
        let b = on_begin("step", 3);
        on_end("step", 4);
        uninstall();
        assert_ne!(a.span, b.span, "siblings share a name, not an id");
        assert_eq!(a.parent, b.parent);
    }

    #[test]
    fn unmatched_end_leaves_the_stack_alone() {
        let ctx = TraceCtx::mint(3, 3);
        let collector = install(ctx);
        on_begin("req", 0);
        let ids = on_end("never-begun", 5);
        assert_eq!(ids.span, ctx.span_id, "stamps the open frame");
        assert_eq!(collector.spans.lock().unwrap().len(), 0);
        let ids = on_mark();
        assert_eq!(ids.span, ctx.span_id);
        uninstall();
    }

    #[test]
    fn adopt_swaps_and_restores_the_whole_stack() {
        let ctx = TraceCtx::mint(4, 4);
        let _collector = install(ctx);
        on_begin("req", 0);
        let handle = capture().expect("context active");
        {
            let _adopted = handle.adopt(CHUNK_TAG);
            // The adopted state starts empty: a begin here is a
            // top-level span parented to the captured span.
            let ids = on_begin("chunk", 10);
            assert_eq!(ids.parent, ctx.span_id);
            assert_eq!(ids.span, mix(ctx.span_id, CHUNK_TAG));
            on_end("chunk", 20);
        }
        // Restored: the original frame is back on top.
        let ids = on_mark();
        assert_eq!(ids.span, ctx.span_id);
        uninstall();
    }

    #[test]
    fn adopt_tags_make_task_ids_independent_of_execution_order() {
        let ctx = TraceCtx::mint(5, 5);
        let _collector = install(ctx);
        on_begin("req", 0);
        let handle = capture().unwrap();
        uninstall();

        let run = |tags: &[u64]| -> Vec<u64> {
            tags.iter()
                .map(|&t| {
                    let _g = handle.adopt(CHUNK_TAG | t);
                    let ids = on_begin("chunk", 0);
                    on_end("chunk", 1);
                    ids.span
                })
                .collect()
        };
        let forward = run(&[0, 1, 2]);
        let mut reversed = run(&[2, 1, 0]);
        reversed.reverse();
        assert_eq!(forward, reversed, "ids depend on the tag, not the order");
    }

    #[test]
    fn capture_without_context_is_none() {
        uninstall();
        assert!(capture().is_none());
        assert!(active().is_none());
        let ids = on_begin("orphan", 0);
        assert_eq!(ids.span, 0);
        assert_eq!(ids.trace_lo, 0);
        let ids = on_end("orphan", 1);
        assert_eq!(ids.span, 0);
    }

    #[test]
    fn collector_caps_and_counts_drops() {
        let ctx = TraceCtx::mint(6, 6);
        let collector = install(ctx);
        on_begin("req", 0);
        for _ in 0..MAX_SPANS_PER_TRACE + 10 {
            on_begin("s", 1);
            on_end("s", 2);
        }
        uninstall();
        assert_eq!(collector.spans.lock().unwrap().len(), MAX_SPANS_PER_TRACE);
        assert_eq!(collector.dropped.load(Ordering::Relaxed), 10);
    }
}
