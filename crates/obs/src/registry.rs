//! The process-wide metric registry and its snapshots.

use crate::json::Value;
use crate::metrics::{Counter, Histogram, HistogramSnapshot};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

/// The global, thread-safe table of named metrics.
///
/// Registration takes a mutex; the returned `Arc` is then used lock-free,
/// so the hot path never touches the registry lock (static handles cache
/// the `Arc` — see [`crate::CounterHandle`]).
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

/// The process-wide registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

impl Registry {
    /// The counter with this name, created on first request.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("obs registry poisoned");
        map.entry(name.to_owned()).or_default().clone()
    }

    /// The histogram with this name, created on first request.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().expect("obs registry poisoned");
        map.entry(name.to_owned()).or_default().clone()
    }

    /// A point-in-time copy of every metric. Deterministic (sorted by
    /// name); exact once recording threads have joined.
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .counters
            .lock()
            .expect("obs registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("obs registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        Snapshot {
            counters,
            histograms,
        }
    }

    /// Resets every metric to zero. Registered names (and cached handles)
    /// stay valid.
    pub fn reset(&self) {
        for c in self
            .counters
            .lock()
            .expect("obs registry poisoned")
            .values()
        {
            c.reset();
        }
        for h in self
            .histograms
            .lock()
            .expect("obs registry poisoned")
            .values()
        {
            h.reset();
        }
    }
}

/// A point-in-time copy of the registry.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Snapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// The value of a counter, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// The state of a histogram, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Counter-wise difference against an earlier snapshot: what happened
    /// between `earlier` and `self`. Histograms are carried from `self`
    /// unchanged (bucket subtraction is rarely meaningful); counters
    /// saturate at zero.
    pub fn delta_since(&self, earlier: &Snapshot) -> Snapshot {
        let counters = self
            .counters
            .iter()
            .map(|(k, &v)| {
                let before = earlier.counter(k).unwrap_or(0);
                (k.clone(), v.saturating_sub(before))
            })
            .collect();
        Snapshot {
            counters,
            histograms: self.histograms.clone(),
        }
    }

    /// The snapshot as a JSON value (the JSONL record shape):
    /// `{"counters": {...}, "histograms": {name: {count, sum, max,
    /// buckets: [[bound, n], ...]}}}`.
    pub fn to_json(&self) -> Value {
        let counters = Value::Object(
            self.counters
                .iter()
                .map(|(k, &v)| (k.clone(), Value::from(v)))
                .collect(),
        );
        let histograms = Value::Object(
            self.histograms
                .iter()
                .map(|(k, h)| {
                    let buckets = Value::Array(
                        h.nonzero_buckets()
                            .into_iter()
                            .map(|(bound, n)| {
                                Value::Array(vec![Value::from(bound), Value::from(n)])
                            })
                            .collect(),
                    );
                    let obj = Value::Object(
                        [
                            ("count".to_owned(), Value::from(h.count)),
                            ("sum".to_owned(), Value::from(h.sum)),
                            ("max".to_owned(), Value::from(h.max)),
                            ("buckets".to_owned(), buckets),
                        ]
                        .into_iter()
                        .collect(),
                    );
                    (k.clone(), obj)
                })
                .collect(),
        );
        Value::Object(
            [
                ("counters".to_owned(), counters),
                ("histograms".to_owned(), histograms),
            ]
            .into_iter()
            .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent() {
        let r = Registry::default();
        let a = r.counter("x");
        let b = r.counter("x");
        a.add(2);
        b.add(3);
        assert_eq!(r.snapshot().counter("x"), Some(5));
    }

    #[test]
    fn delta_since_subtracts_counters() {
        let r = Registry::default();
        let c = r.counter("ops");
        c.add(10);
        let before = r.snapshot();
        c.add(7);
        let delta = r.snapshot().delta_since(&before);
        assert_eq!(delta.counter("ops"), Some(7));
    }

    #[test]
    fn reset_zeroes_but_keeps_names() {
        let r = Registry::default();
        let c = r.counter("n");
        c.add(4);
        r.histogram("h").record(9);
        r.reset();
        let s = r.snapshot();
        assert_eq!(s.counter("n"), Some(0));
        assert_eq!(s.histogram("h").unwrap().count, 0);
        // The old Arc still feeds the same registered metric.
        c.incr();
        assert_eq!(r.snapshot().counter("n"), Some(1));
    }
}
