//! Continuous profiling and profile diffing.
//!
//! The flight recorder already yields a self-time profile
//! ([`crate::chrome::self_time`]); this module makes that profile a
//! *time series* and a *comparison tool*:
//!
//! * [`ContinuousProfiler`] — a background thread that periodically
//!   snapshots the recorder, folds it into a self-time profile, and
//!   appends one `profile_snapshot` JSONL record per tick into the
//!   store directory (`profiles/profile-<pid>.jsonl`). Low overhead by
//!   construction: each tick copies the lanes' rings briefly (the same
//!   cost `/tracez` pays) and the recorder keeps running;
//! * [`diff`] / `cable profile diff A B` — loads the latest profile
//!   from each of two JSONL files (a `profile_snapshot` record or the
//!   `profile` field of a `reproduce` run's `pipeline_snapshot`) and
//!   prints per-function self-time regressions, sorted by the absolute
//!   self-time delta (ties by name, so the report is stable) — the tool
//!   the ROADMAP's lattice hot-path attack will be driven by.

use crate::chrome;
use crate::json::Value;
use crate::recorder;
use crate::sink::{parse_jsonl, JsonlSink};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A profile row with an owned name (rows parsed back from JSON, where
/// `&'static str` is unavailable).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OwnedProfileRow {
    /// Span name.
    pub name: String,
    /// Completed occurrences.
    pub count: u64,
    /// Total begin→end time.
    pub inclusive_ns: u64,
    /// Self time (inclusive minus direct children).
    pub exclusive_ns: u64,
}

/// Builds a `profile_snapshot` record from the recorder's current state.
pub fn snapshot_record(seq: u64) -> Value {
    let lanes = recorder::snapshot();
    Value::object([
        ("record", Value::from("profile_snapshot")),
        ("seq", Value::from(seq)),
        ("uptime_ns", Value::from(recorder::now_ns())),
        ("profile", chrome::profile_json(&chrome::self_time(&lanes))),
    ])
}

/// Parses a JSON `profile` array (the shape [`crate::chrome::profile_json`]
/// emits) into owned rows. Malformed entries are skipped.
pub fn rows_from_json(profile: &Value) -> Vec<OwnedProfileRow> {
    profile
        .as_array()
        .unwrap_or(&[])
        .iter()
        .filter_map(|row| {
            Some(OwnedProfileRow {
                name: row.get("name")?.as_str()?.to_owned(),
                count: row.get("count")?.as_u64()?,
                inclusive_ns: row.get("inclusive_ns")?.as_u64()?,
                exclusive_ns: row.get("exclusive_ns")?.as_u64()?,
            })
        })
        .collect()
}

/// Loads the most recent profile from a JSONL file: the last record
/// carrying a `profile` array — a [`ContinuousProfiler`]
/// `profile_snapshot` or a `reproduce --json-out` `pipeline_snapshot`.
///
/// # Errors
///
/// I/O or parse failures, or a file with no profile-carrying record.
pub fn load_rows(path: &Path) -> Result<Vec<OwnedProfileRow>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let records =
        parse_jsonl(&text).map_err(|e| format!("cannot parse {}: {e}", path.display()))?;
    records
        .iter()
        .rev()
        .find_map(|r| r.get("profile"))
        .map(rows_from_json)
        .ok_or_else(|| format!("{} holds no record with a profile field", path.display()))
}

/// One function's before/after self-time comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffRow {
    /// Span name.
    pub name: String,
    /// Self time in the baseline, in nanoseconds (0 if absent).
    pub before_ns: u64,
    /// Self time in the comparison, in nanoseconds (0 if absent).
    pub after_ns: u64,
    /// Occurrences in the baseline.
    pub before_count: u64,
    /// Occurrences in the comparison.
    pub after_count: u64,
}

impl DiffRow {
    /// `after − before` self time (positive = regression).
    pub fn delta_ns(&self) -> i128 {
        self.after_ns as i128 - self.before_ns as i128
    }
}

/// Joins two profiles by span name into comparison rows, sorted by
/// absolute self-time delta descending (ties by name — a stable order
/// for any input order).
pub fn diff(before: &[OwnedProfileRow], after: &[OwnedProfileRow]) -> Vec<DiffRow> {
    let mut names: Vec<&str> = before
        .iter()
        .chain(after)
        .map(|r| r.name.as_str())
        .collect();
    names.sort_unstable();
    names.dedup();
    let find = |rows: &[OwnedProfileRow], name: &str| -> (u64, u64) {
        rows.iter()
            .find(|r| r.name == name)
            .map_or((0, 0), |r| (r.exclusive_ns, r.count))
    };
    let mut out: Vec<DiffRow> = names
        .into_iter()
        .map(|name| {
            let (before_ns, before_count) = find(before, name);
            let (after_ns, after_count) = find(after, name);
            DiffRow {
                name: name.to_owned(),
                before_ns,
                after_ns,
                before_count,
                after_count,
            }
        })
        .collect();
    out.sort_by(|a, b| {
        b.delta_ns()
            .abs()
            .cmp(&a.delta_ns().abs())
            .then_with(|| a.name.cmp(&b.name))
    });
    out
}

/// Renders the diff as an aligned table: self-time before, after, the
/// signed delta, and the occurrence counts.
pub fn render_diff(rows: &[DiffRow]) -> String {
    use std::fmt::Write as _;
    if rows.is_empty() {
        return "profile diff: no spans in either profile\n".to_owned();
    }
    let width = rows.iter().map(|r| r.name.len()).max().unwrap_or(4).max(4);
    let mut out = format!(
        "{:width$}  {:>12}  {:>12}  {:>13}  {:>11}\n",
        "span", "self before", "self after", "delta", "count"
    );
    for r in rows {
        let delta = r.delta_ns();
        let _ = writeln!(
            out,
            "{:width$}  {:>12}  {:>12}  {:>+12.1}µs  {:>5}→{:<5}",
            r.name,
            fmt_ns(r.before_ns),
            fmt_ns(r.after_ns),
            delta as f64 / 1e3,
            r.before_count,
            r.after_count,
        );
    }
    out
}

fn fmt_ns(v: u64) -> String {
    match v {
        0..=9_999 => format!("{v}ns"),
        10_000..=9_999_999 => format!("{:.1}µs", v as f64 / 1e3),
        10_000_000..=999_999_999 => format!("{:.1}ms", v as f64 / 1e6),
        _ => format!("{:.2}s", v as f64 / 1e9),
    }
}

/// The background continuous profiler: one `profile_snapshot` record
/// per tick, appended (and flushed) through a [`JsonlSink`]. Stops and
/// joins on drop, writing one final snapshot so short-lived processes
/// still leave a profile behind.
#[derive(Debug)]
pub struct ContinuousProfiler {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl ContinuousProfiler {
    /// Starts profiling into `path` (appending), one snapshot every
    /// `interval`.
    ///
    /// # Errors
    ///
    /// Fails if the sink file cannot be opened.
    pub fn spawn(path: &Path, interval: Duration) -> std::io::Result<ContinuousProfiler> {
        let sink = JsonlSink::append(path)?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("cable-obs-profiler".into())
            .spawn(move || {
                let mut seq = 0u64;
                // Poll the stop flag between short sleeps so drop never
                // waits a whole interval to join.
                let slice = Duration::from_millis(25).min(interval);
                let mut elapsed = Duration::ZERO;
                loop {
                    if thread_stop.load(Ordering::Acquire) {
                        break;
                    }
                    std::thread::sleep(slice);
                    elapsed += slice;
                    if elapsed < interval {
                        continue;
                    }
                    elapsed = Duration::ZERO;
                    seq += 1;
                    let _ = sink.write(&snapshot_record(seq));
                    let _ = sink.flush();
                }
                // A final snapshot on the way out: short-lived sessions
                // get at least one record.
                seq += 1;
                let _ = sink.write(&snapshot_record(seq));
                let _ = sink.flush();
            })?;
        Ok(ContinuousProfiler {
            stop,
            handle: Some(handle),
        })
    }
}

impl Drop for ContinuousProfiler {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(name: &str, exclusive_ns: u64, count: u64) -> OwnedProfileRow {
        OwnedProfileRow {
            name: name.to_owned(),
            count,
            inclusive_ns: exclusive_ns,
            exclusive_ns,
        }
    }

    #[test]
    fn diff_joins_by_name_and_sorts_by_absolute_delta() {
        let before = vec![row("a", 1000, 2), row("b", 5000, 1), row("gone", 100, 1)];
        let after = vec![row("a", 9000, 2), row("b", 4000, 1), row("new", 300, 1)];
        let rows = diff(&before, &after);
        let names: Vec<&str> = rows.iter().map(|r| r.name.as_str()).collect();
        // |+8000| > |−1000| > |+300| > |−100|.
        assert_eq!(names, vec!["a", "b", "new", "gone"]);
        assert_eq!(rows[0].delta_ns(), 8000);
        assert_eq!(rows[1].delta_ns(), -1000);
        // Absent spans read as zero on their missing side.
        assert_eq!(rows[2].before_ns, 0);
        assert_eq!(rows[3].after_ns, 0);
        // The order is stable under input permutation.
        let mut before_shuffled = before.clone();
        before_shuffled.reverse();
        let mut after_shuffled = after.clone();
        after_shuffled.reverse();
        assert_eq!(rows, diff(&before_shuffled, &after_shuffled));
    }

    #[test]
    fn diff_ties_break_by_name() {
        let before = vec![row("zeta", 100, 1), row("alpha", 100, 1)];
        let after = vec![row("zeta", 200, 1), row("alpha", 200, 1)];
        let rows = diff(&before, &after);
        assert_eq!(rows[0].name, "alpha");
        assert_eq!(rows[1].name, "zeta");
    }

    #[test]
    fn render_diff_is_nonempty_and_signed() {
        let rows = diff(&[row("x", 1000, 1)], &[row("x", 3000, 1)]);
        let text = render_diff(&rows);
        assert!(text.contains('x'), "{text}");
        assert!(text.contains('+'), "positive delta is signed: {text}");
        assert!(render_diff(&[]).contains("no spans"));
    }

    #[test]
    fn rows_round_trip_through_profile_json() {
        let json = Value::Array(vec![Value::object([
            ("name", Value::from("fca.godin")),
            ("count", Value::from(3u64)),
            ("inclusive_ns", Value::from(900u64)),
            ("exclusive_ns", Value::from(600u64)),
        ])]);
        let rows = rows_from_json(&json);
        assert_eq!(
            rows,
            vec![OwnedProfileRow {
                name: "fca.godin".to_owned(),
                count: 3,
                inclusive_ns: 900,
                exclusive_ns: 600,
            }]
        );
        // Malformed entries are skipped, not fatal.
        let mixed = Value::Array(vec![Value::from("junk")]);
        assert!(rows_from_json(&mixed).is_empty());
    }

    #[test]
    fn load_rows_finds_the_last_profile_record() {
        let path = std::env::temp_dir().join(format!(
            "cable-obs-profdiff-load-{}.jsonl",
            std::process::id()
        ));
        let sink = JsonlSink::create(&path).unwrap();
        sink.write(&Value::object([("record", Value::from("other"))]))
            .unwrap();
        sink.write(&Value::object([
            ("record", Value::from("profile_snapshot")),
            ("seq", Value::from(1u64)),
            (
                "profile",
                Value::Array(vec![Value::object([
                    ("name", Value::from("old")),
                    ("count", Value::from(1u64)),
                    ("inclusive_ns", Value::from(10u64)),
                    ("exclusive_ns", Value::from(10u64)),
                ])]),
            ),
        ]))
        .unwrap();
        sink.write(&Value::object([
            ("record", Value::from("profile_snapshot")),
            ("seq", Value::from(2u64)),
            (
                "profile",
                Value::Array(vec![Value::object([
                    ("name", Value::from("new")),
                    ("count", Value::from(1u64)),
                    ("inclusive_ns", Value::from(20u64)),
                    ("exclusive_ns", Value::from(20u64)),
                ])]),
            ),
        ]))
        .unwrap();
        drop(sink);
        let rows = load_rows(&path).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].name, "new", "latest record wins");
        let _ = std::fs::remove_file(&path);
        assert!(load_rows(Path::new("/nonexistent/p.jsonl")).is_err());
    }

    #[test]
    fn continuous_profiler_writes_parseable_snapshots() {
        let path = std::env::temp_dir().join(format!(
            "cable-obs-profdiff-cont-{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        {
            let _profiler = ContinuousProfiler::spawn(&path, Duration::from_millis(10)).unwrap();
            std::thread::sleep(Duration::from_millis(60));
        } // drop stops, joins, and writes the final snapshot
        let text = std::fs::read_to_string(&path).unwrap();
        let records = parse_jsonl(&text).unwrap();
        assert!(!records.is_empty());
        for r in &records {
            assert_eq!(
                r.get("record").and_then(Value::as_str),
                Some("profile_snapshot")
            );
            assert!(r.get("profile").and_then(Value::as_array).is_some());
        }
        let _ = std::fs::remove_file(&path);
    }
}
