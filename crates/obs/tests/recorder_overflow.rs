//! Overflow semantics of the flight recorder under concurrency: tiny
//! rings filled from many threads keep the newest events per lane,
//! account for every drop exactly, and still export well-formed Chrome
//! trace JSON.

use cable_obs::json::Value;
use cable_obs::recorder::{self, EventKind};
use cable_obs::{chrome, registry};
use std::sync::Mutex;
use std::thread;

/// Serialises the tests: recording and ring capacity are process-global.
static RECORDER_LOCK: Mutex<()> = Mutex::new(());

const RING: usize = 4;

fn overflow_lanes(prefix: &str) -> Vec<recorder::LaneSnapshot> {
    let mut lanes: Vec<_> = recorder::snapshot()
        .into_iter()
        .filter(|l| l.label.starts_with(prefix))
        .collect();
    lanes.sort_by(|a, b| a.label.cmp(&b.label));
    lanes
}

#[test]
fn eight_threads_overflow_tiny_rings_with_exact_accounting() {
    let _guard = RECORDER_LOCK.lock().unwrap();
    recorder::set_capacity(RING);
    recorder::set_recording(true);

    const THREADS: usize = 8;
    const EVENTS: u64 = 20;
    let dropped_before = registry()
        .snapshot()
        .counter("obs.recorder.dropped")
        .unwrap_or(0);

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            thread::spawn(move || {
                recorder::set_lane_label(&format!("overflow-acct-{t}"));
                for j in 0..EVENTS {
                    recorder::counter_mark("overflow.mark", j);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    recorder::set_recording(false);

    let lanes = overflow_lanes("overflow-acct-");
    assert_eq!(lanes.len(), THREADS, "one lane per thread");
    for lane in &lanes {
        // Newest wins: exactly the last RING marks survive, in order.
        let values: Vec<u64> = lane
            .events
            .iter()
            .map(|e| match e.kind {
                EventKind::Counter(v) => v,
                other => panic!("unexpected event kind {other:?}"),
            })
            .collect();
        let expected: Vec<u64> = (EVENTS - RING as u64..EVENTS).collect();
        assert_eq!(values, expected, "lane {}", lane.label);
        assert_eq!(
            lane.dropped,
            EVENTS - RING as u64,
            "lane {} drop accounting",
            lane.label
        );
        // Single-writer lanes stamp non-decreasing timestamps.
        assert!(
            lane.events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns),
            "lane {} timestamps ordered",
            lane.label
        );
    }
    // The global counter saw every per-lane drop (other tests in this
    // process may add more, never less).
    let dropped_after = registry()
        .snapshot()
        .counter("obs.recorder.dropped")
        .unwrap_or(0);
    let per_lane_total: u64 = lanes.iter().map(|l| l.dropped).sum();
    assert_eq!(per_lane_total, THREADS as u64 * (EVENTS - RING as u64));
    assert!(
        dropped_after - dropped_before >= per_lane_total,
        "global obs.recorder.dropped covers the per-lane drops: \
         {dropped_before} -> {dropped_after}, lanes lost {per_lane_total}"
    );
}

#[test]
fn chrome_export_of_partially_overwritten_ring_is_well_formed() {
    let _guard = RECORDER_LOCK.lock().unwrap();
    recorder::set_capacity(RING);
    recorder::set_recording(true);

    thread::spawn(|| {
        recorder::set_lane_label("overflow-chrome");
        // Nested spans pushed past capacity: the surviving window starts
        // with orphan End events whose Begins were overwritten.
        for _ in 0..3 {
            recorder::begin("outer");
            recorder::begin("inner");
            recorder::end("inner");
            recorder::end("outer");
        }
        recorder::begin("tail"); // left open at snapshot time
    })
    .join()
    .unwrap();
    recorder::set_recording(false);

    let lanes = overflow_lanes("overflow-chrome");
    assert_eq!(lanes.len(), 1);
    assert!(lanes[0].dropped > 0, "the ring did overflow");

    let trace = chrome::chrome_trace(&lanes);
    let text = trace.to_string();
    let parsed = Value::parse(&text).expect("export parses as JSON");
    let events = parsed
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents array");

    // B/E events are matched per tid and in non-decreasing ts order.
    let mut depth = 0i64;
    let mut last_ts = f64::MIN;
    for e in events {
        let ph = e.get("ph").and_then(Value::as_str).unwrap();
        if ph == "M" {
            continue;
        }
        let ts = e.get("ts").and_then(Value::as_f64).unwrap();
        assert!(ts >= last_ts, "ts non-decreasing within the lane");
        last_ts = ts;
        match ph {
            "B" => depth += 1,
            "E" => {
                depth -= 1;
                assert!(depth >= 0, "E without a matching B");
            }
            _ => {}
        }
    }
    assert_eq!(depth, 0, "every B has a matching E");
}
