//! Integration tests: the obs crate as instrumented code sees it —
//! concurrent recording, snapshot determinism, and the JSONL perf-record
//! round trip.

use cable_obs as obs;
use obs::json::Value;
use std::sync::Arc;
use std::thread;

#[test]
fn multi_threaded_counts_are_exact_after_join() {
    // Relaxed atomics lose no increments; once the recording threads have
    // joined, the snapshot is exact and two snapshots agree bit-for-bit.
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 10_000;
    let registry = Arc::new(obs::Registry::default());
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let registry = Arc::clone(&registry);
        handles.push(thread::spawn(move || {
            let counter = registry.counter("mt.ops");
            let hist = registry.histogram("mt.sizes");
            for i in 0..PER_THREAD {
                counter.incr();
                hist.record(t as u64 * PER_THREAD + i);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let a = registry.snapshot();
    let b = registry.snapshot();
    assert_eq!(a, b, "snapshots after join are deterministic");
    assert_eq!(a.counter("mt.ops"), Some(THREADS as u64 * PER_THREAD));
    let h = a.histogram("mt.sizes").unwrap();
    assert_eq!(h.count, THREADS as u64 * PER_THREAD);
    assert_eq!(h.max, THREADS as u64 * PER_THREAD - 1);
    // Sum of 0..N-1.
    let n = THREADS as u64 * PER_THREAD;
    assert_eq!(h.sum, n * (n - 1) / 2);
    assert_eq!(h.buckets.iter().sum::<u64>(), h.count);
}

#[test]
fn concurrent_snapshots_never_tear_below_zero() {
    // Snapshots taken *while* writers run can lag, but deltas against an
    // earlier snapshot are always well-formed (saturating, no panics).
    let registry = Arc::new(obs::Registry::default());
    let c = registry.counter("tear.ops");
    let writer = {
        let registry = Arc::clone(&registry);
        thread::spawn(move || {
            let c = registry.counter("tear.ops");
            for _ in 0..50_000 {
                c.incr();
            }
        })
    };
    let mut prev = registry.snapshot();
    for _ in 0..100 {
        let now = registry.snapshot();
        let delta = now.delta_since(&prev);
        // Monotone counter: the delta is the (non-negative) progress.
        assert!(delta.counter("tear.ops").unwrap_or(0) <= 50_000);
        assert!(now.counter("tear.ops") >= prev.counter("tear.ops"));
        prev = now;
    }
    writer.join().unwrap();
    c.incr();
    assert_eq!(registry.snapshot().counter("tear.ops"), Some(50_001));
}

#[test]
fn snapshot_round_trips_through_jsonl() {
    let registry = obs::Registry::default();
    registry.counter("rt.calls").add(42);
    let h = registry.histogram("rt.lat_ns");
    for v in [0u64, 1, 3, 900, 1 << 30] {
        h.record(v);
    }
    let snap = registry.snapshot();
    let record = Value::object([
        ("record", Value::from("test")),
        ("snapshot", snap.to_json()),
    ]);

    let path = std::env::temp_dir().join(format!("cable-obs-it-{}.jsonl", std::process::id()));
    let sink = obs::JsonlSink::create(&path).unwrap();
    sink.write(&record).unwrap();
    sink.write(&record).unwrap();
    sink.flush().unwrap(); // records buffer until flush/drop
    let text = std::fs::read_to_string(&path).unwrap();
    let _ = std::fs::remove_file(&path);

    let records = obs::parse_jsonl(&text).unwrap();
    assert_eq!(records.len(), 2);
    assert_eq!(records[0], record);
    let parsed = records[0].get("snapshot").unwrap();
    assert_eq!(
        parsed.get("counters").and_then(|c| c.get("rt.calls")),
        Some(&Value::from(42u64))
    );
    let hist = parsed.get("histograms").and_then(|h| h.get("rt.lat_ns"));
    assert_eq!(
        hist.and_then(|h| h.get("count")),
        Some(&Value::from(5u64)),
        "histogram survives the round trip"
    );
}

#[test]
fn render_mentions_every_metric() {
    let registry = obs::Registry::default();
    registry.counter("render.widgets").add(7);
    registry.histogram("render.paint_ns").record(1_500);
    let report = registry.snapshot().render();
    assert!(report.contains("render.widgets"), "{report}");
    assert!(report.contains("render.paint_ns"), "{report}");
    assert!(report.contains('7'), "{report}");
}

#[test]
fn global_registry_is_shared_with_handles() {
    static LOCAL: obs::CounterHandle = obs::CounterHandle::new("it.global.handle");
    LOCAL.get().add(3);
    // The handle registered in the process-wide registry, so a snapshot
    // of that registry sees it. Lower bound: parallel tests share it.
    assert!(obs::registry().snapshot().counter("it.global.handle") >= Some(3));
}
