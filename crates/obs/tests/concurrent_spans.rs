//! Regression test: span timers nest correctly under concurrency.
//!
//! The pre-fix implementation kept a single per-thread *depth counter*
//! on a `Send` span type, so a span moved to (or dropped on) another
//! thread corrupted that thread's depth and the two stacks interleaved
//! into a garbled global one. The fix keeps a per-thread *name stack*,
//! makes spans `!Send`, and gives pool workers a stage label; this test
//! pins the observable contract with two threads recording overlapping
//! spans.

use cable_obs as obs;
use std::sync::{Arc, Barrier};

static SPAN_A: obs::HistogramHandle = obs::HistogramHandle::new("test.concurrent.a_ns");
static SPAN_B: obs::HistogramHandle = obs::HistogramHandle::new("test.concurrent.b_ns");

/// Serialises the tests: both toggle the process-wide enabled flag.
static FLAG_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[test]
fn overlapping_spans_on_two_threads_keep_their_own_stacks() {
    let _lock = FLAG_LOCK.lock().unwrap();
    obs::set_enabled(true);
    let before_a = SPAN_A.get().snapshot().count;
    let before_b = SPAN_B.get().snapshot().count;
    // Both threads hold their outer span open across the same barrier
    // point, so the spans of thread A provably overlap the spans of
    // thread B in wall-clock time.
    let barrier = Arc::new(Barrier::new(2));
    let rounds = 100;
    let spawn =
        |name: &'static str, histogram: &'static obs::HistogramHandle, barrier: Arc<Barrier>| {
            std::thread::spawn(move || {
                for _ in 0..rounds {
                    assert_eq!(obs::current_depth(), 0, "stack leaked between rounds");
                    let _outer = obs::Span::enter(name, histogram);
                    barrier.wait(); // both threads are now inside their outer span
                    {
                        let _inner = obs::Span::enter(name, histogram);
                        // Only this thread's own spans are visible: exactly
                        // two, both under this thread's name — never the
                        // other thread's.
                        assert_eq!(obs::current_stack(), vec![name, name]);
                    }
                    assert_eq!(obs::current_depth(), 1);
                    barrier.wait(); // release the peer's round
                }
            })
        };
    let a = spawn("test.concurrent.a", &SPAN_A, barrier.clone());
    let b = spawn("test.concurrent.b", &SPAN_B, barrier);
    a.join().expect("thread a");
    b.join().expect("thread b");
    // Every span recorded exactly once into its own histogram.
    assert_eq!(SPAN_A.get().snapshot().count, before_a + 2 * rounds);
    assert_eq!(SPAN_B.get().snapshot().count, before_b + 2 * rounds);
    // The main thread's stack was never touched.
    assert_eq!(obs::current_depth(), 0);
    obs::set_enabled(false);
}

#[test]
fn worker_spans_attribute_to_their_stage_label() {
    let _lock = FLAG_LOCK.lock().unwrap();
    obs::set_enabled(true);
    let worker = std::thread::spawn(|| {
        let _stage = obs::enter_stage("par.stage.demo");
        let _span = obs::Span::enter("test.concurrent.a", &SPAN_A);
        obs::current_stack()
    });
    let stack = worker.join().expect("worker");
    assert_eq!(stack, vec!["par.stage.demo", "test.concurrent.a"]);
    // The stage label is per-thread: this thread never saw it.
    assert_eq!(obs::current_stage(), None);
    obs::set_enabled(false);
}
