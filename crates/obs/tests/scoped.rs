//! Concurrency test for the scoped-metrics rollup: scopes created,
//! written, and dropped from many threads at once must account for
//! every write exactly — the global registry's total equals the sum
//! over all scope-local tables, by construction of the write-through
//! rollup.

use cable_obs::ScopedRegistry;
use std::sync::Arc;

const THREADS: usize = 8;
const SCOPES_PER_THREAD: usize = 16;
const WRITES_PER_SCOPE: u64 = 100;

#[test]
fn scoped_rollup_is_exact_under_concurrency() {
    // A fresh local registry, so parallel tests in this binary can't
    // perturb the totals. The global side of the write-through still
    // lands in cable_obs::registry(), which we delta below.
    let scoped = Arc::new(ScopedRegistry::default());
    let counter_name = "obs.test.scoped_concurrent";
    let global_before = cable_obs::registry()
        .snapshot()
        .counter(counter_name)
        .unwrap_or(0);

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let scoped = Arc::clone(&scoped);
            std::thread::spawn(move || {
                for s in 0..SCOPES_PER_THREAD {
                    let scope = scoped.open(&[
                        ("session", &format!("t{t}-s{s}")),
                        ("stage", "concurrency-test"),
                    ]);
                    for _ in 0..WRITES_PER_SCOPE {
                        scope.incr(counter_name);
                    }
                    scope.record(&format!("{counter_name}_ns"), 1_000);
                    // Half the scopes drop immediately (retire), half
                    // at the end of the closure — both paths must keep
                    // their writes visible in the rollup.
                    if s % 2 == 0 {
                        drop(scope);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("scope thread panicked");
    }

    let expected = (THREADS * SCOPES_PER_THREAD) as u64 * WRITES_PER_SCOPE;

    // Exact global rollup: every scoped write also hit the global
    // registry.
    let global_after = cable_obs::registry()
        .snapshot()
        .counter(counter_name)
        .unwrap_or(0);
    assert_eq!(global_after - global_before, expected);

    // Exact per-scope accounting: the sum over every snapshot (live or
    // retired — the retired ring is bounded, so count only what it
    // kept) matches the scopes it still knows about.
    let snapshots = scoped.snapshot();
    assert!(scoped.live_count() == 0, "every scope was dropped");
    let retained: u64 = snapshots
        .iter()
        .map(|s| s.metrics.counter(counter_name).unwrap_or(0))
        .sum();
    assert_eq!(
        retained,
        snapshots.len() as u64 * WRITES_PER_SCOPE,
        "each retired snapshot holds exactly its own writes"
    );
    for snap in &snapshots {
        assert!(!snap.live);
        assert_eq!(snap.metrics.counter(counter_name), Some(WRITES_PER_SCOPE));
        let hist = snap
            .metrics
            .histogram(&format!("{counter_name}_ns"))
            .expect("histogram recorded in scope");
        assert_eq!(hist.count, 1);
        assert_eq!(
            snap.labels
                .iter()
                .find(|(k, _)| k == "stage")
                .map(|(_, v)| v.as_str()),
            Some("concurrency-test")
        );
    }

    // Ids are unique across all threads.
    let mut ids: Vec<u64> = snapshots.iter().map(|s| s.id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), snapshots.len());
}
