//! Godin's incremental lattice-construction algorithm.
//!
//! This is Algorithm 1 of Godin, Missaoui & Alaoui, *Incremental concept
//! formation algorithms based on Galois (concept) lattices* (1995) — the
//! algorithm the paper uses and times in Table 2. Objects are inserted one
//! at a time; existing concepts are either **modified** (their intent is a
//! subset of the new object's attribute set, so the new object joins their
//! extent) or act as **generators** of new concepts (the intersection of
//! their intent with the new attribute set, if that intent is not already
//! present).
//!
//! Its running time is `O(2^{2k} · |O|)` where `k` bounds the number of
//! attributes per object; the paper observes `k < 10` in practice.
//!
//! Concepts must be scanned in increasing intent-cardinality order —
//! Godin's *cardinality buckets*. [`Inserter`] keeps those buckets alive
//! across insertions: a modified concept keeps its intent (and bucket),
//! and a created concept is appended to the bucket of its new intent, so
//! batch construction never re-sorts the concept set per object. The
//! standalone [`add_object`] entry point (used when a single object joins
//! an existing lattice) rebuilds the buckets once from the concept set.
//!
//! The concept *set* is maintained incrementally; the Hasse diagram is
//! computed once at the end by [`crate::lattice::ConceptLattice::from_concepts`].

use crate::context::Context;
use crate::lattice::Concept;
use cable_obs::CounterHandle;
use cable_util::BitSet;
use std::collections::{BTreeSet, HashSet};

/// Objects inserted through Godin's algorithm (batch or incremental).
static OBJECTS_INSERTED: CounterHandle = CounterHandle::new("fca.godin.objects_inserted");
/// Concepts whose extent absorbed the new object.
static CONCEPTS_MODIFIED: CounterHandle = CounterHandle::new("fca.godin.concepts_modified");
/// Concepts created from a generator.
static CONCEPTS_CREATED: CounterHandle = CounterHandle::new("fca.godin.concepts_created");
/// Generator candidates skipped because their intent was already seen.
static CANDIDATES_SKIPPED: CounterHandle = CounterHandle::new("fca.godin.candidates_skipped");
/// Bucket tables rebuilt from scratch (standalone [`add_object`] calls).
static BUCKET_REBUILDS: CounterHandle = CounterHandle::new("fca.godin.bucket_rebuilds");
/// Insertions that reused live buckets — the work the incremental
/// [`Inserter`] saves over re-sorting per object.
static BUCKET_REUSES: CounterHandle = CounterHandle::new("fca.godin.bucket_reuses");

/// Computes all concepts of the context by incremental object insertion.
///
/// The result always contains the concept with the full attribute set as
/// intent (the lattice bottom) and, once at least one object exists, the
/// concept whose extent is all objects (the top) — possibly the same
/// concept.
pub fn concepts(ctx: &Context) -> Vec<Concept> {
    let mut concepts: Vec<Concept> = vec![Concept {
        extent: BitSet::new(),
        intent: BitSet::full(ctx.attribute_count()),
    }];
    let mut inserter = Inserter::new(&concepts, ctx.attribute_count());
    for o in 0..ctx.object_count() {
        inserter.add_object(&mut concepts, o, ctx.row(o));
    }
    concepts
}

/// A budget-stopped [`try_concepts`] run: the typed error plus the
/// *valid partial result* — the exact concept set of the context
/// restricted to the first [`BudgetStop::objects_inserted`] objects
/// (Godin's prefix-exactness invariant: after inserting objects `0..k`,
/// the concept set equals that of the sub-context).
#[derive(Debug)]
pub struct BudgetStop {
    /// Why the build stopped.
    pub error: cable_guard::GuardError,
    /// The prefix-exact concept set over the inserted objects.
    pub partial: Vec<Concept>,
    /// How many leading objects are fully inserted.
    pub objects_inserted: usize,
}

/// [`concepts`] under the installed `cable-guard` budget: one
/// checkpoint before each object insertion (cancellation, deadline,
/// memory estimate, injected exhaustion) and one concept-count check
/// after it. With nothing installed each check is a single relaxed
/// atomic load and the result is identical to [`concepts`].
///
/// # Errors
///
/// A [`BudgetStop`] carrying the prefix-exact partial concept set. The
/// stop point of a concept-count ceiling depends only on the object
/// order — never on `CABLE_PAR` or wall clock — so those partial
/// results are bit-deterministic across worker counts.
pub fn try_concepts(ctx: &Context) -> Result<Vec<Concept>, Box<BudgetStop>> {
    let n_attrs = ctx.attribute_count();
    // The rough per-concept cost charged against the memory ceiling: two
    // bitsets spanning the object and attribute universes.
    let concept_bytes = (ctx.object_count().div_ceil(64) + n_attrs.div_ceil(64)) as u64 * 8 + 48;
    let mut concepts: Vec<Concept> = vec![Concept {
        extent: BitSet::new(),
        intent: BitSet::full(n_attrs),
    }];
    let mut inserter = Inserter::new(&concepts, n_attrs);
    for o in 0..ctx.object_count() {
        if let Err(error) = cable_guard::checkpoint("fca.godin.insert") {
            return Err(Box::new(BudgetStop {
                error,
                partial: concepts,
                objects_inserted: o,
            }));
        }
        let before = concepts.len();
        inserter.add_object(&mut concepts, o, ctx.row(o));
        cable_guard::charge_mem((concepts.len() - before) as u64 * concept_bytes);
        if let Err(error) = cable_guard::check_concepts(concepts.len()) {
            // The set is already exact for objects 0..=o; the ceiling
            // just means it grew past what the caller will pay for.
            return Err(Box::new(BudgetStop {
                error,
                partial: concepts,
                objects_inserted: o + 1,
            }));
        }
    }
    Ok(concepts)
}

/// Objects per shard in [`concepts_sharded`].
pub const SHARD_SIZE: usize = 32;

/// Picks between [`concepts`] and [`concepts_sharded`]: sharding only
/// pays for itself when there are at least two full shards of objects
/// and the [`cable_par`] pool actually has workers. Both paths produce
/// the same concept set (see `sharded_matches_sequential_*` tests), so
/// the choice never changes results.
pub fn concepts_auto(ctx: &Context) -> Vec<Concept> {
    if ctx.object_count() >= 2 * SHARD_SIZE && cable_par::threads() > 1 {
        concepts_sharded(ctx)
    } else {
        concepts(ctx)
    }
}

/// [`concepts_auto`] under the installed `cable-guard` budget.
///
/// When a budget is active the sequential guarded path is taken
/// regardless of pool size: its stop points depend only on the object
/// order, so a budget-exceeded partial result is bit-identical across
/// `CABLE_PAR` settings — the same determinism guarantee the full build
/// makes. Without a budget this picks exactly like [`concepts_auto`]
/// (the sharded path still honours cancellation via its cancel points).
pub fn try_concepts_auto(ctx: &Context) -> Result<Vec<Concept>, Box<BudgetStop>> {
    if !cable_guard::budget_active()
        && ctx.object_count() >= 2 * SHARD_SIZE
        && cable_par::threads() > 1
    {
        Ok(concepts_sharded(ctx))
    } else {
        try_concepts(ctx)
    }
}

/// Computes all concepts of the context by shard-and-merge: objects are
/// partitioned into runs of [`SHARD_SIZE`], each shard's intent family
/// is built independently (with the same [`Inserter`] as the sequential
/// path, so the `fca.godin.*` counters account for every object), the
/// families are merged pairwise, and the final extents are recovered
/// with `τ` over the full context.
///
/// **Why the merge is exact.** For contexts `K_A`, `K_B` over disjoint
/// object sets `A`, `B` and the same attributes, every intent of the
/// union context is `σ(X ∪ Y) = σ_A(X) ∩ σ_B(Y)` for some `X ⊆ A`,
/// `Y ⊆ B`, and conversely every such intersection is `σ`-closed in the
/// union — so `Int(K_{A∪B})` is exactly the set of pairwise
/// intersections of `Int(K_A)` and `Int(K_B)`. Each family contains the
/// full attribute set (`σ(∅)`), which is the identity of the merge.
/// Distinct closed intents have distinct `τ`-extents, so the final
/// concept set is duplicate-free.
///
/// The output is a permutation of [`concepts`]' output — and an equal
/// set whatever the pool size, because the merge result is kept in
/// canonical (sorted) intent order.
pub fn concepts_sharded(ctx: &Context) -> Vec<Concept> {
    let started = std::time::Instant::now();
    let n_attrs = ctx.attribute_count();
    let shards: Vec<(usize, usize)> = (0..ctx.object_count())
        .step_by(SHARD_SIZE)
        .map(|s| (s, (s + SHARD_SIZE).min(ctx.object_count())))
        .collect();
    let families: Vec<BTreeSet<BitSet>> =
        cable_par::par_map("fca.godin.shard", &shards, |&(start, end)| {
            let mut shard_concepts = vec![Concept {
                extent: BitSet::new(),
                intent: BitSet::full(n_attrs),
            }];
            let mut inserter = Inserter::new(&shard_concepts, n_attrs);
            for o in start..end {
                cable_guard::cancel_point("fca.godin.shard");
                inserter.add_object(&mut shard_concepts, o, ctx.row(o));
            }
            shard_concepts.into_iter().map(|c| c.intent).collect()
        });
    let merged = cable_par::par_reduce(
        "fca.godin.merge",
        &families,
        || BTreeSet::from([BitSet::full(n_attrs)]),
        |acc, family| {
            cable_guard::cancel_point("fca.godin.merge");
            merge_intent_families(&acc, family)
        },
        |a, b| merge_intent_families(&a, &b),
    );
    let intents: Vec<BitSet> = merged.into_iter().collect();
    let out = cable_par::par_map("fca.godin.extents", &intents, |intent| {
        cable_guard::cancel_point("fca.godin.extents");
        Concept {
            extent: ctx.tau(intent),
            intent: intent.clone(),
        }
    });
    if cable_obs::events::enabled() {
        cable_obs::events::emit(
            cable_obs::WideEvent::new("shard_merge", "fca")
                .stage("fca.godin.shard_merge")
                .duration(started.elapsed())
                .field("objects", ctx.object_count() as u64)
                .field("shards", shards.len() as u64)
                .field("concepts", out.len() as u64),
        );
    }
    out
}

/// The intent family of the union of two disjoint-object contexts: all
/// pairwise intersections of the two families (both intersection-closed
/// and containing the full attribute set).
fn merge_intent_families(a: &BTreeSet<BitSet>, b: &BTreeSet<BitSet>) -> BTreeSet<BitSet> {
    let mut out = BTreeSet::new();
    for ya in a {
        for yb in b {
            out.insert(ya.intersection(yb));
        }
    }
    out
}

/// Inserts one object with the given attribute row into an existing
/// concept set (which must be the concept set of the context restricted
/// to the previously inserted objects, plus the `(∅, A)` seed).
///
/// This rebuilds Godin's cardinality buckets from the concept set; batch
/// callers inserting many objects should hold an [`Inserter`] instead.
pub fn add_object(concepts: &mut Vec<Concept>, object: usize, attrs: &BitSet) {
    BUCKET_REBUILDS.get().incr();
    let n_attrs = concepts
        .iter()
        .map(|c| c.intent.len())
        .max()
        .unwrap_or(0)
        .max(attrs.last().map_or(0, |a| a + 1));
    let mut inserter = Inserter::new(concepts, n_attrs);
    inserter.insert(concepts, object, attrs);
}

/// Godin's intent-cardinality buckets, kept alive across insertions.
///
/// `buckets[k]` holds the indices of all concepts whose intent has `k`
/// attributes. Scanning buckets in increasing `k` yields the processing
/// order the algorithm's generator argument depends on, without sorting:
/// modified concepts keep their intent size, and each created concept is
/// appended to the bucket of its (new) intent size after the scan.
#[derive(Debug)]
pub struct Inserter {
    buckets: Vec<Vec<usize>>,
}

impl Inserter {
    /// Builds the buckets for an existing concept set over `n_attrs`
    /// attributes.
    pub fn new(concepts: &[Concept], n_attrs: usize) -> Inserter {
        let mut buckets = vec![Vec::new(); n_attrs + 1];
        for (i, c) in concepts.iter().enumerate() {
            buckets[c.intent.len()].push(i);
        }
        Inserter { buckets }
    }

    /// Inserts one object, reusing the live buckets.
    pub fn add_object(&mut self, concepts: &mut Vec<Concept>, object: usize, attrs: &BitSet) {
        BUCKET_REUSES.get().incr();
        self.insert(concepts, object, attrs);
    }

    fn insert(&mut self, concepts: &mut Vec<Concept>, object: usize, attrs: &BitSet) {
        OBJECTS_INSERTED.get().incr();
        // Intents that are already accounted for in the new lattice: those
        // of modified concepts and of concepts created during this
        // insertion.
        let mut seen: HashSet<BitSet> = HashSet::new();
        let mut created: Vec<Concept> = Vec::new();
        let mut modified = 0u64;
        let mut skipped = 0u64;
        for bucket in &self.buckets {
            for &idx in bucket {
                let intent = concepts[idx].intent.clone();
                if intent.is_subset(attrs) {
                    // Modified concept: the new object has all its
                    // attributes. Its intent — and so its bucket — stays.
                    concepts[idx].extent.insert(object);
                    modified += 1;
                    seen.insert(intent);
                } else {
                    let candidate = intent.intersection(attrs);
                    if seen.contains(&candidate) {
                        skipped += 1;
                        continue;
                    }
                    // `concepts[idx]` is the generator: because concepts
                    // are processed by increasing intent size, the first
                    // generator of `candidate` is the closure concept of
                    // `candidate` in the old context, so its extent is
                    // exactly τ_old(candidate).
                    let mut extent = concepts[idx].extent.clone();
                    extent.insert(object);
                    seen.insert(candidate.clone());
                    created.push(Concept {
                        extent,
                        intent: candidate,
                    });
                }
            }
        }
        CONCEPTS_MODIFIED.get().add(modified);
        CONCEPTS_CREATED.get().add(created.len() as u64);
        CANDIDATES_SKIPPED.get().add(skipped);
        for c in created {
            self.buckets[c.intent.len()].push(concepts.len());
            concepts.push(c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_of(rows: &[&[usize]], n_attrs: usize) -> Context {
        let mut ctx = Context::new(rows.len(), n_attrs);
        for (o, row) in rows.iter().enumerate() {
            for &a in *row {
                ctx.add(o, a);
            }
        }
        ctx
    }

    fn find<'a>(cs: &'a [Concept], intent: &[usize]) -> Option<&'a Concept> {
        let i: BitSet = intent.iter().copied().collect();
        cs.iter().find(|c| c.intent == i)
    }

    #[test]
    fn empty_context() {
        let ctx = Context::new(0, 3);
        let cs = concepts(&ctx);
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].intent, BitSet::full(3));
        assert!(cs[0].extent.is_empty());
    }

    #[test]
    fn single_object() {
        let ctx = ctx_of(&[&[0, 1]], 3);
        let cs = concepts(&ctx);
        assert_eq!(cs.len(), 2);
        let top = find(&cs, &[0, 1]).expect("object concept");
        assert_eq!(top.extent.to_vec(), vec![0]);
        let bottom = find(&cs, &[0, 1, 2]).expect("bottom");
        assert!(bottom.extent.is_empty());
    }

    #[test]
    fn object_with_all_attributes_modifies_bottom() {
        let ctx = ctx_of(&[&[0, 1, 2]], 3);
        let cs = concepts(&ctx);
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].extent.to_vec(), vec![0]);
        assert_eq!(cs[0].intent, BitSet::full(3));
    }

    #[test]
    fn shared_attribute_creates_meet() {
        // o0 {a,b}, o1 {b,c}: concepts with intents {a,b},{b,c},{b},{a,b,c}.
        let ctx = ctx_of(&[&[0, 1], &[1, 2]], 3);
        let cs = concepts(&ctx);
        assert_eq!(cs.len(), 4);
        let meet = find(&cs, &[1]).expect("shared-attribute concept");
        assert_eq!(meet.extent.to_vec(), vec![0, 1]);
    }

    #[test]
    fn duplicate_objects_share_concepts() {
        let ctx = ctx_of(&[&[0, 1], &[0, 1], &[0, 1]], 2);
        let cs = concepts(&ctx);
        // ({0,1,2},{0,1}) only (intent == full attribute set).
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].extent.len(), 3);
    }

    #[test]
    fn concepts_are_closed_pairs() {
        let ctx = ctx_of(&[&[0, 1], &[1, 2, 4], &[2, 3], &[2, 4], &[2, 3]], 5);
        for c in concepts(&ctx) {
            assert_eq!(ctx.sigma(&c.extent), c.intent, "intent = σ(extent)");
            assert_eq!(ctx.tau(&c.intent), c.extent, "extent = τ(intent)");
        }
    }

    #[test]
    fn animals_count_matches_figure_10() {
        let ctx = ctx_of(&[&[0, 1], &[1, 2, 4], &[2, 3], &[2, 4], &[2, 3]], 5);
        assert_eq!(concepts(&ctx).len(), 8);
    }

    #[test]
    fn standalone_add_object_matches_batch() {
        // Insert the animals objects one at a time through the bucket
        // rebuilding entry point; the result must match `concepts`.
        let ctx = ctx_of(&[&[0, 1], &[1, 2, 4], &[2, 3], &[2, 4], &[2, 3]], 5);
        let mut incremental = vec![Concept {
            extent: BitSet::new(),
            intent: BitSet::full(5),
        }];
        for o in 0..ctx.object_count() {
            add_object(&mut incremental, o, ctx.row(o));
        }
        let batch = concepts(&ctx);
        let a: std::collections::HashSet<_> = incremental
            .into_iter()
            .map(|c| (c.extent, c.intent))
            .collect();
        let b: std::collections::HashSet<_> =
            batch.into_iter().map(|c| (c.extent, c.intent)).collect();
        assert_eq!(a, b);
    }

    /// A random context: `n_objects` rows over `n_attrs` attributes, each
    /// pair present with probability `density`.
    fn random_ctx(seed: u64, n_objects: usize, n_attrs: usize, density: f64) -> Context {
        use cable_util::rng::Rng;
        let mut rng = cable_util::rng::seeded(seed);
        let mut ctx = Context::new(n_objects, n_attrs);
        for o in 0..n_objects {
            for a in 0..n_attrs {
                if rng.gen_bool(density) {
                    ctx.add(o, a);
                }
            }
        }
        ctx
    }

    fn concept_set(cs: Vec<Concept>) -> std::collections::BTreeSet<(BitSet, BitSet)> {
        cs.into_iter().map(|c| (c.extent, c.intent)).collect()
    }

    #[test]
    fn sharded_matches_sequential_on_small_contexts() {
        // Below, at, and just above the shard size, plus empty.
        for n_objects in [0usize, 1, 5, SHARD_SIZE, SHARD_SIZE + 1] {
            let ctx = random_ctx(90 + n_objects as u64, n_objects, 8, 0.35);
            assert_eq!(
                concept_set(concepts_sharded(&ctx)),
                concept_set(concepts(&ctx)),
                "n_objects = {n_objects}"
            );
        }
    }

    #[test]
    fn sharded_matches_sequential_on_randomized_contexts() {
        for seed in 0u64..6 {
            let n_objects = 64 + (seed as usize * 29) % 80;
            let n_attrs = 6 + (seed as usize) % 5;
            let density = 0.15 + 0.08 * seed as f64;
            let ctx = random_ctx(seed, n_objects, n_attrs, density);
            let sharded = concepts_sharded(&ctx);
            let sequential = concepts(&ctx);
            assert_eq!(sharded.len(), sequential.len(), "seed {seed}");
            assert_eq!(concept_set(sharded), concept_set(sequential), "seed {seed}");
        }
    }

    #[test]
    fn sharded_concepts_are_closed_pairs() {
        let ctx = random_ctx(7, 100, 9, 0.3);
        for c in concepts_sharded(&ctx) {
            assert_eq!(ctx.sigma(&c.extent), c.intent, "intent = σ(extent)");
            assert_eq!(ctx.tau(&c.intent), c.extent, "extent = τ(intent)");
        }
    }

    #[test]
    fn sharded_inserts_every_object_through_the_counters() {
        let before = cable_obs::registry().snapshot();
        let ctx = random_ctx(11, 70, 7, 0.3);
        let _ = concepts_sharded(&ctx);
        let delta = cable_obs::registry().snapshot().delta_since(&before);
        // Each object goes through the same Inserter as the sequential
        // path exactly once (counters are process-wide: bound from below).
        assert!(delta.counter("fca.godin.objects_inserted").unwrap_or(0) >= 70);
    }

    #[test]
    fn inserter_counts_saved_sorts() {
        let before = cable_obs::registry().snapshot();
        let ctx = ctx_of(&[&[0, 1], &[1, 2, 4], &[2, 3], &[2, 4], &[2, 3]], 5);
        let _ = concepts(&ctx);
        let delta = cable_obs::registry().snapshot().delta_since(&before);
        // Batch construction reuses the buckets for every object (other
        // tests share the process-wide counters, so bound from below).
        assert!(delta.counter("fca.godin.bucket_reuses").unwrap_or(0) >= 5);
        assert!(delta.counter("fca.godin.objects_inserted").unwrap_or(0) >= 5);
        let modified = delta.counter("fca.godin.concepts_modified").unwrap_or(0);
        let created = delta.counter("fca.godin.concepts_created").unwrap_or(0);
        assert!(modified > 0 && created > 0, "{modified} {created}");
    }
}
