//! Godin's incremental lattice-construction algorithm.
//!
//! This is Algorithm 1 of Godin, Missaoui & Alaoui, *Incremental concept
//! formation algorithms based on Galois (concept) lattices* (1995) — the
//! algorithm the paper uses and times in Table 2. Objects are inserted one
//! at a time; existing concepts are either **modified** (their intent is a
//! subset of the new object's attribute set, so the new object joins their
//! extent) or act as **generators** of new concepts (the intersection of
//! their intent with the new attribute set, if that intent is not already
//! present).
//!
//! Its running time is `O(2^{2k} · |O|)` where `k` bounds the number of
//! attributes per object; the paper observes `k < 10` in practice.
//!
//! The concept *set* is maintained incrementally; the Hasse diagram is
//! computed once at the end by [`crate::lattice::ConceptLattice::from_concepts`].

use crate::context::Context;
use crate::lattice::Concept;
use cable_util::BitSet;
use std::collections::HashSet;

/// Computes all concepts of the context by incremental object insertion.
///
/// The result always contains the concept with the full attribute set as
/// intent (the lattice bottom) and, once at least one object exists, the
/// concept whose extent is all objects (the top) — possibly the same
/// concept.
pub fn concepts(ctx: &Context) -> Vec<Concept> {
    let mut concepts: Vec<Concept> = vec![Concept {
        extent: BitSet::new(),
        intent: BitSet::full(ctx.attribute_count()),
    }];
    for o in 0..ctx.object_count() {
        add_object(&mut concepts, o, ctx.row(o));
    }
    concepts
}

/// Inserts one object with the given attribute row into an existing
/// concept set (which must be the concept set of the context restricted
/// to the previously inserted objects, plus the `(∅, A)` seed).
pub fn add_object(concepts: &mut Vec<Concept>, object: usize, attrs: &BitSet) {
    // Process existing concepts in increasing intent-size order (Godin's
    // cardinality buckets).
    let mut order: Vec<usize> = (0..concepts.len()).collect();
    order.sort_by_key(|&i| concepts[i].intent.len());
    // Intents that are already accounted for in the new lattice: those of
    // modified concepts and of concepts created during this insertion.
    let mut seen: HashSet<BitSet> = HashSet::new();
    let mut created: Vec<Concept> = Vec::new();
    for idx in order {
        let intent = concepts[idx].intent.clone();
        if intent.is_subset(attrs) {
            // Modified concept: the new object has all its attributes.
            concepts[idx].extent.insert(object);
            seen.insert(intent);
        } else {
            let candidate = intent.intersection(attrs);
            if seen.contains(&candidate) {
                continue;
            }
            // `concepts[idx]` is the generator: because concepts are
            // processed by increasing intent size, the first generator of
            // `candidate` is the closure concept of `candidate` in the old
            // context, so its extent is exactly τ_old(candidate).
            let mut extent = concepts[idx].extent.clone();
            extent.insert(object);
            seen.insert(candidate.clone());
            created.push(Concept {
                extent,
                intent: candidate,
            });
        }
    }
    concepts.append(&mut created);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_of(rows: &[&[usize]], n_attrs: usize) -> Context {
        let mut ctx = Context::new(rows.len(), n_attrs);
        for (o, row) in rows.iter().enumerate() {
            for &a in *row {
                ctx.add(o, a);
            }
        }
        ctx
    }

    fn find<'a>(cs: &'a [Concept], intent: &[usize]) -> Option<&'a Concept> {
        let i: BitSet = intent.iter().copied().collect();
        cs.iter().find(|c| c.intent == i)
    }

    #[test]
    fn empty_context() {
        let ctx = Context::new(0, 3);
        let cs = concepts(&ctx);
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].intent, BitSet::full(3));
        assert!(cs[0].extent.is_empty());
    }

    #[test]
    fn single_object() {
        let ctx = ctx_of(&[&[0, 1]], 3);
        let cs = concepts(&ctx);
        assert_eq!(cs.len(), 2);
        let top = find(&cs, &[0, 1]).expect("object concept");
        assert_eq!(top.extent.to_vec(), vec![0]);
        let bottom = find(&cs, &[0, 1, 2]).expect("bottom");
        assert!(bottom.extent.is_empty());
    }

    #[test]
    fn object_with_all_attributes_modifies_bottom() {
        let ctx = ctx_of(&[&[0, 1, 2]], 3);
        let cs = concepts(&ctx);
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].extent.to_vec(), vec![0]);
        assert_eq!(cs[0].intent, BitSet::full(3));
    }

    #[test]
    fn shared_attribute_creates_meet() {
        // o0 {a,b}, o1 {b,c}: concepts with intents {a,b},{b,c},{b},{a,b,c}.
        let ctx = ctx_of(&[&[0, 1], &[1, 2]], 3);
        let cs = concepts(&ctx);
        assert_eq!(cs.len(), 4);
        let meet = find(&cs, &[1]).expect("shared-attribute concept");
        assert_eq!(meet.extent.to_vec(), vec![0, 1]);
    }

    #[test]
    fn duplicate_objects_share_concepts() {
        let ctx = ctx_of(&[&[0, 1], &[0, 1], &[0, 1]], 2);
        let cs = concepts(&ctx);
        // ({0,1,2},{0,1}) only (intent == full attribute set).
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].extent.len(), 3);
    }

    #[test]
    fn concepts_are_closed_pairs() {
        let ctx = ctx_of(&[&[0, 1], &[1, 2, 4], &[2, 3], &[2, 4], &[2, 3]], 5);
        for c in concepts(&ctx) {
            assert_eq!(ctx.sigma(&c.extent), c.intent, "intent = σ(extent)");
            assert_eq!(ctx.tau(&c.intent), c.extent, "extent = τ(intent)");
        }
    }

    #[test]
    fn animals_count_matches_figure_10() {
        let ctx = ctx_of(&[&[0, 1], &[1, 2, 4], &[2, 3], &[2, 4], &[2, 3]], 5);
        assert_eq!(concepts(&ctx).len(), 8);
    }
}
