//! Graphviz DOT export for concept lattices (Figure 5 / Figure 10 style).

use crate::lattice::{ConceptId, ConceptLattice};
use std::fmt::Write as _;

impl ConceptLattice {
    /// Renders the lattice in Graphviz DOT syntax, labelling each concept
    /// with strings produced by the two callbacks (e.g. object and
    /// attribute names, or trace counts and transition labels).
    pub fn to_dot<F, G>(&self, name: &str, mut extent_label: F, mut intent_label: G) -> String
    where
        F: FnMut(ConceptId) -> String,
        G: FnMut(ConceptId) -> String,
    {
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{}\" {{", name.replace('"', "\\\""));
        let _ = writeln!(out, "  rankdir=TB;");
        let _ = writeln!(out, "  node [shape=record];");
        for (id, _) in self.iter() {
            let e = extent_label(id)
                .replace('"', "\\\"")
                .replace(['{', '}'], "");
            let i = intent_label(id)
                .replace('"', "\\\"")
                .replace(['{', '}'], "");
            let _ = writeln!(out, "  {id} [label=\"{{{i}|{e}}}\"];");
        }
        for (id, _) in self.iter() {
            for &child in self.children(id) {
                let _ = writeln!(out, "  {id} -> {child};");
            }
        }
        let _ = writeln!(out, "}}");
        out
    }

    /// DOT export with plain index-based labels.
    pub fn to_dot_indices(&self, name: &str) -> String {
        self.to_dot(
            name,
            |id| format!("{}", self.concept(id).extent),
            |id| format!("{}", self.concept(id).intent),
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::context::Context;
    use crate::lattice::ConceptLattice;

    #[test]
    fn dot_contains_all_concepts_and_edges() {
        let mut ctx = Context::new(2, 2);
        ctx.add(0, 0);
        ctx.add(1, 1);
        let l = ConceptLattice::build(&ctx);
        let dot = l.to_dot_indices("test");
        assert!(dot.starts_with("digraph"));
        for (id, _) in l.iter() {
            assert!(dot.contains(&format!("{id} [label=")));
        }
        let edge_count = dot.matches(" -> ").count();
        let expected: usize = l.ids().map(|id| l.children(id).len()).sum();
        assert_eq!(edge_count, expected);
    }
}
