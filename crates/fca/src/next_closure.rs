//! Ganter's NextClosure algorithm.
//!
//! Enumerates all closed attribute sets (concept intents) in lectic
//! order. Quadratic-ish and simple; used as a differential-testing
//! reference for the incremental [`crate::godin`] implementation and as
//! an alternative batch constructor.

use crate::context::Context;
use crate::lattice::Concept;
use cable_obs::CounterHandle;
use cable_util::BitSet;

/// Closure computations performed while enumerating lectic successors.
static CLOSURES: CounterHandle = CounterHandle::new("fca.next_closure.closures");

/// Computes all concepts by enumerating closed intents in lectic order.
pub fn concepts(ctx: &Context) -> Vec<Concept> {
    let m = ctx.attribute_count();
    let mut result = Vec::new();
    let mut current = ctx.intent_closure(&BitSet::new());
    CLOSURES.get().incr();
    loop {
        result.push(Concept {
            extent: ctx.tau(&current),
            intent: current.clone(),
        });
        match next_closure(ctx, &current, m) {
            Some(next) => current = next,
            None => break,
        }
    }
    result
}

/// The lectically-next closed set after `a`, or `None` if `a` is the last
/// (the full attribute set).
fn next_closure(ctx: &Context, a: &BitSet, m: usize) -> Option<BitSet> {
    for i in (0..m).rev() {
        if a.contains(i) {
            continue;
        }
        // candidate = closure((a ∩ {0..i}) ∪ {i})
        let mut prefix = BitSet::with_capacity(m);
        for x in a.iter() {
            if x < i {
                prefix.insert(x);
            } else {
                break;
            }
        }
        prefix.insert(i);
        CLOSURES.get().incr();
        let closed = ctx.intent_closure(&prefix);
        // Accept iff the closure adds no element smaller than i that a
        // lacks (the lectic condition a <_i closed).
        let ok = closed.iter().take_while(|&x| x < i).all(|x| a.contains(x));
        if ok {
            return Some(closed);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn ctx_of(rows: &[&[usize]], n_attrs: usize) -> Context {
        let mut ctx = Context::new(rows.len(), n_attrs);
        for (o, row) in rows.iter().enumerate() {
            for &a in *row {
                ctx.add(o, a);
            }
        }
        ctx
    }

    #[test]
    fn animals_has_eight_concepts() {
        let ctx = ctx_of(&[&[0, 1], &[1, 2, 4], &[2, 3], &[2, 4], &[2, 3]], 5);
        let cs = concepts(&ctx);
        assert_eq!(cs.len(), 8);
        // All closed, all distinct.
        let intents: HashSet<_> = cs.iter().map(|c| c.intent.clone()).collect();
        assert_eq!(intents.len(), 8);
        for c in &cs {
            assert_eq!(ctx.intent_closure(&c.intent), c.intent);
            assert_eq!(ctx.tau(&c.intent), c.extent);
        }
    }

    #[test]
    fn empty_and_degenerate_contexts() {
        let cs = concepts(&Context::new(0, 3));
        assert_eq!(cs.len(), 1); // only (∅, M)
        let cs = concepts(&Context::new(2, 0));
        assert_eq!(cs.len(), 1); // only (O, ∅)
        assert_eq!(cs[0].extent.len(), 2);
    }

    #[test]
    fn matches_godin_on_small_contexts() {
        let cases: Vec<(Vec<&[usize]>, usize)> = vec![
            (vec![&[0][..], &[1][..]], 2),
            (vec![&[0, 1][..], &[1, 2][..], &[0, 2][..]], 3),
            (vec![&[0, 1, 2][..], &[0][..], &[1][..], &[2][..]], 3),
            (vec![&[][..], &[0, 1][..]], 2),
        ];
        for (rows, m) in cases {
            let ctx = ctx_of(&rows, m);
            let a: HashSet<_> = concepts(&ctx)
                .into_iter()
                .map(|c| (c.extent, c.intent))
                .collect();
            let b: HashSet<_> = crate::godin::concepts(&ctx)
                .into_iter()
                .map(|c| (c.extent, c.intent))
                .collect();
            assert_eq!(a, b, "rows {rows:?}");
        }
    }
}
