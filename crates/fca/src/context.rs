//! Formal contexts: objects, attributes, and the incidence relation.

use cable_util::BitSet;

/// A formal context `(O, A, R)` with `|O|` objects, `|A|` attributes, and
/// an incidence relation `R ⊆ O × A`.
///
/// Both the rows (attributes per object) and columns (objects per
/// attribute) are materialised as bit sets, making the derivation
/// operators `σ` and `τ` fast intersections.
///
/// # Examples
///
/// ```
/// use cable_fca::Context;
/// use cable_util::BitSet;
///
/// let mut ctx = Context::new(2, 3);
/// ctx.add(0, 0);
/// ctx.add(0, 1);
/// ctx.add(1, 1);
/// ctx.add(1, 2);
/// let both = ctx.sigma(&BitSet::full(2));
/// assert_eq!(both.to_vec(), vec![1]); // attribute 1 shared by all
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Context {
    n_objects: usize,
    n_attributes: usize,
    rows: Vec<BitSet>,
    cols: Vec<BitSet>,
}

impl Context {
    /// Creates an empty context with the given dimensions.
    pub fn new(n_objects: usize, n_attributes: usize) -> Self {
        Context {
            n_objects,
            n_attributes,
            rows: vec![BitSet::with_capacity(n_attributes); n_objects],
            cols: vec![BitSet::with_capacity(n_objects); n_attributes],
        }
    }

    /// Creates a context from per-object attribute rows.
    ///
    /// # Panics
    ///
    /// Panics if any row mentions an attribute `≥ n_attributes`.
    pub fn from_rows(rows: Vec<BitSet>, n_attributes: usize) -> Self {
        let mut ctx = Context::new(rows.len(), n_attributes);
        for (o, row) in rows.into_iter().enumerate() {
            for a in row.iter() {
                ctx.add(o, a);
            }
        }
        ctx
    }

    /// Appends a new object with the given attribute row, returning its
    /// index. Companion to [`crate::ConceptLattice::insert_object`] for
    /// incremental updates.
    ///
    /// # Panics
    ///
    /// Panics if the row mentions an attribute `≥ attribute_count`.
    pub fn push_object(&mut self, row: &BitSet) -> usize {
        let object = self.n_objects;
        self.n_objects += 1;
        self.rows.push(BitSet::with_capacity(self.n_attributes));
        for a in row.iter() {
            self.add(object, a);
        }
        object
    }

    /// Records `(object, attribute) ∈ R`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn add(&mut self, object: usize, attribute: usize) {
        assert!(object < self.n_objects, "object out of range");
        assert!(attribute < self.n_attributes, "attribute out of range");
        self.rows[object].insert(attribute);
        self.cols[attribute].insert(object);
    }

    /// Tests whether `(object, attribute) ∈ R`.
    pub fn has(&self, object: usize, attribute: usize) -> bool {
        self.rows.get(object).is_some_and(|r| r.contains(attribute))
    }

    /// Number of objects.
    pub fn object_count(&self) -> usize {
        self.n_objects
    }

    /// Number of attributes.
    pub fn attribute_count(&self) -> usize {
        self.n_attributes
    }

    /// Number of incidence pairs.
    pub fn pair_count(&self) -> usize {
        self.rows.iter().map(BitSet::len).sum()
    }

    /// The attributes of one object.
    pub fn row(&self, object: usize) -> &BitSet {
        &self.rows[object]
    }

    /// The objects of one attribute.
    pub fn col(&self, attribute: usize) -> &BitSet {
        &self.cols[attribute]
    }

    /// `σ(X)`: attributes shared by every object in `X`. By convention
    /// `σ(∅)` is the full attribute set.
    pub fn sigma(&self, objects: &BitSet) -> BitSet {
        let mut result = BitSet::full(self.n_attributes);
        for o in objects.iter() {
            result.intersect_with(&self.rows[o]);
        }
        result
    }

    /// `τ(Y)`: objects that enjoy every attribute in `Y`. By convention
    /// `τ(∅)` is the full object set.
    pub fn tau(&self, attributes: &BitSet) -> BitSet {
        let mut result = BitSet::full(self.n_objects);
        for a in attributes.iter() {
            result.intersect_with(&self.cols[a]);
        }
        result
    }

    /// The attribute closure `σ(τ(Y))`.
    pub fn intent_closure(&self, attributes: &BitSet) -> BitSet {
        self.sigma(&self.tau(attributes))
    }

    /// The object closure `τ(σ(X))`.
    pub fn extent_closure(&self, objects: &BitSet) -> BitSet {
        self.tau(&self.sigma(objects))
    }

    /// The paper's similarity measure: `sim(X) = |σ(X)|`.
    pub fn similarity(&self, objects: &BitSet) -> usize {
        self.sigma(objects).len()
    }

    /// The largest row size — the `k` in the `O(2^{2k} |O|)` bound the
    /// paper quotes for Godin's algorithm (§3.1.1).
    pub fn max_row_size(&self) -> usize {
        self.rows.iter().map(BitSet::len).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn animals() -> Context {
        // Figure 9 of the paper (via Siff's thesis).
        let mut ctx = Context::new(5, 5);
        for (o, attrs) in [
            (0usize, vec![0usize, 1]), // cats
            (1, vec![1, 2, 4]),        // gibbons
            (2, vec![2, 3]),           // dolphins
            (3, vec![2, 4]),           // humans
            (4, vec![2, 3]),           // whales
        ] {
            for a in attrs {
                ctx.add(o, a);
            }
        }
        ctx
    }

    #[test]
    fn sigma_tau_basics() {
        let ctx = animals();
        assert_eq!(ctx.object_count(), 5);
        assert_eq!(ctx.attribute_count(), 5);
        assert_eq!(ctx.pair_count(), 11);
        // σ of all objects: nothing shared.
        assert!(ctx.sigma(&BitSet::full(5)).is_empty());
        // σ({gibbons, humans}) = {intelligent, thumbed}.
        let gh: BitSet = [1usize, 3].into_iter().collect();
        assert_eq!(ctx.sigma(&gh).to_vec(), vec![2, 4]);
        // τ({intelligent}) = everything but cats.
        assert_eq!(ctx.tau(&BitSet::singleton(2)).to_vec(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn empty_set_conventions() {
        let ctx = animals();
        assert_eq!(ctx.sigma(&BitSet::new()), BitSet::full(5));
        assert_eq!(ctx.tau(&BitSet::new()), BitSet::full(5));
    }

    #[test]
    fn closures_are_closures() {
        let ctx = animals();
        // closure is extensive, monotone, idempotent — spot-check.
        let y = BitSet::singleton(3); // marine
        let c = ctx.intent_closure(&y);
        assert!(y.is_subset(&c));
        assert_eq!(ctx.intent_closure(&c), c);
        // marine implies intelligent here.
        assert_eq!(c.to_vec(), vec![2, 3]);
    }

    #[test]
    fn similarity_is_antitone() {
        let ctx = animals();
        let small: BitSet = [1usize].into_iter().collect();
        let large: BitSet = [1usize, 3].into_iter().collect();
        assert!(ctx.similarity(&small) >= ctx.similarity(&large));
    }

    #[test]
    fn from_rows_round_trip() {
        let ctx = animals();
        let rows: Vec<BitSet> = (0..5).map(|o| ctx.row(o).clone()).collect();
        let ctx2 = Context::from_rows(rows, 5);
        assert_eq!(ctx, ctx2);
    }

    #[test]
    fn max_row_size() {
        assert_eq!(animals().max_row_size(), 3);
        assert_eq!(Context::new(0, 4).max_row_size(), 0);
    }

    #[test]
    #[should_panic(expected = "attribute out of range")]
    fn add_checks_bounds() {
        let mut ctx = Context::new(1, 1);
        ctx.add(0, 1);
    }
}
