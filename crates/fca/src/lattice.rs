//! The concept lattice: concepts, order, and the Hasse diagram.

use crate::context::Context;
use cable_obs::{CounterHandle, HistogramHandle, Span};
use cable_util::BitSet;
use std::collections::HashMap;
use std::fmt;

/// Wall-clock cost of full lattice builds (Godin or NextClosure).
static BUILD_NS: HistogramHandle = HistogramHandle::new("fca.lattice.build_ns");
/// Wall-clock cost of Hasse-diagram assembly inside `from_concepts`.
static HASSE_NS: HistogramHandle = HistogramHandle::new("fca.lattice.hasse_ns");
/// Cover edges produced by Hasse-diagram assembly.
static HASSE_EDGES: CounterHandle = CounterHandle::new("fca.lattice.hasse_edges");
/// Lattices assembled via `from_concepts`.
static LATTICES_BUILT: CounterHandle = CounterHandle::new("fca.lattice.built");

/// A formal concept: a pair `(extent, intent)` with `σ(extent) = intent`
/// and `τ(intent) = extent`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Concept {
    /// The objects of the concept.
    pub extent: BitSet,
    /// The attributes shared by all objects of the concept.
    pub intent: BitSet,
}

impl Concept {
    /// The paper's similarity of this concept's trace set:
    /// `sim(X) = |σ(X)| = |intent|`.
    pub fn similarity(&self) -> usize {
        self.intent.len()
    }
}

/// Index of a concept within a [`ConceptLattice`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConceptId(pub u32);

impl ConceptId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ConceptId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A structurally invalid lattice operation, reachable from untrusted
/// input (a corrupted snapshot, a replayed journal, a caller-supplied
/// concept set) — as opposed to the internal lattice-closure invariants
/// that [`ConceptLattice::meet`]/[`ConceptLattice::join`] rely on, which
/// can only break through a bug in construction and stay as panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LatticeError {
    /// A concept set was empty; every lattice has at least `(τ(A), A)`.
    EmptyConceptSet,
    /// Two concepts shared an extent — the set is not a concept set.
    DuplicateExtent,
    /// An inserted object's attribute row mentioned attributes outside
    /// the lattice's universe (the bottom intent).
    UnknownAttributes {
        /// The offending object.
        object: usize,
    },
    /// An object was inserted twice (objects are inserted once).
    DuplicateObject {
        /// The offending object.
        object: usize,
    },
}

impl fmt::Display for LatticeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LatticeError::EmptyConceptSet => write!(f, "a concept lattice is never empty"),
            LatticeError::DuplicateExtent => write!(f, "duplicate extent in concept set"),
            LatticeError::UnknownAttributes { object } => write!(
                f,
                "object {object}: attributes outside the lattice's universe"
            ),
            LatticeError::DuplicateObject { object } => {
                write!(f, "object {object} already inserted")
            }
        }
    }
}

impl std::error::Error for LatticeError {}

/// A budget-stopped [`ConceptLattice::try_build`]: the typed error plus
/// a *valid* lattice over the first [`PartialBuild::objects_inserted`]
/// objects of the context (prefix-exact, see
/// [`crate::godin::BudgetStop`]).
#[derive(Debug)]
pub struct PartialBuild {
    /// Why the build stopped.
    pub error: cable_guard::GuardError,
    /// The lattice of the context restricted to the inserted prefix.
    pub lattice: ConceptLattice,
    /// How many leading objects of the context the lattice covers.
    pub objects_inserted: usize,
}

/// The complete lattice of concepts of a context, with its Hasse diagram.
///
/// The order is the paper's: `(X₀,Y₀) ≤ (X₁,Y₁)` iff `X₀ ⊆ X₁` iff
/// `Y₀ ⊇ Y₁`. *Children* of a concept are the concepts it covers
/// (immediately smaller extents); *parents* are the covering concepts.
/// The top concept has all objects in its extent; the bottom has the
/// largest intent.
#[derive(Debug, Clone)]
pub struct ConceptLattice {
    concepts: Vec<Concept>,
    children: Vec<Vec<ConceptId>>,
    parents: Vec<Vec<ConceptId>>,
    top: ConceptId,
    bottom: ConceptId,
    extent_index: HashMap<BitSet, ConceptId>,
}

impl ConceptLattice {
    /// Builds the lattice of a context with Godin's incremental algorithm
    /// (the paper's choice). Large contexts are built shard-and-merge on
    /// the [`cable_par`] pool when it has workers
    /// ([`crate::godin::concepts_auto`]); the concept set — and therefore
    /// the lattice, whose order is canonical — is identical either way.
    pub fn build(ctx: &Context) -> Self {
        let _span = Span::enter("fca.lattice.build", &BUILD_NS);
        Self::from_concepts(crate::godin::concepts_auto(ctx))
    }

    /// Builds the lattice with Ganter's NextClosure (batch) algorithm.
    pub fn build_next_closure(ctx: &Context) -> Self {
        let _span = Span::enter("fca.lattice.build", &BUILD_NS);
        Self::from_concepts(crate::next_closure::concepts(ctx))
    }

    /// [`ConceptLattice::build`] under the installed `cable-guard`
    /// budget: the Godin insertion loop checkpoints before every object
    /// and checks the concept-count ceiling after it.
    ///
    /// When a budget is active the build is forced onto the sequential
    /// guarded path, so a budget-exceeded stop lands at the same object
    /// whatever `CABLE_PAR` is — the partial lattice is bit-identical
    /// across worker counts. With nothing installed this is [`build`]
    /// (including the sharded path) plus one relaxed atomic load per
    /// object.
    ///
    /// [`build`]: ConceptLattice::build
    ///
    /// # Errors
    ///
    /// A [`PartialBuild`] carrying the typed [`cable_guard::GuardError`]
    /// and a valid lattice over the inserted prefix of the context —
    /// never a panic, never a hang.
    pub fn try_build(ctx: &Context) -> Result<Self, Box<PartialBuild>> {
        let _span = Span::enter("fca.lattice.build", &BUILD_NS);
        match crate::godin::try_concepts_auto(ctx) {
            Ok(concepts) => Ok(Self::from_concepts(concepts)),
            Err(stop) => Err(Box::new(PartialBuild {
                error: stop.error,
                lattice: Self::from_concepts(stop.partial),
                objects_inserted: stop.objects_inserted,
            })),
        }
    }

    /// Assembles a lattice (Hasse diagram, top, bottom) from a complete
    /// set of concepts.
    ///
    /// # Panics
    ///
    /// Panics if `concepts` is empty or contains duplicate extents. Use
    /// [`ConceptLattice::try_from_concepts`] when the concept set comes
    /// from untrusted input (a decoded snapshot, say) rather than a
    /// construction algorithm.
    pub fn from_concepts(concepts: Vec<Concept>) -> Self {
        match Self::try_from_concepts(concepts) {
            Ok(lattice) => lattice,
            Err(e) => panic!("{e}"),
        }
    }

    /// Assembles a lattice from a complete set of concepts, reporting
    /// structural problems as typed errors instead of panicking.
    ///
    /// # Errors
    ///
    /// [`LatticeError::EmptyConceptSet`] or
    /// [`LatticeError::DuplicateExtent`].
    pub fn try_from_concepts(mut concepts: Vec<Concept>) -> Result<Self, LatticeError> {
        if concepts.is_empty() {
            return Err(LatticeError::EmptyConceptSet);
        }
        // Sort by decreasing extent size: index 0 is the top.
        concepts.sort_by(|a, b| {
            b.extent
                .len()
                .cmp(&a.extent.len())
                .then_with(|| a.intent.len().cmp(&b.intent.len()))
                .then_with(|| a.extent.cmp(&b.extent))
        });
        let n = concepts.len();
        let mut extent_index = HashMap::with_capacity(n);
        for (i, c) in concepts.iter().enumerate() {
            let prev = extent_index.insert(c.extent.clone(), ConceptId(i as u32));
            if prev.is_some() {
                return Err(LatticeError::DuplicateExtent);
            }
        }
        // Hasse diagram: for each concept d, its parents are the minimal
        // strict supersets of its extent.
        let hasse_span = Span::enter("fca.lattice.hasse", &HASSE_NS);
        let mut edges = 0u64;
        let mut children: Vec<Vec<ConceptId>> = vec![Vec::new(); n];
        let mut parents: Vec<Vec<ConceptId>> = vec![Vec::new(); n];
        for d in 0..n {
            // Strict supersets appear strictly earlier in sorted order.
            let supersets: Vec<usize> = (0..d)
                .filter(|&c| concepts[d].extent.is_proper_subset(&concepts[c].extent))
                .collect();
            for &c in &supersets {
                let minimal = supersets
                    .iter()
                    .all(|&e| e == c || !concepts[e].extent.is_proper_subset(&concepts[c].extent));
                if minimal {
                    children[c].push(ConceptId(d as u32));
                    parents[d].push(ConceptId(c as u32));
                    edges += 1;
                }
            }
        }
        drop(hasse_span);
        HASSE_EDGES.get().add(edges);
        LATTICES_BUILT.get().incr();
        let top = ConceptId(0);
        let bottom = ConceptId(
            (0..n)
                .max_by_key(|&i| concepts[i].intent.len())
                .expect("nonempty") as u32,
        );
        Ok(ConceptLattice {
            concepts,
            children,
            parents,
            top,
            bottom,
            extent_index,
        })
    }

    /// Number of concepts.
    pub fn len(&self) -> usize {
        self.concepts.len()
    }

    /// A lattice always has at least one concept; this is always `false`
    /// and exists for API completeness.
    pub fn is_empty(&self) -> bool {
        self.concepts.is_empty()
    }

    /// Looks up a concept.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn concept(&self, id: ConceptId) -> &Concept {
        &self.concepts[id.index()]
    }

    /// All concept ids, top first (sorted by decreasing extent size).
    pub fn ids(&self) -> impl Iterator<Item = ConceptId> {
        (0..self.concepts.len() as u32).map(ConceptId)
    }

    /// Iterates over `(id, concept)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ConceptId, &Concept)> {
        self.concepts
            .iter()
            .enumerate()
            .map(|(i, c)| (ConceptId(i as u32), c))
    }

    /// The top concept (extent = all objects).
    pub fn top(&self) -> ConceptId {
        self.top
    }

    /// The bottom concept (maximal intent).
    pub fn bottom(&self) -> ConceptId {
        self.bottom
    }

    /// The concepts covered by `id` (immediately below).
    pub fn children(&self, id: ConceptId) -> &[ConceptId] {
        &self.children[id.index()]
    }

    /// The concepts covering `id` (immediately above).
    pub fn parents(&self, id: ConceptId) -> &[ConceptId] {
        &self.parents[id.index()]
    }

    /// Tests the lattice order: `a ≤ b` iff `extent(a) ⊆ extent(b)`.
    pub fn le(&self, a: ConceptId, b: ConceptId) -> bool {
        self.concept(a).extent.is_subset(&self.concept(b).extent)
    }

    /// Finds the concept with exactly this extent.
    pub fn find_by_extent(&self, extent: &BitSet) -> Option<ConceptId> {
        self.extent_index.get(extent).copied()
    }

    /// Finds the concept with exactly this intent.
    pub fn find_by_intent(&self, intent: &BitSet) -> Option<ConceptId> {
        self.iter()
            .find(|(_, c)| &c.intent == intent)
            .map(|(id, _)| id)
    }

    /// The meet (greatest lower bound) of two concepts: the concept whose
    /// extent is the closure of the intersection of their extents — which
    /// for concepts is the intersection itself.
    pub fn meet(&self, a: ConceptId, b: ConceptId) -> ConceptId {
        let extent = self.concept(a).extent.intersection(&self.concept(b).extent);
        // Invariant, not input validation: concept lattices are closed
        // under extent intersection, so a miss here means the lattice was
        // built from a non-closed concept set — a construction bug, not a
        // condition a caller can provoke with bad input.
        self.find_by_extent(&extent)
            .expect("extent intersection is always an extent")
    }

    /// The join (least upper bound) of two concepts: the least concept
    /// whose extent contains both extents.
    pub fn join(&self, a: ConceptId, b: ConceptId) -> ConceptId {
        let union = self.concept(a).extent.union(&self.concept(b).extent);
        // Walk candidates top-down: ids are sorted by decreasing extent
        // size, so the last superset in id order is the least one.
        // Invariant: the top concept's extent contains every object, so
        // the filter can never be empty for in-range ids.
        self.ids()
            .filter(|&c| union.is_subset(&self.concept(c).extent))
            .last()
            .expect("top is always an upper bound")
    }

    /// Concepts in breadth-first top-down order (each concept appears
    /// once, when first reached).
    pub fn bfs_top_down(&self) -> Vec<ConceptId> {
        let mut seen = vec![false; self.len()];
        let mut order = Vec::with_capacity(self.len());
        let mut queue = std::collections::VecDeque::from([self.top]);
        seen[self.top.index()] = true;
        while let Some(c) = queue.pop_front() {
            order.push(c);
            for &child in self.children(c) {
                if !seen[child.index()] {
                    seen[child.index()] = true;
                    queue.push_back(child);
                }
            }
        }
        order
    }

    /// Incrementally inserts a new object (Godin's algorithm), returning
    /// the updated lattice. The concept set is maintained incrementally;
    /// the Hasse diagram is recomputed.
    ///
    /// This is the §6 "interactive algorithms" extension: a live Cable
    /// session can absorb freshly reported traces without rebuilding the
    /// whole lattice from its context.
    ///
    /// # Panics
    ///
    /// Panics if `object` already occurs in an extent (objects are
    /// inserted once), or `attrs` mentions attributes outside the
    /// lattice's attribute universe (the bottom intent). Use
    /// [`ConceptLattice::try_insert_object`] when the row comes from
    /// untrusted input.
    pub fn insert_object(self, object: usize, attrs: &cable_util::BitSet) -> ConceptLattice {
        match self.try_insert_object(object, attrs) {
            Ok(lattice) => lattice,
            Err((e, _)) => panic!("{e}"),
        }
    }

    /// [`ConceptLattice::insert_object`] with typed errors: a rejected
    /// insertion hands the untouched lattice back alongside the error.
    ///
    /// # Errors
    ///
    /// [`LatticeError::UnknownAttributes`] or
    /// [`LatticeError::DuplicateObject`], paired with `self` unchanged.
    // The Err variant deliberately hands the (large, by-value) lattice
    // back to the caller rather than dropping it.
    #[allow(clippy::result_large_err)]
    pub fn try_insert_object(
        self,
        object: usize,
        attrs: &cable_util::BitSet,
    ) -> Result<ConceptLattice, (LatticeError, ConceptLattice)> {
        let bottom_intent = &self.concepts[self.bottom.index()].intent;
        if !attrs.is_subset(bottom_intent) {
            return Err((LatticeError::UnknownAttributes { object }, self));
        }
        if self.concepts[self.top.index()].extent.contains(object) {
            return Err((LatticeError::DuplicateObject { object }, self));
        }
        let mut concepts = self.concepts;
        crate::godin::add_object(&mut concepts, object, attrs);
        Ok(ConceptLattice::from_concepts(concepts))
    }

    /// Incrementally inserts a batch of new objects (Godin's algorithm),
    /// returning the updated lattice.
    ///
    /// Unlike repeated [`ConceptLattice::insert_object`] calls, this
    /// builds the [`crate::godin::Inserter`]'s cardinality buckets once
    /// and keeps them alive across the whole batch (one
    /// `fca.godin.bucket_reuses` tick per object, zero
    /// `fca.godin.bucket_rebuilds`), and recomputes the Hasse diagram
    /// once at the end. This is the ingest path of a resumed
    /// `cable-store` session: N appended traces extend the persisted
    /// lattice without a full Godin rebuild.
    ///
    /// # Panics
    ///
    /// Panics if any object already occurs in an extent, or any attribute
    /// row mentions attributes outside the lattice's universe (the
    /// bottom intent). Use [`ConceptLattice::try_insert_objects`] when
    /// the rows come from untrusted input.
    pub fn insert_objects<'a, I>(self, objects: I) -> ConceptLattice
    where
        I: IntoIterator<Item = (usize, &'a cable_util::BitSet)>,
    {
        match self.try_insert_objects(objects) {
            Ok(lattice) => lattice,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`ConceptLattice::insert_objects`] with typed errors.
    ///
    /// The batch is validated per object *before* its insertion, so on
    /// error the already-inserted prefix is simply discarded with the
    /// partially grown concept set — callers that need the prefix should
    /// validate rows up front or insert one at a time with
    /// [`ConceptLattice::try_insert_object`].
    ///
    /// # Errors
    ///
    /// [`LatticeError::UnknownAttributes`] or
    /// [`LatticeError::DuplicateObject`] for the first offending object.
    pub fn try_insert_objects<'a, I>(self, objects: I) -> Result<ConceptLattice, LatticeError>
    where
        I: IntoIterator<Item = (usize, &'a cable_util::BitSet)>,
    {
        let bottom_intent = self.concepts[self.bottom.index()].intent.clone();
        // The top extent is the set of all previously inserted objects;
        // track it directly since the top concept itself may be replaced
        // mid-batch.
        let mut inserted = self.concepts[self.top.index()].extent.clone();
        let mut concepts = self.concepts;
        let mut inserter = crate::godin::Inserter::new(&concepts, bottom_intent.len());
        for (object, attrs) in objects {
            if !attrs.is_subset(&bottom_intent) {
                return Err(LatticeError::UnknownAttributes { object });
            }
            if inserted.contains(object) {
                return Err(LatticeError::DuplicateObject { object });
            }
            inserted.insert(object);
            inserter.add_object(&mut concepts, object, attrs);
        }
        Ok(ConceptLattice::from_concepts(concepts))
    }

    /// The height of the lattice: the number of concepts on a longest
    /// chain from top to bottom.
    pub fn height(&self) -> usize {
        // Longest path in the DAG of cover edges, top-down.
        let mut depth = vec![0usize; self.len()];
        // ids sorted by decreasing extent size is a topological order.
        for id in self.ids() {
            for &child in self.children(id) {
                depth[child.index()] = depth[child.index()].max(depth[id.index()] + 1);
            }
        }
        depth.iter().max().copied().unwrap_or(0) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn animals() -> (Context, ConceptLattice) {
        let mut ctx = Context::new(5, 5);
        for (o, attrs) in [
            (0usize, vec![0usize, 1]),
            (1, vec![1, 2, 4]),
            (2, vec![2, 3]),
            (3, vec![2, 4]),
            (4, vec![2, 3]),
        ] {
            for a in attrs {
                ctx.add(o, a);
            }
        }
        let lattice = ConceptLattice::build(&ctx);
        (ctx, lattice)
    }

    #[test]
    fn top_and_bottom() {
        let (_, l) = animals();
        assert_eq!(l.len(), 8);
        assert_eq!(l.concept(l.top()).extent.len(), 5);
        assert!(l.concept(l.top()).intent.is_empty());
        assert!(l.concept(l.bottom()).extent.is_empty());
        assert_eq!(l.concept(l.bottom()).intent.len(), 5);
    }

    #[test]
    fn hasse_edges_are_covers() {
        let (_, l) = animals();
        for id in l.ids() {
            for &child in l.children(id) {
                assert!(l.le(child, id));
                assert_ne!(child, id);
                // No concept strictly between.
                for mid in l.ids() {
                    if mid != id && mid != child {
                        assert!(
                            !(l.le(child, mid) && l.le(mid, id)),
                            "{mid} between {child} and {id}"
                        );
                    }
                }
                // parents is the inverse relation.
                assert!(l.parents(child).contains(&id));
            }
        }
    }

    #[test]
    fn similarity_increases_downward() {
        let (_, l) = animals();
        for id in l.ids() {
            for &child in l.children(id) {
                assert!(l.concept(child).similarity() >= l.concept(id).similarity());
            }
        }
    }

    #[test]
    fn meet_and_join() {
        let (_, l) = animals();
        // Concepts for {hair-covered} (cats+gibbons) and {intelligent}.
        let hair = l
            .find_by_intent(&BitSet::singleton(1))
            .expect("hair concept");
        let intel = l
            .find_by_intent(&BitSet::singleton(2))
            .expect("intelligent concept");
        let meet = l.meet(hair, intel);
        // gibbons only: {hair-covered, intelligent, thumbed}.
        assert_eq!(l.concept(meet).extent.to_vec(), vec![1]);
        let join = l.join(hair, intel);
        assert_eq!(join, l.top());
        // meet/join with self are identity.
        assert_eq!(l.meet(hair, hair), hair);
        assert_eq!(l.join(hair, hair), hair);
        // Order relations.
        assert!(l.le(meet, hair));
        assert!(l.le(meet, intel));
    }

    #[test]
    fn bfs_starts_at_top_and_respects_order() {
        let (_, l) = animals();
        let order = l.bfs_top_down();
        assert_eq!(order.len(), l.len());
        assert_eq!(order[0], l.top());
        let position: Vec<usize> = {
            let mut pos = vec![0; l.len()];
            for (i, id) in order.iter().enumerate() {
                pos[id.index()] = i;
            }
            pos
        };
        for id in l.ids() {
            for &child in l.children(id) {
                assert!(position[child.index()] > position[id.index()]);
            }
        }
    }

    #[test]
    fn find_by_extent_and_intent_agree() {
        let (_, l) = animals();
        for (id, c) in l.iter() {
            assert_eq!(l.find_by_extent(&c.extent), Some(id));
            assert_eq!(l.find_by_intent(&c.intent), Some(id));
        }
        assert_eq!(l.find_by_extent(&BitSet::singleton(999)), None);
    }

    #[test]
    fn height_of_animals() {
        let (_, l) = animals();
        // top > {intelligent} > {intelligent,thumbed} >
        // {hair,intelligent,thumbed} > bottom: 5 concepts on the chain.
        assert_eq!(l.height(), 5);
    }

    #[test]
    fn single_concept_lattice() {
        let ctx = Context::new(2, 0);
        let l = ConceptLattice::build(&ctx);
        assert_eq!(l.len(), 1);
        assert_eq!(l.top(), l.bottom());
        assert!(l.children(l.top()).is_empty());
        assert_eq!(l.height(), 1);
        assert!(!l.is_empty());
    }

    #[test]
    fn insert_object_matches_batch_build() {
        // Build the animals lattice incrementally object by object.
        let mut ctx = Context::new(5, 5);
        for (o, attrs) in [
            (0usize, vec![0usize, 1]),
            (1, vec![1, 2, 4]),
            (2, vec![2, 3]),
            (3, vec![2, 4]),
            (4, vec![2, 3]),
        ] {
            for a in attrs {
                ctx.add(o, a);
            }
        }
        let batch = ConceptLattice::build(&ctx);
        let mut incremental = ConceptLattice::from_concepts(vec![Concept {
            extent: BitSet::new(),
            intent: BitSet::full(5),
        }]);
        for o in 0..5 {
            incremental = incremental.insert_object(o, ctx.row(o));
        }
        assert_eq!(incremental.len(), batch.len());
        for (_, c) in batch.iter() {
            let id = incremental.find_by_extent(&c.extent).expect("same extents");
            assert_eq!(incremental.concept(id).intent, c.intent);
        }
        // Hasse edges agree too (same canonical order after sorting).
        for id in batch.ids() {
            assert_eq!(
                batch.children(id).len(),
                incremental.children(id).len(),
                "{id}"
            );
        }
    }

    #[test]
    fn insert_objects_matches_batch_build() {
        // Split the animals context: build over the first two objects,
        // then batch-insert the remaining three.
        let mut ctx = Context::new(5, 5);
        for (o, attrs) in [
            (0usize, vec![0usize, 1]),
            (1, vec![1, 2, 4]),
            (2, vec![2, 3]),
            (3, vec![2, 4]),
            (4, vec![2, 3]),
        ] {
            for a in attrs {
                ctx.add(o, a);
            }
        }
        let mut base = Context::new(2, 5);
        for o in 0..2 {
            for a in ctx.row(o).iter() {
                base.add(o, a);
            }
        }
        let before = cable_obs::registry().snapshot();
        let grown = ConceptLattice::build(&base).insert_objects((2..5).map(|o| (o, ctx.row(o))));
        let delta = cable_obs::registry().snapshot().delta_since(&before);
        let batch = ConceptLattice::build(&ctx);
        assert_eq!(grown.len(), batch.len());
        for (_, c) in batch.iter() {
            let id = grown.find_by_extent(&c.extent).expect("same extents");
            assert_eq!(grown.concept(id).intent, c.intent);
        }
        // The whole batch reused one live bucket table. (Counters are
        // process-wide; `build(&ctx)` ran after the snapshot delta.)
        assert!(delta.counter("fca.godin.bucket_reuses").unwrap_or(0) >= 3);
        assert_eq!(delta.counter("fca.godin.bucket_rebuilds").unwrap_or(0), 0);
    }

    #[test]
    fn insert_objects_of_nothing_is_identity() {
        let (_, l) = animals();
        let n = l.len();
        let l = l.insert_objects(std::iter::empty());
        assert_eq!(l.len(), n);
    }

    #[test]
    #[should_panic(expected = "already inserted")]
    fn insert_objects_rejects_duplicates_within_the_batch() {
        let lattice = ConceptLattice::from_concepts(vec![Concept {
            extent: BitSet::new(),
            intent: BitSet::full(2),
        }]);
        let row = BitSet::singleton(0);
        let _ = lattice.insert_objects([(0, &row), (0, &row)]);
    }

    #[test]
    #[should_panic(expected = "already inserted")]
    fn insert_object_rejects_duplicates() {
        let lattice = ConceptLattice::from_concepts(vec![Concept {
            extent: BitSet::new(),
            intent: BitSet::full(2),
        }]);
        let row = BitSet::singleton(0);
        let lattice = lattice.insert_object(0, &row);
        let _ = lattice.insert_object(0, &row);
    }

    #[test]
    #[should_panic(expected = "outside the lattice's universe")]
    fn insert_object_rejects_unknown_attributes() {
        let lattice = ConceptLattice::from_concepts(vec![Concept {
            extent: BitSet::new(),
            intent: BitSet::full(2),
        }]);
        let _ = lattice.insert_object(0, &BitSet::singleton(7));
    }

    #[test]
    fn godin_and_next_closure_agree_on_animals() {
        let (ctx, _) = animals();
        let a = ConceptLattice::build(&ctx);
        let b = ConceptLattice::build_next_closure(&ctx);
        assert_eq!(a.len(), b.len());
        for (id, c) in a.iter() {
            let id2 = b.find_by_extent(&c.extent).expect("same extents");
            assert_eq!(b.concept(id2).intent, c.intent);
            let _ = id;
        }
    }
}
