//! Hierarchical agglomerative clustering (HAC) — the distance-based
//! alternative §6 suggests comparing against.
//!
//! "Concept analysis is not the only hierarchical technique for
//! clustering data with discrete attributes. Other techniques cluster
//! spatially by defining a distance metric … It would be worthwhile to
//! investigate these alternative approaches."
//!
//! This module clusters the same objects (attribute rows of a
//! [`Context`]) bottom-up under Jaccard distance, producing a
//! [`Dendrogram`]. Unlike the concept lattice, a dendrogram is a *tree*:
//! clusters never overlap, so a labeling that needs overlapping clusters
//! can be strictly cheaper on the lattice. The
//! `cable-bench` harness compares minimum labeling costs on both
//! structures.

use crate::context::Context;
use cable_util::BitSet;

/// The linkage criterion: how the distance between clusters is derived
/// from the pairwise object distances.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Linkage {
    /// Minimum pairwise distance.
    Single,
    /// Maximum pairwise distance.
    Complete,
    /// Unweighted average pairwise distance (UPGMA).
    Average,
}

/// One node of a dendrogram.
#[derive(Debug, Clone)]
pub struct DendroNode {
    /// The objects below this node.
    pub members: BitSet,
    /// The two merged children, if this is an internal node.
    pub children: Option<(usize, usize)>,
    /// The merge distance (0 for leaves).
    pub height: f64,
}

/// A binary merge tree over the context's objects. The first
/// `object_count` nodes are the leaves, in object order; internal nodes
/// follow in merge order; the last node (if any objects exist) is the
/// root.
#[derive(Debug, Clone)]
pub struct Dendrogram {
    nodes: Vec<DendroNode>,
    n_objects: usize,
}

impl Dendrogram {
    /// All nodes, leaves first then merges in order.
    pub fn nodes(&self) -> &[DendroNode] {
        &self.nodes
    }

    /// Number of leaf objects.
    pub fn object_count(&self) -> usize {
        self.n_objects
    }

    /// The root node index, if there is at least one object.
    pub fn root(&self) -> Option<usize> {
        if self.nodes.is_empty() {
            None
        } else {
            Some(self.nodes.len() - 1)
        }
    }

    /// The minimum number of *cluster decisions* needed to realise a
    /// labeling: the number of maximal dendrogram nodes whose members all
    /// share a label. Because dendrogram clusters never overlap, this is
    /// exactly one `Label`-style command per counted node (compare
    /// `strategy::optimal`'s command count on the lattice).
    pub fn min_uniform_cover<L, F>(&self, label_of: F) -> usize
    where
        L: PartialEq,
        F: Fn(usize) -> L,
    {
        let Some(root) = self.root() else {
            return 0;
        };
        // A node is uniform iff all members share a label; count nodes
        // that are uniform while their parent is not (the root counts if
        // uniform).
        let uniform: Vec<bool> = self
            .nodes
            .iter()
            .map(|n| {
                let mut first: Option<L> = None;
                for o in n.members.iter() {
                    let l = label_of(o);
                    match &first {
                        None => first = Some(l),
                        Some(f) => {
                            if *f != l {
                                return false;
                            }
                        }
                    }
                }
                true
            })
            .collect();
        let mut count = 0;
        let mut stack = vec![root];
        while let Some(i) = stack.pop() {
            if uniform[i] {
                count += 1;
            } else if let Some((a, b)) = self.nodes[i].children {
                stack.push(a);
                stack.push(b);
            } else {
                // Invariant, not reachable from user input: a node with
                // no children is a leaf, whose member set is one object,
                // and a single object always satisfies the `uniform`
                // closure above (its `first` label equals itself). Only
                // a bug in dendrogram construction could land here.
                unreachable!("a leaf is always uniform");
            }
        }
        count
    }
}

/// The Jaccard distance between two attribute sets:
/// `1 − |A∩B| / |A∪B|` (0 for two empty sets).
pub fn jaccard_distance(a: &BitSet, b: &BitSet) -> f64 {
    let union = a.union(b).len();
    if union == 0 {
        0.0
    } else {
        1.0 - a.intersection_len(b) as f64 / union as f64
    }
}

/// Clusters the context's objects bottom-up under Jaccard distance with
/// the given linkage.
pub fn cluster(ctx: &Context, linkage: Linkage) -> Dendrogram {
    let n = ctx.object_count();
    let mut nodes: Vec<DendroNode> = (0..n)
        .map(|o| DendroNode {
            members: BitSet::singleton(o),
            children: None,
            height: 0.0,
        })
        .collect();
    // Pairwise object distances.
    let dist = |a: usize, b: usize| jaccard_distance(ctx.row(a), ctx.row(b));
    // Active cluster node indices.
    let mut active: Vec<usize> = (0..n).collect();
    while active.len() > 1 {
        // Find the closest pair under the linkage.
        let mut best = (0usize, 1usize, f64::INFINITY);
        for i in 0..active.len() {
            for j in (i + 1)..active.len() {
                let d = linkage_distance(
                    &nodes[active[i]].members,
                    &nodes[active[j]].members,
                    linkage,
                    &dist,
                );
                if d < best.2 {
                    best = (i, j, d);
                }
            }
        }
        let (i, j, d) = best;
        let (a, b) = (active[i], active[j]);
        let members = nodes[a].members.union(&nodes[b].members);
        nodes.push(DendroNode {
            members,
            children: Some((a, b)),
            height: d,
        });
        let merged = nodes.len() - 1;
        // Remove j first (j > i).
        active.remove(j);
        active.remove(i);
        active.push(merged);
    }
    Dendrogram {
        nodes,
        n_objects: n,
    }
}

fn linkage_distance<D>(a: &BitSet, b: &BitSet, linkage: Linkage, dist: &D) -> f64
where
    D: Fn(usize, usize) -> f64,
{
    let mut min = f64::INFINITY;
    let mut max = 0.0f64;
    let mut sum = 0.0;
    let mut count = 0usize;
    for x in a.iter() {
        for y in b.iter() {
            let d = dist(x, y);
            min = min.min(d);
            max = max.max(d);
            sum += d;
            count += 1;
        }
    }
    match linkage {
        Linkage::Single => min,
        Linkage::Complete => max,
        Linkage::Average => {
            if count == 0 {
                0.0
            } else {
                sum / count as f64
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_of(rows: &[&[usize]], m: usize) -> Context {
        let mut ctx = Context::new(rows.len(), m);
        for (o, row) in rows.iter().enumerate() {
            for &a in *row {
                ctx.add(o, a);
            }
        }
        ctx
    }

    #[test]
    fn jaccard_basics() {
        let a: BitSet = [0usize, 1].into_iter().collect();
        let b: BitSet = [1usize, 2].into_iter().collect();
        assert!((jaccard_distance(&a, &a)).abs() < 1e-12);
        assert!((jaccard_distance(&a, &b) - (1.0 - 1.0 / 3.0)).abs() < 1e-12);
        assert_eq!(jaccard_distance(&BitSet::new(), &BitSet::new()), 0.0);
        assert_eq!(jaccard_distance(&a, &BitSet::new()), 1.0);
    }

    #[test]
    fn dendrogram_structure() {
        let ctx = ctx_of(&[&[0], &[0], &[1]], 2);
        let d = cluster(&ctx, Linkage::Average);
        // n leaves + n-1 merges.
        assert_eq!(d.nodes().len(), 5);
        assert_eq!(d.object_count(), 3);
        let root = d.root().expect("nonempty");
        assert_eq!(d.nodes()[root].members.len(), 3);
        // The identical pair merges first, at distance 0.
        let first_merge = &d.nodes()[3];
        assert_eq!(first_merge.members.to_vec(), vec![0, 1]);
        assert!(first_merge.height.abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton() {
        let d = cluster(&Context::new(0, 2), Linkage::Single);
        assert!(d.root().is_none());
        assert_eq!(d.min_uniform_cover(|_| 0), 0);
        let d = cluster(&ctx_of(&[&[0]], 1), Linkage::Single);
        assert_eq!(d.root(), Some(0));
        assert_eq!(d.min_uniform_cover(|_| 0), 1);
    }

    #[test]
    fn min_uniform_cover_counts_maximal_uniform_nodes() {
        // Two similar objects labeled x; one distant object labeled y.
        let ctx = ctx_of(&[&[0, 1], &[0, 1], &[2]], 3);
        let d = cluster(&ctx, Linkage::Average);
        let labels = ["x", "x", "y"];
        assert_eq!(d.min_uniform_cover(|o| labels[o]), 2);
        // Uniform labeling needs one decision (the root).
        assert_eq!(d.min_uniform_cover(|_| "same"), 1);
        // All-distinct labeling degenerates to one decision per leaf.
        assert_eq!(d.min_uniform_cover(|o| o), 3);
    }

    #[test]
    fn linkages_agree_on_clean_separation() {
        let ctx = ctx_of(&[&[0, 1], &[0, 1], &[4, 5], &[4, 5]], 6);
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let d = cluster(&ctx, linkage);
            let labels = ["a", "a", "b", "b"];
            assert_eq!(d.min_uniform_cover(|o| labels[o]), 2, "{linkage:?}");
        }
    }

    #[test]
    fn overlapping_labelings_can_favour_the_lattice() {
        // Three objects: {a}, {a,b}, {b}. The labeling good/good/bad is
        // realisable with 2 lattice commands (concept {a}-ish covers 0,1)
        // but the dendrogram must merge 1 with either 0 or 2; if it
        // merges 1 with 2 first, the cover costs 3. We only assert the
        // dendrogram never beats the optimal overlap-aware cover of 2.
        let ctx = ctx_of(&[&[0], &[0, 1], &[1]], 2);
        let labels = ["g", "g", "b"];
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let d = cluster(&ctx, linkage);
            assert!(d.min_uniform_cover(|o| labels[o]) >= 2);
        }
    }
}
