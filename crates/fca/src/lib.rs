//! Formal concept analysis (FCA).
//!
//! Concept analysis (§3 of the paper, after Wille) takes a set `O` of
//! objects, a set `A` of attributes, and a relation `R ⊆ O × A`, and
//! produces the complete lattice of *concepts*: pairs `(X, Y)` with
//! `σ(X) = Y` and `τ(Y) = X`, where `σ(X)` is the set of attributes shared
//! by all objects in `X` and `τ(Y)` the set of objects enjoying all
//! attributes in `Y`.
//!
//! In Cable, objects are traces and attributes are the transitions of a
//! reference FA that each trace can execute; the similarity of a set of
//! traces is `sim(X) = |σ(X)|`, which grows as one moves *down* the
//! lattice — the property that makes hierarchical labeling work.
//!
//! Two construction algorithms are provided:
//!
//! * [`godin`] — the incremental algorithm of Godin, Missaoui & Alaoui
//!   (Algorithm 1), the one the paper uses and times in Table 2;
//! * [`next_closure`] — Ganter's batch NextClosure enumeration, used as a
//!   differential-testing reference.
//!
//! # Examples
//!
//! The animals example of Figure 9/10 (from Siff's thesis):
//!
//! ```
//! use cable_fca::{Context, ConceptLattice};
//!
//! let mut ctx = Context::new(5, 5);
//! // objects: cats gibbons dolphins humans whales
//! // attributes: four-legged hair-covered intelligent marine thumbed
//! for (o, attrs) in [
//!     (0, vec![0, 1]),
//!     (1, vec![1, 2, 4]),
//!     (2, vec![2, 3]),
//!     (3, vec![2, 4]),
//!     (4, vec![2, 3]),
//! ] {
//!     for a in attrs {
//!         ctx.add(o, a);
//!     }
//! }
//! let lattice = ConceptLattice::build(&ctx);
//! assert_eq!(lattice.len(), 8);
//! ```

pub mod context;
pub mod dot;
pub mod godin;
pub mod hac;
pub mod lattice;
pub mod next_closure;

pub use context::Context;
pub use lattice::{Concept, ConceptId, ConceptLattice, LatticeError, PartialBuild};
