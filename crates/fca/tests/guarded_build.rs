//! Guarded lattice builds: budget-exceeded stops return *valid partial
//! lattices* (prefix-exact — equal to the lattice of the truncated
//! context), cancellation bails the sharded path, and an absent guard
//! changes nothing.
//!
//! Budgets and cancellation are process-global, so these tests live in
//! their own integration binary and serialise on a local mutex.

use cable_fca::{ConceptLattice, Context, LatticeError};
use cable_guard::{Budget, GuardError, Limit};
use cable_util::BitSet;
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

fn lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// A deterministic random context (same generator as the godin tests).
fn random_ctx(seed: u64, n_objects: usize, n_attrs: usize, density: f64) -> Context {
    use cable_util::rng::Rng;
    let mut rng = cable_util::rng::seeded(seed);
    let mut ctx = Context::new(n_objects, n_attrs);
    for o in 0..n_objects {
        for a in 0..n_attrs {
            if rng.gen_bool(density) {
                ctx.add(o, a);
            }
        }
    }
    ctx
}

/// The context restricted to its first `k` objects.
fn prefix(ctx: &Context, k: usize) -> Context {
    let mut sub = Context::new(k, ctx.attribute_count());
    for o in 0..k {
        for a in ctx.row(o).iter() {
            sub.add(o, a);
        }
    }
    sub
}

fn concept_set(l: &ConceptLattice) -> std::collections::BTreeSet<(BitSet, BitSet)> {
    l.iter()
        .map(|(_, c)| (c.extent.clone(), c.intent.clone()))
        .collect()
}

#[test]
fn try_build_without_a_guard_equals_build() {
    let _l = lock();
    let ctx = random_ctx(3, 90, 8, 0.3);
    let guarded = ConceptLattice::try_build(&ctx).expect("no budget installed");
    let plain = ConceptLattice::build(&ctx);
    assert_eq!(concept_set(&guarded), concept_set(&plain));
}

/// The budget-determinism acceptance criterion, in-process: a
/// concept-ceiling stop yields the exact lattice of the truncated
/// context — a valid result a caller can label, diff, and persist.
#[test]
fn concept_ceiling_stop_is_prefix_exact() {
    let _l = lock();
    let ctx = random_ctx(5, 120, 9, 0.3);
    let full = ConceptLattice::build(&ctx);
    let ceiling = full.len() as u64 / 2;
    let guard = Budget {
        max_concepts: Some(ceiling),
        ..Budget::default()
    }
    .install();
    let stop = ConceptLattice::try_build(&ctx).expect_err("ceiling must trip");
    drop(guard);

    match &stop.error {
        GuardError::BudgetExceeded {
            limit: Limit::Concepts { limit, reached },
            ..
        } => {
            assert_eq!(*limit, ceiling);
            assert!(*reached > ceiling);
        }
        other => panic!("expected a concept-ceiling trip, got {other:?}"),
    }
    assert!(stop.objects_inserted < ctx.object_count());
    let expected = ConceptLattice::build(&prefix(&ctx, stop.objects_inserted));
    assert_eq!(
        concept_set(&stop.lattice),
        concept_set(&expected),
        "partial lattice must equal the truncated context's lattice"
    );
}

#[test]
fn expired_deadline_stops_before_the_first_object() {
    let _l = lock();
    let ctx = random_ctx(1, 40, 6, 0.3);
    let guard = Budget {
        deadline: Some(Duration::ZERO),
        ..Budget::default()
    }
    .install();
    let stop = ConceptLattice::try_build(&ctx).expect_err("expired deadline must trip");
    drop(guard);
    assert!(matches!(
        stop.error,
        GuardError::BudgetExceeded {
            limit: Limit::Deadline { .. },
            ..
        }
    ));
    assert_eq!(stop.objects_inserted, 0);
    // The empty prefix still has a lattice: the (∅, A) seed concept.
    assert_eq!(stop.lattice.len(), 1);
}

#[test]
fn memory_ceiling_stop_is_prefix_exact() {
    let _l = lock();
    let ctx = random_ctx(9, 100, 9, 0.35);
    let guard = Budget {
        max_mem_bytes: Some(2_000),
        ..Budget::default()
    }
    .install();
    let stop = ConceptLattice::try_build(&ctx).expect_err("memory ceiling must trip");
    drop(guard);
    assert!(matches!(
        stop.error,
        GuardError::BudgetExceeded {
            limit: Limit::Memory { .. },
            ..
        }
    ));
    let expected = ConceptLattice::build(&prefix(&ctx, stop.objects_inserted));
    assert_eq!(concept_set(&stop.lattice), concept_set(&expected));
}

/// The sharded (parallel) path honours cancellation: its cancel points
/// bail with the tunnelled guard payload, which `contain` maps back to
/// the typed error.
#[test]
fn cancellation_bails_the_sharded_path() {
    let _l = lock();
    let ctx = random_ctx(7, 96, 8, 0.3);
    cable_guard::cancel();
    let result = cable_guard::contain(|| cable_fca::godin::concepts_sharded(&ctx));
    cable_guard::clear_cancel();
    assert_eq!(result, Err(GuardError::Cancelled));
}

#[test]
fn try_from_concepts_reports_structural_errors() {
    let _l = lock();
    assert_eq!(
        ConceptLattice::try_from_concepts(Vec::new()).err(),
        Some(LatticeError::EmptyConceptSet)
    );
    let dup = cable_fca::Concept {
        extent: BitSet::singleton(0),
        intent: BitSet::singleton(1),
    };
    assert_eq!(
        ConceptLattice::try_from_concepts(vec![dup.clone(), dup]).err(),
        Some(LatticeError::DuplicateExtent)
    );
}

#[test]
fn try_insert_object_hands_back_the_untouched_lattice() {
    let _l = lock();
    let lattice = ConceptLattice::from_concepts(vec![cable_fca::Concept {
        extent: BitSet::new(),
        intent: BitSet::full(3),
    }]);
    let n = lattice.len();
    let (err, lattice) = lattice
        .try_insert_object(0, &BitSet::singleton(9))
        .expect_err("attribute 9 is outside the universe");
    assert_eq!(err, LatticeError::UnknownAttributes { object: 0 });
    assert_eq!(lattice.len(), n);

    let lattice = lattice
        .try_insert_object(0, &BitSet::singleton(1))
        .expect("valid insert");
    let (err, _) = lattice
        .try_insert_object(0, &BitSet::singleton(1))
        .expect_err("object 0 is already inserted");
    assert_eq!(err, LatticeError::DuplicateObject { object: 0 });
}

#[test]
fn try_insert_objects_reports_the_offending_object() {
    let _l = lock();
    let lattice = ConceptLattice::from_concepts(vec![cable_fca::Concept {
        extent: BitSet::new(),
        intent: BitSet::full(2),
    }]);
    let rows: Vec<BitSet> = vec![BitSet::singleton(0), BitSet::singleton(5)];
    let err = lattice
        .try_insert_objects(rows.iter().enumerate())
        .expect_err("second row is out of universe");
    assert_eq!(err, LatticeError::UnknownAttributes { object: 1 });
}
