//! Randomized tests for the FCA implementation.
//!
//! The key oracle: Godin's incremental algorithm and Ganter's NextClosure
//! must produce exactly the same concept set on random contexts, and the
//! resulting lattice must satisfy the laws §3.1 of the paper relies on.
//!
//! Each test runs a fixed number of seeded cases, so failures reproduce
//! exactly (`seeded(case)` pins the generator).

use cable_fca::{ConceptLattice, Context};
use cable_util::rng::{seeded, Rng, SmallRng};
use cable_util::BitSet;
use std::collections::HashSet;

/// A random context: up to 12 objects over up to 8 attributes, each row
/// drawn as an 8-bit attribute mask.
fn gen_context(rng: &mut SmallRng) -> Context {
    let n_attrs = rng.gen_range(1usize..=8);
    let n_rows = rng.gen_range(0usize..12);
    let bit_rows: Vec<BitSet> = (0..n_rows)
        .map(|_| {
            let bits = rng.gen_range(0u16..256);
            (0..n_attrs).filter(|&a| bits & (1 << a) != 0).collect()
        })
        .collect();
    Context::from_rows(bit_rows, n_attrs)
}

#[test]
fn godin_equals_next_closure() {
    for case in 0..128u64 {
        let ctx = gen_context(&mut seeded(case));
        let a: HashSet<_> = cable_fca::godin::concepts(&ctx)
            .into_iter()
            .map(|c| (c.extent, c.intent))
            .collect();
        let b: HashSet<_> = cable_fca::next_closure::concepts(&ctx)
            .into_iter()
            .map(|c| (c.extent, c.intent))
            .collect();
        assert_eq!(a, b, "case {case}");
    }
}

#[test]
fn concepts_are_closed_pairs() {
    for case in 0..128u64 {
        let ctx = gen_context(&mut seeded(case));
        for c in cable_fca::godin::concepts(&ctx) {
            assert_eq!(ctx.sigma(&c.extent), c.intent, "case {case}");
            assert_eq!(ctx.tau(&c.intent), c.extent, "case {case}");
        }
    }
}

#[test]
fn lattice_order_is_consistent() {
    for case in 0..128u64 {
        let ctx = gen_context(&mut seeded(case));
        let l = ConceptLattice::build(&ctx);
        // Every concept ≤ top, bottom ≤ every concept.
        for id in l.ids() {
            assert!(l.le(id, l.top()), "case {case}");
            assert!(l.le(l.bottom(), id), "case {case}");
        }
        // Subset lattice on extents == superset lattice on intents.
        for a in l.ids() {
            for b in l.ids() {
                let ext = l.concept(a).extent.is_subset(&l.concept(b).extent);
                let int = l.concept(b).intent.is_subset(&l.concept(a).intent);
                assert_eq!(ext, int, "case {case}");
            }
        }
    }
}

#[test]
fn similarity_is_antitone_on_lattice() {
    for case in 0..128u64 {
        let ctx = gen_context(&mut seeded(case));
        let l = ConceptLattice::build(&ctx);
        for id in l.ids() {
            for &child in l.children(id) {
                assert!(
                    l.concept(child).similarity() >= l.concept(id).similarity(),
                    "case {case}"
                );
            }
        }
    }
}

#[test]
fn meet_join_are_bounds() {
    for case in 0..128u64 {
        let ctx = gen_context(&mut seeded(case));
        let l = ConceptLattice::build(&ctx);
        let ids: Vec<_> = l.ids().collect();
        for &a in ids.iter().take(6) {
            for &b in ids.iter().take(6) {
                let m = l.meet(a, b);
                assert!(l.le(m, a) && l.le(m, b), "case {case}");
                let j = l.join(a, b);
                assert!(l.le(a, j) && l.le(b, j), "case {case}");
                // Meet is the greatest lower bound, join the least upper.
                for &c in &ids {
                    if l.le(c, a) && l.le(c, b) {
                        assert!(l.le(c, m), "case {case}");
                    }
                    if l.le(a, c) && l.le(b, c) {
                        assert!(l.le(j, c), "case {case}");
                    }
                }
            }
        }
    }
}

#[test]
fn bfs_reaches_every_concept() {
    for case in 0..128u64 {
        let ctx = gen_context(&mut seeded(case));
        let l = ConceptLattice::build(&ctx);
        let order = l.bfs_top_down();
        assert_eq!(order.len(), l.len(), "case {case}");
        let set: HashSet<_> = order.into_iter().collect();
        assert_eq!(set.len(), l.len(), "case {case}");
    }
}

#[test]
fn incremental_insertion_matches_batch() {
    for case in 0..128u64 {
        let ctx = gen_context(&mut seeded(case));
        let batch = ConceptLattice::build(&ctx);
        let mut incremental = ConceptLattice::from_concepts(vec![cable_fca::Concept {
            extent: BitSet::new(),
            intent: BitSet::full(ctx.attribute_count()),
        }]);
        for o in 0..ctx.object_count() {
            incremental = incremental.insert_object(o, ctx.row(o));
        }
        assert_eq!(incremental.len(), batch.len(), "case {case}");
        for (_, c) in batch.iter() {
            let id = incremental.find_by_extent(&c.extent);
            assert!(id.is_some(), "case {case}");
            assert_eq!(
                &incremental.concept(id.unwrap()).intent,
                &c.intent,
                "case {case}"
            );
        }
    }
}

#[test]
fn extent_intersection_is_an_extent() {
    for case in 0..128u64 {
        let ctx = gen_context(&mut seeded(case));
        // The property `meet` relies on.
        let l = ConceptLattice::build(&ctx);
        let ids: Vec<_> = l.ids().collect();
        for &a in ids.iter().take(8) {
            for &b in ids.iter().take(8) {
                let inter = l.concept(a).extent.intersection(&l.concept(b).extent);
                assert!(l.find_by_extent(&inter).is_some(), "case {case}");
            }
        }
    }
}
