//! Property-based tests for the FCA implementation.
//!
//! The key oracle: Godin's incremental algorithm and Ganter's NextClosure
//! must produce exactly the same concept set on random contexts, and the
//! resulting lattice must satisfy the laws §3.1 of the paper relies on.

use cable_fca::{ConceptLattice, Context};
use cable_util::BitSet;
use proptest::prelude::*;
use std::collections::HashSet;

/// A random context as a list of rows over up to 8 attributes.
fn arb_context() -> impl Strategy<Value = Context> {
    (1usize..=8, prop::collection::vec(0u16..256, 0..12)).prop_map(|(n_attrs, rows)| {
        let bit_rows: Vec<BitSet> = rows
            .iter()
            .map(|&bits| (0..n_attrs).filter(|&a| bits & (1 << a) != 0).collect())
            .collect();
        Context::from_rows(bit_rows, n_attrs)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn godin_equals_next_closure(ctx in arb_context()) {
        let a: HashSet<_> = cable_fca::godin::concepts(&ctx)
            .into_iter()
            .map(|c| (c.extent, c.intent))
            .collect();
        let b: HashSet<_> = cable_fca::next_closure::concepts(&ctx)
            .into_iter()
            .map(|c| (c.extent, c.intent))
            .collect();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn concepts_are_closed_pairs(ctx in arb_context()) {
        for c in cable_fca::godin::concepts(&ctx) {
            prop_assert_eq!(ctx.sigma(&c.extent), c.intent.clone());
            prop_assert_eq!(ctx.tau(&c.intent), c.extent.clone());
        }
    }

    #[test]
    fn lattice_order_is_consistent(ctx in arb_context()) {
        let l = ConceptLattice::build(&ctx);
        // Top contains every object with an identity; every concept ≤ top,
        // bottom ≤ every concept.
        for id in l.ids() {
            prop_assert!(l.le(id, l.top()));
            prop_assert!(l.le(l.bottom(), id));
        }
        // Subset lattice on extents == superset lattice on intents.
        for a in l.ids() {
            for b in l.ids() {
                let ext = l.concept(a).extent.is_subset(&l.concept(b).extent);
                let int = l.concept(b).intent.is_subset(&l.concept(a).intent);
                prop_assert_eq!(ext, int);
            }
        }
    }

    #[test]
    fn similarity_is_antitone_on_lattice(ctx in arb_context()) {
        let l = ConceptLattice::build(&ctx);
        for id in l.ids() {
            for &child in l.children(id) {
                prop_assert!(l.concept(child).similarity() >= l.concept(id).similarity());
            }
        }
    }

    #[test]
    fn meet_join_are_bounds(ctx in arb_context()) {
        let l = ConceptLattice::build(&ctx);
        let ids: Vec<_> = l.ids().collect();
        for &a in ids.iter().take(6) {
            for &b in ids.iter().take(6) {
                let m = l.meet(a, b);
                prop_assert!(l.le(m, a) && l.le(m, b));
                let j = l.join(a, b);
                prop_assert!(l.le(a, j) && l.le(b, j));
                // Meet is the greatest lower bound.
                for &c in &ids {
                    if l.le(c, a) && l.le(c, b) {
                        prop_assert!(l.le(c, m));
                    }
                    if l.le(a, c) && l.le(b, c) {
                        prop_assert!(l.le(j, c));
                    }
                }
            }
        }
    }

    #[test]
    fn bfs_reaches_every_concept(ctx in arb_context()) {
        let l = ConceptLattice::build(&ctx);
        let order = l.bfs_top_down();
        prop_assert_eq!(order.len(), l.len());
        let set: HashSet<_> = order.into_iter().collect();
        prop_assert_eq!(set.len(), l.len());
    }

    #[test]
    fn incremental_insertion_matches_batch(ctx in arb_context()) {
        let batch = ConceptLattice::build(&ctx);
        let mut incremental = ConceptLattice::from_concepts(vec![cable_fca::Concept {
            extent: BitSet::new(),
            intent: BitSet::full(ctx.attribute_count()),
        }]);
        for o in 0..ctx.object_count() {
            incremental = incremental.insert_object(o, ctx.row(o));
        }
        prop_assert_eq!(incremental.len(), batch.len());
        for (_, c) in batch.iter() {
            let id = incremental.find_by_extent(&c.extent);
            prop_assert!(id.is_some());
            prop_assert_eq!(&incremental.concept(id.unwrap()).intent, &c.intent);
        }
    }

    #[test]
    fn extent_intersection_is_an_extent(ctx in arb_context()) {
        // The property `meet` relies on.
        let l = ConceptLattice::build(&ctx);
        let ids: Vec<_> = l.ids().collect();
        for &a in ids.iter().take(8) {
            for &b in ids.iter().take(8) {
                let inter = l.concept(a).extent.intersection(&l.concept(b).extent);
                prop_assert!(l.find_by_extent(&inter).is_some());
            }
        }
    }
}
