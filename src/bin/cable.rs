//! The `cable` command-line tool: a scriptable version of the paper's
//! Dotty-based UI.
//!
//! ```text
//! cable cluster --traces FILE [--fa FILE | --template unordered|seed:<op>] [--dot OUT] [--store DIR]
//! cable label   --traces FILE --script FILE [--fa FILE | --template ...]
//! cable label   --store DIR --script FILE
//! cable mine    --traces FILE --seeds op1,op2[,…]
//! cable show-fa --traces FILE
//! cable check   --traces FILE --fa FILE
//! cable session open    --traces FILE [--fa FILE | --template ...] --store DIR
//! cable session ingest  --store DIR --traces FILE [--fsync-per-trace] [--keep-going]
//! cable session resume  --store DIR [--json-out PATH] [--obs-listen ADDR]
//! cable session compact --store DIR
//! cable serve   --obs-listen ADDR [--store DIR] [--profile-interval-ms N]
//!               [--trace-seed N] [--trace-slow-us N]
//! cable profile diff BEFORE.jsonl AFTER.jsonl
//! cable diff-spec A.fa B.fa
//! cable specs
//! ```
//!
//! * `cluster` reads scenario traces (one per line, trace text format),
//!   builds the concept lattice under the chosen reference FA, and prints
//!   a concept summary (optionally a DOT rendering of the lattice).
//! * `label` replays a labeling script against the lattice (the
//!   scriptable `Label traces` command) and prints each trace with its
//!   final label. Script lines are
//!   `label <concept> <all|unlabeled|with:NAME> <label>`; `;` comments
//!   and blank lines are skipped. Concept ids are those `cluster`
//!   prints (construction is deterministic for the same input).
//! * `mine` treats the input as raw *program* traces (object ids like
//!   `#42` in the events), extracts per-object scenarios from the given
//!   seed operations, and prints the mined specification FA followed by
//!   the distinct scenarios.
//! * `show-fa` learns an sk-strings FA from the traces and prints it.
//! * `check` runs the traces against a specification FA and reports the
//!   rejected ones (a tiny verifier).
//! * `session` manages crash-safe persistent sessions (`cable-store`):
//!   `open` saves a freshly clustered session to a store directory,
//!   `ingest` appends new traces to a saved session through the
//!   incremental lattice-insert path (with `--fsync-per-trace` every
//!   trace is durable the moment it is applied — the crash drill's
//!   mode), `resume` reopens a session, reporting journal recovery on
//!   stderr (and with `--json-out` writes a deterministic
//!   `session_state` JSONL record that `reproduce diff` can compare),
//!   and `compact` folds the journal into a fresh snapshot.
//!   `cluster --store DIR` also saves the session it builds, and
//!   `label --store DIR` runs a labeling script against a saved session,
//!   journaling every decision.
//! * `serve` exposes the cable-obs HTTP endpoints (`GET /metrics` in
//!   Prometheus text format, `GET /healthz`, `GET /tracez`, plus the
//!   wide-event tail at `GET /eventz` and the SLO burn-rate windows at
//!   `GET /sloz`) on the given address until killed. With `--store DIR`
//!   it opens the session first so `/healthz` reports the store
//!   generation and journal lag, and starts the continuous profiler:
//!   periodic self-time snapshots into `DIR/profiles/` (default every
//!   5 s; `--profile-interval-ms N` tunes it, `0` disables). A bare
//!   port binds `127.0.0.1`; the bound address is printed to stdout so
//!   scripts can use port `0`.
//! * `profile diff` compares two continuous-profile (or `--events-out`
//!   style profile-snapshot) JSONL files and prints per-function
//!   self-time regressions, largest change first.
//! * `diff-spec` compares two specification FAs as languages and prints
//!   a *minimal* trace accepted by exactly one of them (the completed
//!   automaton algebra's distinguishing witness) — the quickest answer
//!   to "what exactly did my edit to this spec change?". Exit codes
//!   follow diff(1): 0 equivalent, 1 differ, 2 trouble (including
//!   specs over disjoint alphabets, which differ trivially).
//! * `specs` lists the built-in evaluation specifications.
//!
//! `--events-out PATH` (any command) writes the wide-event log — one
//! self-describing JSONL record per unit of work (ingest batch, label
//! op, compaction, guard trip, HTTP request) — through the buffered
//! sink.
//!
//! Every command also accepts `--stats`, which enables the flight
//! recorder and prints the cable-obs stage-cost report (counters, span
//! timings, and the self-time profile) to stderr when the command
//! finishes; setting `CABLE_OBS=1` in the environment does the same
//! without the flag. `--threads N` sizes the cable-par worker pool
//! (equivalent to `CABLE_PAR=N`; the output is identical either way —
//! only wall-clock time changes). `session resume --obs-listen ADDR`
//! keeps serving the HTTP endpoints after resuming, like `serve`.
//!
//! # Robustness flags
//!
//! `--deadline-ms N` and `--max-concepts N` install a resource budget
//! (cable-guard) for the whole command. Exceeding it does not panic or
//! hang: commands report the trip on stderr, still print whatever valid
//! partial result the pipeline produced (a prefix-exact lattice over the
//! leading trace classes), and exit with code **4**. The partial output
//! is deterministic — independent of `--threads`/`CABLE_PAR`.
//!
//! `--faults <seed>:<kind>@<site>[#K|=P][,…]` (or the `CABLE_FAULTS`
//! environment variable) installs the deterministic fault-injection
//! plane: `panic` fires injected panics at cable-par task boundaries,
//! `io` injects I/O errors at cable-store read/write/fsync sites, and
//! `budget` forces artificial budget trips at checkpoints. Used by the
//! CI fault drill; every injected failure must surface as a typed error.
//! A panic contained at the binary's no-panic boundary (injected or
//! genuine) is reported as a structured error and exits with code **5**;
//! injected I/O errors surface through the normal store error paths.
//!
//! `session ingest --keep-going` turns malformed trace lines from a
//! fatal error into per-line reports: each bad line is skipped with its
//! 1-based line number on stderr, every good line is still ingested and
//! journaled, and the command exits 1 with a summary.

use cable::fa::templates;
use cable::prelude::*;
use cable::session::{StoredSession, TraceSelector};
use cable::trace::Vocab;
use std::fs;
use std::path::Path;
use std::process::exit;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        usage("missing command");
    };
    // `profile diff` takes positional paths, not options.
    if command == "profile" {
        run_profile(&args[1..]);
    }
    // `diff-spec` takes two positional spec paths, not options.
    if command == "diff-spec" {
        run_diff_spec(&args[1..]);
    }
    // `session` takes a subcommand before the options.
    let (sub, rest) = if command == "session" {
        match args.get(1) {
            Some(sub) => (Some(sub.clone()), &args[2..]),
            None => usage("session needs a subcommand: open, ingest, resume or compact"),
        }
    } else {
        (None, &args[1..])
    };
    let opts = parse_opts(rest);
    let stats = cable::obs::init_from_env() || opts.stats;
    if stats || opts.obs_listen.is_some() {
        cable::obs::set_enabled(true);
        cable::obs::recorder::set_recording(true);
        cable::obs::events::set_enabled(true);
    }
    if let Some(path) = &opts.events_out {
        let sink = cable::obs::JsonlSink::create(path)
            .unwrap_or_else(|e| die(&format!("creating {path}: {e}")));
        cable::obs::events::install_sink(sink);
    }
    if let Some(spec) = &opts.faults {
        cable::guard::faults::install(spec).unwrap_or_else(|e| usage(&format!("--faults: {e}")));
    } else if let Err(e) = cable::guard::init_from_env() {
        die(&format!("CABLE_FAULTS: {e}"));
    }
    let budget = cable::guard::Budget {
        deadline: opts.deadline_ms.map(std::time::Duration::from_millis),
        max_concepts: opts.max_concepts,
        ..Default::default()
    };
    // Inert when no limit was given; held for the whole command.
    let _budget_guard = budget.install();
    // `contain` is the binary's no-panic boundary: a genuine panic in
    // any pipeline stage or cable-par worker (including injected
    // `--faults` panics) surfaces as a structured error and a distinct
    // exit code instead of an unwind.
    let contained = cable::guard::contain(|| match command.as_str() {
        "cluster" => cluster(&opts),
        "label" => label(&opts),
        "mine" => {
            mine(&opts);
            0
        }
        "show-fa" => {
            show_fa(&opts);
            0
        }
        "check" => check(&opts),
        "session" => session_cmd(sub.as_deref().unwrap_or_default(), &opts),
        "serve" => serve(&opts),
        "specs" => {
            specs();
            0
        }
        other => usage(&format!("unknown command {other:?}")),
    });
    let code = match contained {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            match e {
                cable::guard::GuardError::BudgetExceeded { .. } => 4,
                _ => 5,
            }
        }
    };
    // Flush the wide-event log before exiting (drop flushes the sink).
    if opts.events_out.is_some() {
        drop(cable::obs::events::take_sink());
    }
    // Stats print before the exit so failing commands still report.
    if stats {
        eprintln!("{}", cable::obs::registry().snapshot().render());
        let profile = cable::obs::chrome::self_time(&cable::obs::recorder::snapshot());
        if !profile.is_empty() {
            eprintln!("{}", cable::obs::chrome::render_profile(&profile));
        }
        let scopes = cable::obs::scoped().snapshot();
        eprint!("{}", cable::obs::render_scopes(&scopes));
    }
    exit(code);
}

struct Opts {
    traces: Option<String>,
    fa: Option<String>,
    template: Option<String>,
    dot: Option<String>,
    script: Option<String>,
    seeds: Option<String>,
    store: Option<String>,
    json_out: Option<String>,
    obs_listen: Option<String>,
    events_out: Option<String>,
    profile_interval_ms: Option<u64>,
    fsync_per_trace: bool,
    stats: bool,
    deadline_ms: Option<u64>,
    max_concepts: Option<u64>,
    faults: Option<String>,
    keep_going: bool,
    api: bool,
    store_root: Option<String>,
    max_open_sessions: Option<usize>,
    max_connections: Option<usize>,
    request_deadline_ms: Option<u64>,
    trace_seed: Option<u64>,
    trace_slow_us: Option<u64>,
}

fn parse_opts(args: &[String]) -> Opts {
    let mut opts = Opts {
        traces: None,
        fa: None,
        template: None,
        dot: None,
        script: None,
        seeds: None,
        store: None,
        json_out: None,
        obs_listen: None,
        events_out: None,
        profile_interval_ms: None,
        fsync_per_trace: false,
        stats: false,
        deadline_ms: None,
        max_concepts: None,
        faults: None,
        keep_going: false,
        api: false,
        store_root: None,
        max_open_sessions: None,
        max_connections: None,
        request_deadline_ms: None,
        trace_seed: None,
        trace_slow_us: None,
    };
    let mut i = 0;
    while i < args.len() {
        let value = || {
            args.get(i + 1)
                .cloned()
                .unwrap_or_else(|| usage(&format!("{} needs a value", args[i])))
        };
        match args[i].as_str() {
            "--stats" => {
                opts.stats = true;
                i += 1;
                continue;
            }
            "--fsync-per-trace" => {
                opts.fsync_per_trace = true;
                i += 1;
                continue;
            }
            "--keep-going" => {
                opts.keep_going = true;
                i += 1;
                continue;
            }
            "--api" => {
                opts.api = true;
                i += 1;
                continue;
            }
            "--threads" => {
                let n: usize = value()
                    .parse()
                    .unwrap_or_else(|_| usage("--threads needs an integer"));
                cable::par::configure(n);
            }
            "--traces" => opts.traces = Some(value()),
            "--fa" => opts.fa = Some(value()),
            "--template" => opts.template = Some(value()),
            "--dot" => opts.dot = Some(value()),
            "--script" => opts.script = Some(value()),
            "--seeds" => opts.seeds = Some(value()),
            "--store" => opts.store = Some(value()),
            "--json-out" => opts.json_out = Some(value()),
            "--obs-listen" => opts.obs_listen = Some(value()),
            "--events-out" => opts.events_out = Some(value()),
            "--profile-interval-ms" => {
                opts.profile_interval_ms = Some(
                    value()
                        .parse()
                        .unwrap_or_else(|_| usage("--profile-interval-ms needs an integer")),
                );
            }
            "--deadline-ms" => {
                opts.deadline_ms = Some(
                    value()
                        .parse()
                        .unwrap_or_else(|_| usage("--deadline-ms needs an integer")),
                );
            }
            "--max-concepts" => {
                opts.max_concepts = Some(
                    value()
                        .parse()
                        .unwrap_or_else(|_| usage("--max-concepts needs an integer")),
                );
            }
            "--faults" => opts.faults = Some(value()),
            "--store-root" => opts.store_root = Some(value()),
            "--max-open-sessions" => {
                opts.max_open_sessions = Some(
                    value()
                        .parse()
                        .ok()
                        .filter(|&n: &usize| n > 0)
                        .unwrap_or_else(|| usage("--max-open-sessions needs a positive integer")),
                );
            }
            "--max-connections" => {
                opts.max_connections = Some(
                    value()
                        .parse()
                        .ok()
                        .filter(|&n: &usize| n > 0)
                        .unwrap_or_else(|| usage("--max-connections needs a positive integer")),
                );
            }
            "--request-deadline-ms" => {
                opts.request_deadline_ms = Some(
                    value()
                        .parse()
                        .unwrap_or_else(|_| usage("--request-deadline-ms needs an integer")),
                );
            }
            "--trace-seed" => {
                opts.trace_seed = Some(
                    value()
                        .parse()
                        .unwrap_or_else(|_| usage("--trace-seed needs an integer")),
                );
            }
            "--trace-slow-us" => {
                opts.trace_slow_us = Some(
                    value()
                        .parse()
                        .unwrap_or_else(|_| usage("--trace-slow-us needs an integer")),
                );
            }
            other => usage(&format!("unknown option {other:?}")),
        }
        i += 2;
    }
    opts
}

fn load_traces(opts: &Opts, vocab: &mut Vocab) -> TraceSet {
    let path = opts
        .traces
        .as_ref()
        .unwrap_or_else(|| usage("--traces FILE is required"));
    let text = fs::read_to_string(path).unwrap_or_else(|e| die(&format!("reading {path}: {e}")));
    TraceSet::parse(&text, vocab).unwrap_or_else(|e| die(&format!("parsing {path}: {e}")))
}

fn reference_fa(opts: &Opts, traces: &TraceSet, vocab: &mut Vocab) -> Fa {
    if let Some(path) = &opts.fa {
        let text =
            fs::read_to_string(path).unwrap_or_else(|e| die(&format!("reading {path}: {e}")));
        return Fa::parse(&text, vocab).unwrap_or_else(|e| die(&format!("parsing {path}: {e}")));
    }
    let list: Vec<Trace> = traces.iter().map(|(_, t)| t.clone()).collect();
    match opts.template.as_deref() {
        None | Some("unordered") => templates::unordered_of_trace_events(&list),
        Some(spec) => {
            let Some(op) = spec.strip_prefix("seed:") else {
                usage("--template is `unordered` or `seed:<op>`");
            };
            let pats = templates::distinct_event_pats(&list);
            let sym = vocab
                .find_op(op)
                .unwrap_or_else(|| die(&format!("operation {op:?} does not occur in the traces")));
            let seed = cable::fa::EventPat::on_var(sym, cable::trace::Var(0));
            templates::seed_order(&pats, &seed)
        }
    }
}

/// Builds the session under whatever budget `main` installed. A budget
/// trip is not fatal: the stop carries a valid partial session (a
/// prefix-exact lattice over the leading trace classes), which callers
/// print like any other before exiting with code 4.
fn build_session(traces: TraceSet, fa: Fa) -> (CableSession, i32) {
    match CableSession::try_new(traces, fa) {
        Ok(session) => (session, 0),
        Err(stop) => {
            eprintln!(
                "budget exceeded: {}; continuing with the partial session \
                 ({} of the trace classes clustered)",
                stop.error, stop.classes_clustered
            );
            (stop.partial, 4)
        }
    }
}

fn cluster(opts: &Opts) -> i32 {
    let mut vocab = Vocab::new();
    let traces = load_traces(opts, &mut vocab);
    let fa = reference_fa(opts, &traces, &mut vocab);
    let (session, code) = build_session(traces, fa);
    println!(
        "{} traces in {} identical classes; reference FA: {} transitions; {} concepts",
        session.traces().len(),
        session.classes().len(),
        session.reference_fa().transition_count(),
        session.lattice().len()
    );
    for id in session.lattice().bfs_top_down() {
        let concept = session.lattice().concept(id);
        let n_traces: usize = concept
            .extent
            .iter()
            .map(|c| session.classes()[c].count())
            .sum();
        println!(
            "\n{id}: {} classes / {n_traces} traces, {} shared transitions",
            concept.extent.len(),
            concept.intent.len()
        );
        for t in session.show_traces(id, &TraceSelector::All).iter().take(3) {
            println!("    {}", t.display(&vocab));
        }
        if concept.extent.len() > 3 {
            println!("    …");
        }
    }
    if let Some(out) = &opts.dot {
        fs::write(out, session.to_dot("cable"))
            .unwrap_or_else(|e| die(&format!("writing {out}: {e}")));
        println!("\nwrote {out}");
    }
    if let Some(dir) = &opts.store {
        let stored = session
            .save(vocab, Path::new(dir))
            .unwrap_or_else(|e| die(&format!("saving session to {dir}: {e}")));
        println!(
            "\nsaved session to {dir} ({} snapshot bytes)",
            stored.store().snapshot_bytes().unwrap_or(0)
        );
    }
    code
}

/// Parses a labeling script into `(concept, selector, label)` commands,
/// validating concept ids against the lattice size.
fn parse_script(
    script: &str,
    lattice_len: usize,
) -> Vec<(cable::fca::ConceptId, TraceSelector, String)> {
    let mut commands = Vec::new();
    for (lineno, raw) in script.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with(';') {
            continue;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        match parts.as_slice() {
            ["label", concept, selector, label_name] => {
                let id = concept
                    .strip_prefix('c')
                    .and_then(|n| n.parse::<u32>().ok())
                    .map(cable::fca::ConceptId)
                    .filter(|id| id.index() < lattice_len)
                    .unwrap_or_else(|| {
                        die(&format!("line {}: unknown concept {concept:?}", lineno + 1))
                    });
                let selector = match *selector {
                    "all" => TraceSelector::All,
                    "unlabeled" => TraceSelector::Unlabeled,
                    other => match other.strip_prefix("with:") {
                        Some(name) => TraceSelector::WithLabel(name.to_owned()),
                        None => die(&format!(
                            "line {}: selector must be all, unlabeled or with:NAME",
                            lineno + 1
                        )),
                    },
                };
                commands.push((id, selector, (*label_name).to_owned()));
            }
            _ => die(&format!(
                "line {}: expected `label <concept> <selector> <name>`",
                lineno + 1
            )),
        }
    }
    commands
}

/// Prints every trace with its final label and the per-label tallies;
/// returns the exit code (3 when traces remain unlabeled).
fn report_labels(session: &CableSession, vocab: &Vocab) -> i32 {
    for (id, trace) in session.traces().iter() {
        let label = session
            .label_of_trace(id)
            .map(|l| session.labels().name(l).to_owned())
            .unwrap_or_else(|| "(unlabeled)".to_owned());
        println!("{label}\t{}", trace.display(vocab));
    }
    let progress = session.progress();
    for count in &progress.per_label {
        eprintln!(
            "{}: {} classes / {} traces",
            count.name, count.classes, count.traces
        );
    }
    if !progress.is_complete() {
        eprintln!("warning: some traces are unlabeled");
        return 3;
    }
    0
}

fn label(opts: &Opts) -> i32 {
    let path = opts
        .script
        .as_ref()
        .unwrap_or_else(|| usage("--script FILE is required"));
    let script = fs::read_to_string(path).unwrap_or_else(|e| die(&format!("reading {path}: {e}")));
    if let Some(dir) = &opts.store {
        // Label a saved session: every decision is journaled before it
        // is applied, so the labels survive a crash.
        let (mut stored, report) = open_store(dir);
        report_recovery(&report);
        for (id, selector, name) in parse_script(&script, stored.session().lattice().len()) {
            let n = stored
                .label_traces(id, &selector, &name)
                .unwrap_or_else(|e| die(&format!("journaling labels to {dir}: {e}")));
            eprintln!("labeled {n} classes in {id} as {name:?}");
        }
        return report_labels(stored.session(), stored.vocab());
    }
    let mut vocab = Vocab::new();
    let traces = load_traces(opts, &mut vocab);
    let fa = reference_fa(opts, &traces, &mut vocab);
    let (mut session, code) = build_session(traces, fa);
    for (id, selector, name) in parse_script(&script, session.lattice().len()) {
        let n = session.label_traces(id, &selector, &name);
        eprintln!("labeled {n} classes in {id} as {name:?}");
    }
    let label_code = report_labels(&session, &vocab);
    if code != 0 {
        code
    } else {
        label_code
    }
}

fn open_store(dir: &str) -> (StoredSession, cable::store::RecoveryReport) {
    match CableSession::open(Path::new(dir)) {
        Ok(opened) => opened,
        Err(cable::store::StoreError::Guard(e)) => {
            eprintln!("error: budget exceeded opening store {dir}: {e}");
            exit(4);
        }
        Err(e) => die(&format!("opening store {dir}: {e}")),
    }
}

fn report_recovery(report: &cable::store::RecoveryReport) {
    eprintln!(
        "journal recovery: {} records replayed, {} bytes discarded ({:?} tail{})",
        report.replayed,
        report.discarded_bytes,
        report.tail,
        if report.stale_journal {
            ", stale journal dropped"
        } else {
            ""
        }
    );
}

// The deterministic `session_state` record `session resume --json-out`
// writes now lives in `cable_core::digest` (the `GET
// /api/sessions/:id/digest` endpoint emits the identical record).
use cable::session::session_state_record;

fn session_cmd(sub: &str, opts: &Opts) -> i32 {
    let store_dir = || {
        opts.store
            .as_ref()
            .unwrap_or_else(|| usage("--store DIR is required"))
    };
    match sub {
        "open" => {
            let mut vocab = Vocab::new();
            let traces = load_traces(opts, &mut vocab);
            let fa = reference_fa(opts, &traces, &mut vocab);
            let (session, code) = build_session(traces, fa);
            let dir = store_dir();
            let stored = session
                .save(vocab, Path::new(dir))
                .unwrap_or_else(|e| die(&format!("saving session to {dir}: {e}")));
            println!(
                "saved {} traces in {} classes ({} concepts) to {dir}",
                stored.session().traces().len(),
                stored.session().classes().len(),
                stored.session().lattice().len()
            );
            code
        }
        "ingest" => {
            let dir = store_dir();
            let (mut stored, report) = open_store(dir);
            report_recovery(&report);
            let path = opts
                .traces
                .as_ref()
                .unwrap_or_else(|| usage("--traces FILE is required"));
            let text =
                fs::read_to_string(path).unwrap_or_else(|e| die(&format!("reading {path}: {e}")));
            let (results, code) = if opts.keep_going {
                let report = match stored.ingest_text_keep_going(&text, opts.fsync_per_trace) {
                    Ok(report) => report,
                    Err(cable::store::StoreError::Guard(e)) => {
                        eprintln!("budget exceeded while ingesting {path}: {e}");
                        return 4;
                    }
                    Err(e) => die(&format!("ingesting {path}: {e}")),
                };
                for (lineno, error) in &report.errors {
                    eprintln!("{path}:{lineno}: skipped: {error}");
                }
                let code = if report.is_clean() {
                    0
                } else {
                    eprintln!(
                        "skipped {} malformed of {} trace lines",
                        report.errors.len(),
                        report.errors.len() + report.results.len()
                    );
                    1
                };
                (report.results, code)
            } else {
                match stored.ingest_text(&text, opts.fsync_per_trace) {
                    Ok(results) => (results, 0),
                    Err(cable::store::StoreError::Guard(e)) => {
                        eprintln!("budget exceeded while ingesting {path}: {e}");
                        return 4;
                    }
                    Err(e) => die(&format!("ingesting {path}: {e}")),
                }
            };
            let fresh = results.iter().filter(|(_, new)| *new).count();
            println!(
                "ingested {} traces ({fresh} new classes); session now {} traces in {} classes, {} concepts",
                results.len(),
                stored.session().traces().len(),
                stored.session().classes().len(),
                stored.session().lattice().len()
            );
            code
        }
        "resume" => {
            let dir = store_dir();
            let (stored, report) = open_store(dir);
            report_recovery(&report);
            println!(
                "{} traces in {} classes; {} concepts; {} of {} classes labeled; generation {}",
                stored.session().traces().len(),
                stored.session().classes().len(),
                stored.session().lattice().len(),
                (0..stored.session().classes().len())
                    .filter(|&c| stored.session().labels().is_labeled(c))
                    .count(),
                stored.session().classes().len(),
                stored.store().generation()
            );
            if let Some(path) = &opts.json_out {
                let sink = cable::obs::JsonlSink::create(path)
                    .unwrap_or_else(|e| die(&format!("creating {path}: {e}")));
                sink.write(&session_state_record(&stored))
                    .unwrap_or_else(|e| die(&format!("writing {path}: {e}")));
                eprintln!("wrote {path}");
            }
            if let Some(addr) = &opts.obs_listen {
                publish_health(&stored);
                let _profiler = spawn_profiler(Path::new(dir), opts);
                serve_blocking(addr, resolve_server_config(opts));
            }
            0
        }
        "compact" => {
            let dir = store_dir();
            let (mut stored, report) = open_store(dir);
            report_recovery(&report);
            let journal_before = stored.store().journal_bytes().unwrap_or(0);
            stored
                .compact()
                .unwrap_or_else(|e| die(&format!("compacting {dir}: {e}")));
            println!(
                "compacted to generation {}: snapshot {} bytes, journal {} -> {} bytes",
                stored.store().generation(),
                stored.store().snapshot_bytes().unwrap_or(0),
                journal_before,
                stored.store().journal_bytes().unwrap_or(0)
            );
            0
        }
        other => usage(&format!(
            "unknown session subcommand {other:?} (open, ingest, resume, compact)"
        )),
    }
}

/// Publishes the stored session's generation and journal lag to the
/// `/healthz` endpoint.
fn publish_health(stored: &StoredSession) {
    match stored.health() {
        Ok(health) => cable::obs::http::set_health(Some(health)),
        Err(e) => eprintln!("warning: could not read store health: {e}"),
    }
}

/// The server sizing: `--max-connections` wins, then `CABLE_MAX_CONNS`,
/// then the compiled-in default. The per-connection patience knobs
/// (`CABLE_IO_TIMEOUT_MS` for a single read, `CABLE_CONN_DEADLINE_MS`
/// for the whole request — the slowloris guard) are env-only. A
/// malformed env value is a usage error (exit 2), same as a malformed
/// flag.
fn resolve_server_config(opts: &Opts) -> cable::obs::ServerConfig {
    let mut config = cable::obs::ServerConfig::default();
    if let Some(n) = opts.max_connections {
        config.max_connections = n;
    } else if let Ok(v) = std::env::var("CABLE_MAX_CONNS") {
        if !v.is_empty() {
            config.max_connections = v
                .parse()
                .ok()
                .filter(|&n: &usize| n > 0)
                .unwrap_or_else(|| usage("CABLE_MAX_CONNS must be a positive integer"));
        }
    }
    let millis = |name: &'static str| -> Option<std::time::Duration> {
        let v = std::env::var(name).ok().filter(|v| !v.is_empty())?;
        let ms: u64 = v
            .parse()
            .ok()
            .filter(|&ms| ms > 0)
            .unwrap_or_else(|| usage(&format!("{name} must be a positive integer (ms)")));
        Some(std::time::Duration::from_millis(ms))
    };
    if let Some(t) = millis("CABLE_IO_TIMEOUT_MS") {
        config.io_timeout = t;
    }
    if let Some(t) = millis("CABLE_CONN_DEADLINE_MS") {
        config.connection_deadline = t;
    }
    config
}

/// Binds the obs HTTP server, announces the bound address on stdout
/// (so scripts can pass port 0 and discover the port), and serves until
/// the process is killed.
fn serve_blocking(addr: &str, config: cable::obs::ServerConfig) -> ! {
    let server = cable::obs::ObsServer::bind_with(addr, config)
        .unwrap_or_else(|e| die(&format!("binding {addr}: {e}")));
    println!(
        "serving http://{}/metrics /healthz /tracez /eventz /sloz",
        server.addr()
    );
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    server.serve();
}

/// Starts the continuous profiler into `DIR/profiles/` (one JSONL file
/// per process). Default interval 5 s; `--profile-interval-ms 0`
/// disables it.
fn spawn_profiler(dir: &Path, opts: &Opts) -> Option<cable::obs::profdiff::ContinuousProfiler> {
    let interval_ms = opts.profile_interval_ms.unwrap_or(5000);
    if interval_ms == 0 {
        return None;
    }
    let profiles = dir.join("profiles");
    if let Err(e) = fs::create_dir_all(&profiles) {
        eprintln!("warning: cannot create {}: {e}", profiles.display());
        return None;
    }
    let path = profiles.join(format!("profile-{}.jsonl", std::process::id()));
    match cable::obs::profdiff::ContinuousProfiler::spawn(
        &path,
        std::time::Duration::from_millis(interval_ms),
    ) {
        Ok(profiler) => {
            eprintln!(
                "obs: continuous profiler writing {} every {interval_ms} ms",
                path.display()
            );
            Some(profiler)
        }
        Err(e) => {
            eprintln!("warning: continuous profiler failed to start: {e}");
            None
        }
    }
}

/// `cable serve --obs-listen ADDR [--store DIR] [--api --store-root DIR]`:
/// the exposition server, optionally with the multi-tenant session API
/// plane enabled (see DESIGN.md §14).
fn serve(opts: &Opts) -> i32 {
    let addr = opts
        .obs_listen
        .as_ref()
        .unwrap_or_else(|| usage("--obs-listen ADDR is required"));
    let config = resolve_server_config(opts);
    // Trace knobs: flags beat the CABLE_TRACE_SEED / CABLE_TRACE_SLOW_US
    // environment fallbacks init_from_env already applied.
    if let Some(seed) = opts.trace_seed {
        cable::obs::http::set_trace_seed(seed);
    }
    if let Some(us) = opts.trace_slow_us {
        cable::obs::tail::set_slow_threshold_us(us);
    }
    let mut _profiler = None;
    if let Some(dir) = &opts.store {
        let (stored, report) = open_store(dir);
        report_recovery(&report);
        publish_health(&stored);
        _profiler = spawn_profiler(Path::new(dir), opts);
    }
    if opts.api {
        let root = opts
            .store_root
            .as_ref()
            .unwrap_or_else(|| usage("--api needs --store-root DIR"));
        let manager = std::sync::Arc::new(cable::session::SessionManager::new(
            root,
            opts.max_open_sessions.unwrap_or(8),
        ));
        let api = cable::session::CableApi::new(
            manager,
            opts.request_deadline_ms
                .filter(|&ms| ms > 0)
                .map(std::time::Duration::from_millis),
        );
        cable::obs::set_api_handler(Some(std::sync::Arc::new(api)));
    } else if opts.store_root.is_some() {
        usage("--store-root only applies with --api");
    }
    serve_blocking(addr, config);
}

/// `cable profile diff BEFORE AFTER`: the self-time regression report
/// between two profile-snapshot JSONL files (continuous-profiler output
/// or any file whose records carry a `profile` array).
fn run_profile(args: &[String]) -> ! {
    match args {
        [sub, before, after] if sub == "diff" => {
            let a = cable::obs::profdiff::load_rows(Path::new(before))
                .unwrap_or_else(|e| die(&format!("{before}: {e}")));
            let b = cable::obs::profdiff::load_rows(Path::new(after))
                .unwrap_or_else(|e| die(&format!("{after}: {e}")));
            let rows = cable::obs::profdiff::diff(&a, &b);
            print!("{}", cable::obs::profdiff::render_diff(&rows));
            exit(0);
        }
        _ => usage("profile needs: profile diff BEFORE.jsonl AFTER.jsonl"),
    }
}

/// The `diff-spec` subcommand: prints a shortest trace accepted by
/// exactly one of two specification FAs. Exit codes follow diff(1):
/// `0` — the specs are language-equivalent, `1` — they differ (the
/// minimal distinguishing trace is printed), `2` — usage, IO, or parse
/// errors, and alphabet-incompatible specs (two specs over disjoint
/// operation sets differ trivially on every string; a witness would be
/// noise, so the comparison is refused instead).
fn run_diff_spec(args: &[String]) -> ! {
    if let Some(flag) = args.iter().find(|a| a.starts_with('-')) {
        usage(&format!("diff-spec takes no options (got {flag:?})"));
    }
    let [path_a, path_b] = args else {
        usage("diff-spec needs exactly two spec FA paths");
    };
    let mut vocab = Vocab::new();
    let mut load = |path: &str| -> Fa {
        let text = fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error: reading {path}: {e}");
            exit(2);
        });
        Fa::parse(&text, &mut vocab).unwrap_or_else(|e| {
            eprintln!("error: parsing {path}: {e}");
            exit(2);
        })
    };
    let fa_a = load(path_a);
    let fa_b = load(path_b);
    if !fa_a.alphabet_compatible(&fa_b) {
        eprintln!(
            "error: {path_a} and {path_b} share no operations — their languages are \
             trivially disjoint; diff-spec compares specifications over a common alphabet"
        );
        exit(2);
    }
    match fa_a.distinguishing_trace(&fa_b, &mut vocab) {
        None => {
            println!("specs are language-equivalent");
            exit(0);
        }
        Some(trace) => {
            let (owner, other) = if fa_a.accepts(&trace) {
                (path_a, path_b)
            } else {
                (path_b, path_a)
            };
            println!(
                "specs differ; minimal distinguishing trace ({} event{}):",
                trace.len(),
                if trace.len() == 1 { "" } else { "s" }
            );
            if trace.is_empty() {
                println!("  (the empty trace)");
            } else {
                println!("  {}", trace.display(&vocab));
            }
            println!("accepted by {owner}, rejected by {other}");
            exit(1);
        }
    }
}

fn mine(opts: &Opts) {
    let mut vocab = Vocab::new();
    let traces = load_traces(opts, &mut vocab);
    let seeds: Vec<String> = opts
        .seeds
        .as_ref()
        .unwrap_or_else(|| usage("--seeds op1[,op2,…] is required"))
        .split(',')
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .collect();
    if seeds.is_empty() {
        usage("--seeds needs at least one operation");
    }
    let programs: Vec<Trace> = traces.iter().map(|(_, t)| t.clone()).collect();
    let miner = cable::strauss::Miner::new(&seeds);
    let mined = miner.mine(&programs, &vocab);
    eprintln!(
        "extracted {} scenarios ({} distinct) from {} program traces",
        mined.scenarios.len(),
        mined.scenarios.identical_classes().len(),
        programs.len()
    );
    print!("{}", mined.fa.to_text(&vocab));
    println!(";");
    println!("; distinct scenarios:");
    for class in mined.scenarios.identical_classes() {
        println!(
            "; ×{:<4} {}",
            class.count(),
            mined.scenarios.trace(class.representative).display(&vocab)
        );
    }
}

fn show_fa(opts: &Opts) {
    let mut vocab = Vocab::new();
    let traces = load_traces(opts, &mut vocab);
    let list: Vec<Trace> = traces.iter().map(|(_, t)| t.clone()).collect();
    let fa = cable::learn::SkStrings::default().learn(&list);
    print!("{}", fa.to_text(&vocab));
}

fn check(opts: &Opts) -> i32 {
    let mut vocab = Vocab::new();
    let traces = load_traces(opts, &mut vocab);
    let path = opts
        .fa
        .as_ref()
        .unwrap_or_else(|| usage("--fa FILE is required"));
    let text = fs::read_to_string(path).unwrap_or_else(|e| die(&format!("reading {path}: {e}")));
    let fa = Fa::parse(&text, &mut vocab).unwrap_or_else(|e| die(&format!("parsing {path}: {e}")));
    let mut rejected = 0;
    for (_, t) in traces.iter() {
        if !fa.accepts(t) {
            println!("violation: {}", t.display(&vocab));
            rejected += 1;
        }
    }
    println!("{rejected} of {} traces rejected", traces.len());
    if rejected > 0 {
        return 1;
    }
    0
}

fn specs() {
    let registry = cable::specs::registry();
    for spec in registry.iter() {
        println!("{:14} {}", spec.name(), spec.description());
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: cable <cluster|label|mine|show-fa|check|specs> [--traces FILE] [--fa FILE] \
         [--template unordered|seed:<op>] [--dot OUT] [--script FILE] [--seeds ops] \
         [--store DIR] [--threads N] [--stats]\n\
         \x20      cable session <open|ingest|resume|compact> --store DIR [--traces FILE] \
         [--fsync-per-trace] [--keep-going] [--json-out PATH] [--obs-listen ADDR]\n\
         \x20      cable serve --obs-listen ADDR [--store DIR] [--profile-interval-ms N] \
         [--api --store-root DIR] [--max-open-sessions N] [--max-connections N] \
         [--request-deadline-ms N] [--trace-seed N] [--trace-slow-us N]\n\
         \x20      cable profile diff BEFORE.jsonl AFTER.jsonl\n\
         \x20      cable diff-spec A.fa B.fa   (exit 0 equivalent, 1 differ + witness, 2 error)\n\
         \x20      any command: [--deadline-ms N] [--max-concepts N] [--faults SEED:SPEC] \
         [--events-out PATH]"
    );
    exit(2);
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    exit(1);
}
