//! The `cable` command-line tool: a scriptable version of the paper's
//! Dotty-based UI.
//!
//! ```text
//! cable cluster --traces FILE [--fa FILE | --template unordered|seed:<op>] [--dot OUT]
//! cable label   --traces FILE --script FILE [--fa FILE | --template ...]
//! cable mine    --traces FILE --seeds op1,op2[,…]
//! cable show-fa --traces FILE
//! cable check   --traces FILE --fa FILE
//! cable specs
//! ```
//!
//! * `cluster` reads scenario traces (one per line, trace text format),
//!   builds the concept lattice under the chosen reference FA, and prints
//!   a concept summary (optionally a DOT rendering of the lattice).
//! * `label` replays a labeling script against the lattice (the
//!   scriptable `Label traces` command) and prints each trace with its
//!   final label. Script lines are
//!   `label <concept> <all|unlabeled|with:NAME> <label>`; `;` comments
//!   and blank lines are skipped. Concept ids are those `cluster`
//!   prints (construction is deterministic for the same input).
//! * `mine` treats the input as raw *program* traces (object ids like
//!   `#42` in the events), extracts per-object scenarios from the given
//!   seed operations, and prints the mined specification FA followed by
//!   the distinct scenarios.
//! * `show-fa` learns an sk-strings FA from the traces and prints it.
//! * `check` runs the traces against a specification FA and reports the
//!   rejected ones (a tiny verifier).
//! * `specs` lists the built-in evaluation specifications.
//!
//! Every command also accepts `--stats`, which prints the cable-obs
//! stage-cost report (counters and span timings) to stderr when the
//! command finishes; setting `CABLE_OBS=1` in the environment does the
//! same without the flag. `--threads N` sizes the cable-par worker pool
//! (equivalent to `CABLE_PAR=N`; the output is identical either way —
//! only wall-clock time changes).

use cable::fa::templates;
use cable::prelude::*;
use cable::session::TraceSelector;
use cable::trace::Vocab;
use std::fs;
use std::process::exit;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        usage("missing command");
    };
    let opts = parse_opts(&args[1..]);
    let stats = cable::obs::init_from_env() || opts.stats;
    if stats {
        cable::obs::set_enabled(true);
    }
    let code = match command.as_str() {
        "cluster" => {
            cluster(&opts);
            0
        }
        "label" => label(&opts),
        "mine" => {
            mine(&opts);
            0
        }
        "show-fa" => {
            show_fa(&opts);
            0
        }
        "check" => check(&opts),
        "specs" => {
            specs();
            0
        }
        other => usage(&format!("unknown command {other:?}")),
    };
    // Stats print before the exit so failing commands still report.
    if stats {
        eprintln!("{}", cable::obs::registry().snapshot().render());
    }
    exit(code);
}

struct Opts {
    traces: Option<String>,
    fa: Option<String>,
    template: Option<String>,
    dot: Option<String>,
    script: Option<String>,
    seeds: Option<String>,
    stats: bool,
}

fn parse_opts(args: &[String]) -> Opts {
    let mut opts = Opts {
        traces: None,
        fa: None,
        template: None,
        dot: None,
        script: None,
        seeds: None,
        stats: false,
    };
    let mut i = 0;
    while i < args.len() {
        let value = || {
            args.get(i + 1)
                .cloned()
                .unwrap_or_else(|| usage(&format!("{} needs a value", args[i])))
        };
        match args[i].as_str() {
            "--stats" => {
                opts.stats = true;
                i += 1;
                continue;
            }
            "--threads" => {
                let n: usize = value()
                    .parse()
                    .unwrap_or_else(|_| usage("--threads needs an integer"));
                cable::par::configure(n);
            }
            "--traces" => opts.traces = Some(value()),
            "--fa" => opts.fa = Some(value()),
            "--template" => opts.template = Some(value()),
            "--dot" => opts.dot = Some(value()),
            "--script" => opts.script = Some(value()),
            "--seeds" => opts.seeds = Some(value()),
            other => usage(&format!("unknown option {other:?}")),
        }
        i += 2;
    }
    opts
}

fn load_traces(opts: &Opts, vocab: &mut Vocab) -> TraceSet {
    let path = opts
        .traces
        .as_ref()
        .unwrap_or_else(|| usage("--traces FILE is required"));
    let text = fs::read_to_string(path).unwrap_or_else(|e| die(&format!("reading {path}: {e}")));
    TraceSet::parse(&text, vocab).unwrap_or_else(|e| die(&format!("parsing {path}: {e}")))
}

fn reference_fa(opts: &Opts, traces: &TraceSet, vocab: &mut Vocab) -> Fa {
    if let Some(path) = &opts.fa {
        let text =
            fs::read_to_string(path).unwrap_or_else(|e| die(&format!("reading {path}: {e}")));
        return Fa::parse(&text, vocab).unwrap_or_else(|e| die(&format!("parsing {path}: {e}")));
    }
    let list: Vec<Trace> = traces.iter().map(|(_, t)| t.clone()).collect();
    match opts.template.as_deref() {
        None | Some("unordered") => templates::unordered_of_trace_events(&list),
        Some(spec) => {
            let Some(op) = spec.strip_prefix("seed:") else {
                usage("--template is `unordered` or `seed:<op>`");
            };
            let pats = templates::distinct_event_pats(&list);
            let sym = vocab
                .find_op(op)
                .unwrap_or_else(|| die(&format!("operation {op:?} does not occur in the traces")));
            let seed = cable::fa::EventPat::on_var(sym, cable::trace::Var(0));
            templates::seed_order(&pats, &seed)
        }
    }
}

fn cluster(opts: &Opts) {
    let mut vocab = Vocab::new();
    let traces = load_traces(opts, &mut vocab);
    let fa = reference_fa(opts, &traces, &mut vocab);
    let session = CableSession::new(traces, fa);
    println!(
        "{} traces in {} identical classes; reference FA: {} transitions; {} concepts",
        session.traces().len(),
        session.classes().len(),
        session.reference_fa().transition_count(),
        session.lattice().len()
    );
    for id in session.lattice().bfs_top_down() {
        let concept = session.lattice().concept(id);
        let n_traces: usize = concept
            .extent
            .iter()
            .map(|c| session.classes()[c].count())
            .sum();
        println!(
            "\n{id}: {} classes / {n_traces} traces, {} shared transitions",
            concept.extent.len(),
            concept.intent.len()
        );
        for t in session.show_traces(id, &TraceSelector::All).iter().take(3) {
            println!("    {}", t.display(&vocab));
        }
        if concept.extent.len() > 3 {
            println!("    …");
        }
    }
    if let Some(out) = &opts.dot {
        fs::write(out, session.to_dot("cable"))
            .unwrap_or_else(|e| die(&format!("writing {out}: {e}")));
        println!("\nwrote {out}");
    }
}

fn label(opts: &Opts) -> i32 {
    let mut vocab = Vocab::new();
    let traces = load_traces(opts, &mut vocab);
    let fa = reference_fa(opts, &traces, &mut vocab);
    let mut session = CableSession::new(traces, fa);
    let path = opts
        .script
        .as_ref()
        .unwrap_or_else(|| usage("--script FILE is required"));
    let script = fs::read_to_string(path).unwrap_or_else(|e| die(&format!("reading {path}: {e}")));
    for (lineno, raw) in script.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with(';') {
            continue;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        match parts.as_slice() {
            ["label", concept, selector, label_name] => {
                let id = concept
                    .strip_prefix('c')
                    .and_then(|n| n.parse::<u32>().ok())
                    .map(cable::fca::ConceptId)
                    .filter(|id| id.index() < session.lattice().len())
                    .unwrap_or_else(|| {
                        die(&format!("line {}: unknown concept {concept:?}", lineno + 1))
                    });
                let selector = match *selector {
                    "all" => TraceSelector::All,
                    "unlabeled" => TraceSelector::Unlabeled,
                    other => match other.strip_prefix("with:") {
                        Some(name) => TraceSelector::WithLabel(name.to_owned()),
                        None => die(&format!(
                            "line {}: selector must be all, unlabeled or with:NAME",
                            lineno + 1
                        )),
                    },
                };
                let n = session.label_traces(id, &selector, label_name);
                eprintln!("labeled {n} classes in {id} as {label_name:?}");
            }
            _ => die(&format!(
                "line {}: expected `label <concept> <selector> <name>`",
                lineno + 1
            )),
        }
    }
    for (id, trace) in session.traces().iter() {
        let label = session
            .label_of_trace(id)
            .map(|l| session.labels().name(l).to_owned())
            .unwrap_or_else(|| "(unlabeled)".to_owned());
        println!("{label}\t{}", trace.display(&vocab));
    }
    let progress = session.progress();
    for count in &progress.per_label {
        eprintln!(
            "{}: {} classes / {} traces",
            count.name, count.classes, count.traces
        );
    }
    if !progress.is_complete() {
        eprintln!("warning: some traces are unlabeled");
        return 3;
    }
    0
}

fn mine(opts: &Opts) {
    let mut vocab = Vocab::new();
    let traces = load_traces(opts, &mut vocab);
    let seeds: Vec<String> = opts
        .seeds
        .as_ref()
        .unwrap_or_else(|| usage("--seeds op1[,op2,…] is required"))
        .split(',')
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .collect();
    if seeds.is_empty() {
        usage("--seeds needs at least one operation");
    }
    let programs: Vec<Trace> = traces.iter().map(|(_, t)| t.clone()).collect();
    let miner = cable::strauss::Miner::new(&seeds);
    let mined = miner.mine(&programs, &vocab);
    eprintln!(
        "extracted {} scenarios ({} distinct) from {} program traces",
        mined.scenarios.len(),
        mined.scenarios.identical_classes().len(),
        programs.len()
    );
    print!("{}", mined.fa.to_text(&vocab));
    println!(";");
    println!("; distinct scenarios:");
    for class in mined.scenarios.identical_classes() {
        println!(
            "; ×{:<4} {}",
            class.count(),
            mined.scenarios.trace(class.representative).display(&vocab)
        );
    }
}

fn show_fa(opts: &Opts) {
    let mut vocab = Vocab::new();
    let traces = load_traces(opts, &mut vocab);
    let list: Vec<Trace> = traces.iter().map(|(_, t)| t.clone()).collect();
    let fa = cable::learn::SkStrings::default().learn(&list);
    print!("{}", fa.to_text(&vocab));
}

fn check(opts: &Opts) -> i32 {
    let mut vocab = Vocab::new();
    let traces = load_traces(opts, &mut vocab);
    let path = opts
        .fa
        .as_ref()
        .unwrap_or_else(|| usage("--fa FILE is required"));
    let text = fs::read_to_string(path).unwrap_or_else(|e| die(&format!("reading {path}: {e}")));
    let fa = Fa::parse(&text, &mut vocab).unwrap_or_else(|e| die(&format!("parsing {path}: {e}")));
    let mut rejected = 0;
    for (_, t) in traces.iter() {
        if !fa.accepts(t) {
            println!("violation: {}", t.display(&vocab));
            rejected += 1;
        }
    }
    println!("{rejected} of {} traces rejected", traces.len());
    if rejected > 0 {
        return 1;
    }
    0
}

fn specs() {
    let registry = cable::specs::registry();
    for spec in registry.iter() {
        println!("{:14} {}", spec.name(), spec.description());
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: cable <cluster|label|mine|show-fa|check|specs> [--traces FILE] [--fa FILE] \
         [--template unordered|seed:<op>] [--dot OUT] [--script FILE] [--seeds ops] \
         [--threads N] [--stats]"
    );
    exit(2);
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    exit(1);
}
