//! # Cable
//!
//! A reproduction of *Debugging Temporal Specifications with Concept
//! Analysis* (Ammons, Bodík, Larus, Mandelin — PLDI 2003).
//!
//! This facade crate re-exports the whole workspace so that downstream
//! users can depend on a single crate:
//!
//! * [`trace`] — events, traces, trace sets,
//! * [`fa`] — finite automata over event labels; the executed-transition
//!   relation that defines trace similarity; the completed automaton
//!   algebra (complement, difference, distinguishing witnesses),
//! * [`mutate`] — deterministic, seeded spec mutation deriving buggy
//!   reference FAs from correct ones,
//! * [`fca`] — formal concept analysis (contexts, Godin's incremental
//!   lattice algorithm, NextClosure),
//! * [`learn`] — the sk-strings and k-tails automaton learners,
//! * [`workload`] — the synthetic program-trace generator standing in for
//!   the paper's X11 trace corpus,
//! * [`strauss`] — the specification miner (front end + back end),
//! * [`verify`] — the trace-level specification checker producing
//!   violation traces,
//! * [`session`] — Cable itself: concept-lattice-driven labeling sessions
//!   and the labeling strategies of §4.2,
//! * [`specs`] — the seventeen evaluation specifications (Table 1),
//! * [`par`] — the deterministic work-stealing pool the pipeline stages
//!   run on (`CABLE_PAR` / `--threads` control the worker count),
//! * [`store`] — crash-safe persistent session stores (snapshot +
//!   write-ahead journal) behind `CableSession::save`/`open`,
//! * [`guard`] — resource budgets, cooperative cancellation, and the
//!   deterministic fault-injection plane (`CABLE_FAULTS` / `--faults`).
//!
//! # Quickstart
//!
//! ```
//! use cable::prelude::*;
//! use cable::trace::Vocab;
//!
//! // The paper's running example: the stdio file/pipe protocol.
//! let registry = cable::specs::registry();
//! let spec = registry.spec("FilePair").unwrap();
//! let mut vocab = Vocab::new();
//! let workload = spec.generate(42, &mut vocab);
//! let scenarios = cable::strauss::FrontEnd::new(spec.seeds())
//!     .extract_all(&workload, &vocab);
//! assert!(!scenarios.is_empty());
//!
//! // Cluster the scenarios with the unordered template and label them.
//! let all: Vec<Trace> = scenarios.iter().map(|(_, t)| t.clone()).collect();
//! let fa = cable::fa::templates::unordered_of_trace_events(&all);
//! let session = CableSession::new(scenarios, fa);
//! assert!(session.lattice().len() > 1);
//! ```

pub use cable_core as session;
pub use cable_fa as fa;
pub use cable_fca as fca;
pub use cable_guard as guard;
pub use cable_learn as learn;
pub use cable_mutate as mutate;
pub use cable_obs as obs;
pub use cable_par as par;
pub use cable_specs as specs;
pub use cable_store as store;
pub use cable_strauss as strauss;
pub use cable_trace as trace;
pub use cable_util as util;
pub use cable_verify as verify;
pub use cable_workload as workload;

/// Commonly used items, for glob import in examples and tests.
pub mod prelude {
    pub use cable_core::{CableSession, ConceptState, Label, LabelStore};
    pub use cable_fa::{Fa, FaBuilder};
    pub use cable_fca::{ConceptLattice, Context};
    pub use cable_trace::{Event, Trace, TraceSet};
}
