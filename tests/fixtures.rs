//! Tests over the shipped `testdata/` fixtures: the text formats must
//! parse the files the documentation and CLI examples reference, and
//! the fixtures must mean what they claim.

use cable::prelude::*;
use cable::trace::Vocab;
use std::fs;
use std::path::Path;

fn read(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("testdata")
        .join(name);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
}

#[test]
fn violation_fixture_parses_and_matches_the_figures() {
    let mut vocab = Vocab::new();
    let traces = TraceSet::parse(&read("stdio_violations.traces"), &mut vocab).expect("parses");
    assert_eq!(traces.len(), 8);
    let buggy = Fa::parse(&read("figure1_buggy.fa"), &mut vocab).expect("parses");
    let fixed = Fa::parse(&read("figure6_fixed.fa"), &mut vocab).expect("parses");
    // Every fixture trace violates the buggy specification (that is what
    // makes them violation traces).
    for (_, t) in traces.iter() {
        assert!(!buggy.accepts(t), "{}", t.display(&vocab));
    }
    // The popen…pclose traces are accepted by the corrected
    // specification; the rest remain violations (real bugs).
    let pclose = vocab.find_op("pclose").expect("interned");
    let popen = vocab.find_op("popen").expect("interned");
    for (_, t) in traces.iter() {
        let correct = t.events().first().is_some_and(|e| e.op == popen)
            && t.events().last().is_some_and(|e| e.op == pclose);
        assert_eq!(fixed.accepts(t), correct, "{}", t.display(&vocab));
    }
}

#[test]
fn program_fixture_mines_cleanly() {
    let mut vocab = Vocab::new();
    let programs = TraceSet::parse(&read("stdio_programs.traces"), &mut vocab).expect("parses");
    let list: Vec<Trace> = programs.iter().map(|(_, t)| t.clone()).collect();
    let miner = cable::strauss::Miner::new(&["fopen", "popen"]);
    let mined = miner.mine(&list, &vocab);
    assert_eq!(mined.scenarios.len(), 6, "six seeded objects");
    // The fixture deliberately leaks #6.
    let leak = Trace::parse("fopen(X)", &mut vocab).expect("parses");
    assert!(mined.fa.accepts(&leak), "the mined spec learned the leak");
}

#[test]
fn labeling_script_fixture_completes_the_session() {
    let mut vocab = Vocab::new();
    let traces = TraceSet::parse(&read("stdio_violations.traces"), &mut vocab).expect("parses");
    let list: Vec<Trace> = traces.iter().map(|(_, t)| t.clone()).collect();
    let fa = cable::fa::templates::unordered_of_trace_events(&list);
    let mut session = CableSession::new(traces, fa);
    // Replay the script by hand (the CLI's `label` command does the
    // same; this pins the fixture's concept ids).
    for line in read("labeling.script").lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with(';') {
            continue;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        let [cmd, concept, selector, name] = parts.as_slice() else {
            panic!("bad script line {line:?}");
        };
        assert_eq!(*cmd, "label");
        let id = cable::fca::ConceptId(concept.strip_prefix('c').unwrap().parse().unwrap());
        let selector = match *selector {
            "all" => cable::session::TraceSelector::All,
            "unlabeled" => cable::session::TraceSelector::Unlabeled,
            other => cable::session::TraceSelector::WithLabel(
                other.strip_prefix("with:").unwrap().to_owned(),
            ),
        };
        session.label_traces(id, &selector, name);
    }
    assert!(session.all_labeled(), "the script covers every trace");
    // And the labeling is the correct one.
    let pclose = vocab.find_op("pclose").expect("interned");
    let popen = vocab.find_op("popen").expect("interned");
    for (id, t) in session.traces().iter() {
        let correct = t.events().first().is_some_and(|e| e.op == popen)
            && t.events().last().is_some_and(|e| e.op == pclose);
        let label = session.label_of_trace(id).expect("labeled");
        assert_eq!(
            session.labels().name(label),
            if correct { "good" } else { "bad" },
            "{}",
            t.display(&vocab)
        );
    }
}
