//! Seeded never-panic fuzz tests (std-only, deterministic).
//!
//! Strategy: start from a *valid* input (trace text, FA text, a saved
//! store directory), apply seeded random byte mutations — bit flips,
//! byte substitutions, truncations — and require every parser and the
//! store recovery path to return `Ok` or `Err`, never panic. The seeds
//! come from `cable_util::rng`, so a failure reproduces with its
//! printed seed.

use cable::fa::templates;
use cable::prelude::*;
use cable::trace::Vocab;
use cable::util::rng::{seeded, Rng, SmallRng};
use std::fs;
use std::path::Path;

/// Applies 1–8 seeded mutations: bit flips, byte substitutions, and an
/// occasional truncation.
fn mutate(bytes: &mut Vec<u8>, rng: &mut SmallRng) {
    let edits = rng.gen_range(1..=8usize);
    for _ in 0..edits {
        if bytes.is_empty() {
            return;
        }
        match rng.gen_range(0..10u32) {
            0 => {
                let at = rng.gen_range(0..bytes.len());
                bytes.truncate(at);
            }
            1..=4 => {
                let at = rng.gen_range(0..bytes.len());
                let bit = rng.gen_range(0..8u32);
                bytes[at] ^= 1 << bit;
            }
            _ => {
                let at = rng.gen_range(0..bytes.len());
                bytes[at] = (rng.gen_range(0..256u32)) as u8;
            }
        }
    }
}

fn valid_trace_text() -> String {
    "popen(X) pread(X) pclose(X)\npopen(X) pclose(X)\nfopen(Y) fread(Y) fclose(Y)\n\
     ; a comment line\npopen(Z) pread(Z) pread(Z) pclose(Z)\n"
        .to_owned()
}

#[test]
fn mutated_trace_text_never_panics_the_parser() {
    for seed in 0..400u64 {
        let mut rng = seeded(seed);
        let mut bytes = valid_trace_text().into_bytes();
        mutate(&mut bytes, &mut rng);
        // Parsers take &str; arbitrary byte mutations are folded back
        // into UTF-8 the way any file reader would.
        let text = String::from_utf8_lossy(&bytes).into_owned();
        let mut vocab = Vocab::new();
        // Ok or Err both fine; a panic fails the test (seed printed).
        if let Err(e) = TraceSet::parse(&text, &mut vocab) {
            assert!(!e.to_string().is_empty(), "seed {seed}: empty parse error");
        }
    }
}

#[test]
fn mutated_fa_text_never_panics_the_codec() {
    let mut vocab = Vocab::new();
    let traces = TraceSet::parse(&valid_trace_text(), &mut vocab).expect("valid fixture");
    let list: Vec<Trace> = traces.iter().map(|(_, t)| t.clone()).collect();
    let fa = templates::unordered_of_trace_events(&list);
    let valid = fa.to_text(&vocab);
    // The round trip itself must hold before we start breaking it.
    let mut check_vocab = Vocab::new();
    Fa::parse(&valid, &mut check_vocab).expect("the codec round-trips");

    for seed in 0..400u64 {
        let mut rng = seeded(seed);
        let mut bytes = valid.clone().into_bytes();
        mutate(&mut bytes, &mut rng);
        let text = String::from_utf8_lossy(&bytes).into_owned();
        let mut vocab = Vocab::new();
        if let Err(e) = Fa::parse(&text, &mut vocab) {
            assert!(!e.to_string().is_empty(), "seed {seed}: empty parse error");
        }
    }
}

/// Saves a small session and returns its store directory.
fn saved_store(dir: &Path) {
    let mut vocab = Vocab::new();
    let traces = TraceSet::parse(&valid_trace_text(), &mut vocab).expect("valid fixture");
    let list: Vec<Trace> = traces.iter().map(|(_, t)| t.clone()).collect();
    let fa = templates::unordered_of_trace_events(&list);
    let session = CableSession::new(traces, fa);
    let mut stored = session.save(vocab, dir).expect("saving the fuzz store");
    // Leave journal records behind too, so both files get fuzzed.
    stored
        .ingest_text("popen(V3) pclose(V3)\nfopen(V4) fclose(V4)\n", false)
        .expect("ingesting journal records");
}

#[test]
fn mutated_store_files_never_panic_recovery() {
    let base = std::env::temp_dir().join(format!("cable-fuzz-store-{}", std::process::id()));
    let _ = fs::remove_dir_all(&base);
    let pristine = base.join("pristine");
    fs::create_dir_all(&pristine).expect("mkdir");
    saved_store(&pristine);
    let snapshot = fs::read(pristine.join("snapshot.cable")).expect("snapshot exists");
    let journal = fs::read(pristine.join("journal.cable")).expect("journal exists");

    let victim = base.join("victim");
    for seed in 0..120u64 {
        let mut rng = seeded(seed);
        let mut snap = snapshot.clone();
        let mut jour = journal.clone();
        // Mutate one file, the other, or both.
        match rng.gen_range(0..3u32) {
            0 => mutate(&mut snap, &mut rng),
            1 => mutate(&mut jour, &mut rng),
            _ => {
                mutate(&mut snap, &mut rng);
                mutate(&mut jour, &mut rng);
            }
        }
        let _ = fs::remove_dir_all(&victim);
        fs::create_dir_all(&victim).expect("mkdir victim");
        fs::write(victim.join("snapshot.cable"), &snap).expect("write snapshot");
        fs::write(victim.join("journal.cable"), &jour).expect("write journal");
        // Recovery may succeed (journal corruption is survivable by
        // design — the tail is discarded) or fail with a typed error;
        // it must never panic. The seed identifies any failure.
        match CableSession::open(&victim) {
            Ok((stored, report)) => {
                let _ = report;
                assert!(!stored.session().lattice().is_empty(), "seed {seed}");
            }
            Err(e) => assert!(!e.to_string().is_empty(), "seed {seed}: empty error"),
        }
    }
    let _ = fs::remove_dir_all(&base);
}
