//! End-to-end integration tests across the whole pipeline: workload →
//! Strauss mining → Cable debugging → re-mining → verification.

use cable::session::strategy;
use cable::trace::Trace;
use cable::verify::Checker;
use cable_bench::{prepare, ReferenceFaChoice};

/// Specs small enough to run the whole pipeline in a test.
const FAST_SPECS: [&str; 6] = [
    "XOpenDisplay",
    "Quarks",
    "RmvTimeOut",
    "XGetSelOwner",
    "XSetSelOwner",
    "PrsAccelTbl",
];

#[test]
fn debugging_recovers_a_specification_that_separates_good_from_bad() {
    let registry = cable::specs::registry();
    for name in FAST_SPECS {
        let spec = registry.spec(name).expect("known spec");
        let mut p = prepare(spec, 77);
        cable_bench::tables::debug_with_expert(&mut p);
        assert!(p.session.all_labeled(), "{name}");
        // Re-mine from the good traces.
        let good: Vec<Trace> = p
            .session
            .traces_with_label("good")
            .into_iter()
            .map(|id| p.session.traces().trace(id).clone())
            .collect();
        assert!(!good.is_empty(), "{name}: some scenarios are correct");
        let corrected = p.miner.remine(&good);
        // The corrected specification classifies every scenario like the
        // oracle does, up to learner generalisation on the good side:
        // every bad scenario must be rejected.
        for (_, t) in p.scenarios.iter() {
            if !p.oracle.is_good(t) {
                assert!(
                    !corrected.accepts(t),
                    "{name}: corrected spec accepts the bug {}",
                    t.display(&p.vocab)
                );
            }
        }
        // And every good *training* scenario is accepted.
        for t in &good {
            assert!(corrected.accepts(t), "{name}");
        }
    }
}

#[test]
fn corrected_specification_finds_the_injected_bugs() {
    let registry = cable::specs::registry();
    let spec = registry.spec("XOpenDisplay").expect("known spec");
    let mut p = prepare(spec, 99);
    cable_bench::tables::debug_with_expert(&mut p);
    let good: Vec<Trace> = p
        .session
        .traces_with_label("good")
        .into_iter()
        .map(|id| p.session.traces().trace(id).clone())
        .collect();
    let corrected = p.miner.remine(&good);
    let report = Checker::new(corrected).check(&p.workload, &p.vocab);
    // Exactly the oracle-bad scenarios are violations.
    let expected = p
        .scenarios
        .iter()
        .filter(|(_, t)| !p.oracle.is_good(t))
        .count();
    assert_eq!(report.violations.len(), expected);
    assert!(report.bug_summary().total > 0, "bugs were injected");
}

#[test]
fn bottom_up_equals_baseline_with_the_exact_reference_fa() {
    // §5.3: "Bottom-up labeling is equivalent to Baseline labeling on
    // these specifications" — because each class of identical traces has
    // a characteristic set of FA transitions. That premise holds exactly
    // when the reference FA distinguishes every class, e.g. the exact
    // prefix-tree FA.
    use cable::prelude::*;
    use cable_learn::Pta;

    let registry = cable::specs::registry();
    let spec = registry.spec("RmvTimeOut").expect("known spec");
    let mut vocab = cable::trace::Vocab::new();
    let workload = spec.generate(13, &mut vocab);
    let scenarios = cable::strauss::FrontEnd::new(spec.seeds()).extract_all(&workload, &vocab);
    let list: Vec<Trace> = scenarios.iter().map(|(_, t)| t.clone()).collect();
    let exact = Pta::build(&list).to_fa();
    let mut session = CableSession::new(scenarios, exact);
    let oracle = spec.oracle(&mut vocab);
    let o = |t: &Trace| oracle.label(t).to_owned();
    let baseline = strategy::baseline(&session).total();
    let mut rng = cable::util::rng::seeded(5);
    let bu = strategy::bottom_up(&mut session, &o, &mut rng)
        .expect("exact reference is always well-formed")
        .total();
    assert_eq!(bu, baseline);
}

#[test]
fn strategies_agree_on_the_final_labeling() {
    let registry = cable::specs::registry();
    let spec = registry.spec("Quarks").expect("known spec");
    let mut p = prepare(spec, 21);
    let oracle = p.oracle.clone();
    let o = move |t: &Trace| oracle.label(t).to_owned();
    let mut final_labelings = Vec::new();
    let mut rng = cable::util::rng::seeded(9);
    for which in 0..3 {
        match which {
            0 => strategy::top_down(&mut p.session, &o, &mut rng),
            1 => strategy::bottom_up(&mut p.session, &o, &mut rng),
            _ => strategy::random(&mut p.session, &o, &mut rng),
        }
        .expect("well-formed");
        let labels: Vec<String> = (0..p.session.classes().len())
            .map(|c| {
                let l = p.session.labels().get(c).expect("all labeled");
                p.session.labels().name(l).to_owned()
            })
            .collect();
        final_labelings.push(labels);
    }
    assert_eq!(final_labelings[0], final_labelings[1]);
    assert_eq!(final_labelings[1], final_labelings[2]);
}

#[test]
fn reference_fallback_chain_is_exercised() {
    // Across the full registry, the pipeline should use several
    // different reference FA kinds (mined, template, exact) — evidence
    // that the §4.3 fallback logic does real work.
    let registry = cable::specs::registry();
    let mut kinds = std::collections::HashSet::new();
    for name in ["Quarks", "FilePair", "XFreeGC", "RegionsBig"] {
        let spec = registry.spec(name).expect("known spec");
        let p = prepare(spec, 11);
        kinds.insert(match p.reference {
            ReferenceFaChoice::Mined => "mined",
            ReferenceFaChoice::Unordered => "unordered",
            ReferenceFaChoice::SeedOrder(_) => "seed-order",
            ReferenceFaChoice::Exact => "exact",
        });
    }
    assert!(kinds.len() >= 2, "only {kinds:?}");
}
