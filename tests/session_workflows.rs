//! Integration tests for the two §2 debugging workflows: debugging by
//! testing (§2.1, with the verifier) and debugging a mined specification
//! (§2.2, with grouped labels against overgeneralisation).

use cable::prelude::*;
use cable::session::TraceSelector;
use cable::trace::Vocab;
use cable::verify::Checker;

/// §2.1: verify the buggy Figure 1 spec against a workload, cluster the
/// violation traces, label, and check the fix.
#[test]
fn debugging_by_testing_workflow() {
    let mut vocab = Vocab::new();
    let buggy = Fa::parse(
        "\
start s0
accept s2
s0 -> s1 : fopen(X)
s0 -> s1 : popen(X)
s1 -> s1 : fread(X)
s1 -> s1 : fwrite(X)
s1 -> s2 : fclose(X)
",
        &mut vocab,
    )
    .expect("well-formed");
    let registry = cable::specs::registry();
    let spec = registry.spec("FilePair").expect("registered");
    let workload = spec.generate(42, &mut vocab);
    let report = Checker::new(buggy).check(&workload, &vocab);
    assert!(
        !report.violations.is_empty(),
        "the buggy spec reports violations"
    );

    // Violations are of three kinds (§2.1): correct popen…pclose, leaks,
    // and cross-closes; only the first kind is `good`.
    let traces: Vec<Trace> = report.violations.iter().map(|(_, t)| t.clone()).collect();
    let fa = cable::fa::templates::unordered_of_trace_events(&traces);
    let mut session = CableSession::new(report.violations, fa);
    let oracle = spec.oracle(&mut vocab);
    assert!(session.is_well_formed_for(|t| oracle.label(t)));

    // Label with repeated top-down passes (as the §2.1 narrative does).
    while !session.all_labeled() {
        let mut progress = false;
        for id in session.lattice().bfs_top_down() {
            let unlabeled = session.unlabeled_in(id);
            if unlabeled.is_empty() {
                continue;
            }
            let labels: Vec<&str> = unlabeled
                .iter()
                .map(|&c| oracle.label(session.traces().trace(session.classes()[c].representative)))
                .collect();
            if labels.iter().all(|l| *l == labels[0]) {
                let l = labels[0].to_owned();
                session.label_traces(id, &TraceSelector::Unlabeled, &l);
                progress = true;
            }
        }
        assert!(progress, "well-formed lattice always makes progress");
    }

    // Step 2b: checking the labeling — the FA for all good traces should
    // be the popen…pclose protocol.
    let good: Vec<Trace> = session
        .representatives_with_label("good")
        .into_iter()
        .cloned()
        .collect();
    assert!(!good.is_empty());
    let popen = vocab.find_op("popen").expect("interned");
    let pclose = vocab.find_op("pclose").expect("interned");
    for t in &good {
        assert_eq!(t.events().first().map(|e| e.op), Some(popen));
        assert_eq!(t.events().last().map(|e| e.op), Some(pclose));
    }
    // Step 3: the fixed spec accepts all good traces and rejects all bad.
    let fixed = spec.ground_truth(&mut vocab);
    for t in &good {
        assert!(fixed.accepts(t));
    }
    for t in session.representatives_with_label("bad") {
        assert!(!fixed.accepts(t));
    }
}

/// §2.2: grouped good labels (`good:fopen` vs `good:popen`) let the
/// expert mine each resource kind separately and avoid the
/// overgeneralisation that merges fopen/popen closes.
#[test]
fn grouped_labels_prevent_overgeneralisation() {
    let mut vocab = Vocab::new();
    let registry = cable::specs::registry();
    let spec = registry.spec("FilePair").expect("registered");
    let workload = spec.generate(7, &mut vocab);
    let miner = cable::strauss::Miner::new(spec.seeds());
    let mined = miner.mine(&workload, &vocab);
    let oracle = spec.oracle(&mut vocab);

    // Label each good scenario by its resource kind.
    let mut by_kind: std::collections::BTreeMap<String, Vec<Trace>> = Default::default();
    for (_, t) in mined.scenarios.iter() {
        let label = oracle.grouped_label(t, &vocab);
        if label != "bad" {
            by_kind.entry(label).or_default().push(t.clone());
        }
    }
    assert_eq!(by_kind.len(), 2, "good:fopen and good:popen");

    // Mine each kind separately.
    let wrong_close = Trace::parse("popen(X) fread(X) fclose(X)", &mut vocab).unwrap();
    for (label, traces) in &by_kind {
        let fa = miner.remine(traces);
        for t in traces {
            assert!(fa.accepts(t), "{label}");
        }
        assert!(!fa.accepts(&wrong_close), "{label}: no cross-close");
    }
}

/// The Show FA summary check of step 2b: the learned FA for the `good`
/// traces accepts them and rejects the `bad` representatives.
#[test]
fn show_fa_summarises_labelled_traces() {
    let mut vocab = Vocab::new();
    let mut traces = TraceSet::new();
    for t in [
        "popen(X) pclose(X)",
        "popen(X) fread(X) pclose(X)",
        "popen(X) fread(X)",
        "fopen(X) pclose(X)",
    ] {
        traces.push(Trace::parse(t, &mut vocab).unwrap());
    }
    let all: Vec<Trace> = traces.iter().map(|(_, t)| t.clone()).collect();
    let fa = cable::fa::templates::unordered_of_trace_events(&all);
    let mut session = CableSession::new(traces, fa);
    let top = session.lattice().top();
    // Label the two popen…pclose classes good (they share the popen and
    // pclose self-loops: a single concept).
    let pclose = vocab.find_op("pclose").expect("interned");
    let popen = vocab.find_op("popen").expect("interned");
    for id in session.lattice().bfs_top_down() {
        let classes = session.select(id, &TraceSelector::All);
        let uniform_good = classes.iter().all(|&c| {
            let t = session.traces().trace(session.classes()[c].representative);
            t.events().first().is_some_and(|e| e.op == popen)
                && t.events().last().is_some_and(|e| e.op == pclose)
        });
        if uniform_good && !classes.is_empty() {
            session.label_traces(id, &TraceSelector::All, "good");
        }
    }
    session.label_traces(top, &TraceSelector::Unlabeled, "bad");

    let good_fa = session.show_fa(top, &TraceSelector::WithLabel("good".into()));
    for t in session.representatives_with_label("good") {
        assert!(good_fa.accepts(t));
    }
    for t in session.representatives_with_label("bad") {
        assert!(!good_fa.accepts(t), "{}", t.display(&vocab));
    }
}
