//! Integration tests for the paper's quantitative and structural claims
//! (§3 and §5), checked on the reproduction's own workloads.

use cable::session::strategy;
use cable::trace::Trace;
use cable_bench::prepare;
use std::time::Instant;

/// A mid-sized subset that keeps test time reasonable while covering the
/// small/medium/large spectrum.
const SPECS: [&str; 5] = [
    "FilePair",
    "XtFree",
    "XInternAtom",
    "RmvTimeOut",
    "XSetSelOwner",
];

#[test]
fn expert_beats_baseline_by_the_paper_margin() {
    // §5.3 headline: "using Cable to debug these specifications requires,
    // on average, less than one third as many user decisions as debugging
    // by examining all traces".
    let registry = cable::specs::registry();
    let mut expert_total = 0usize;
    let mut baseline_total = 0usize;
    for name in SPECS {
        let spec = registry.spec(name).expect("known spec");
        let mut p = prepare(spec, 2003);
        let oracle = p.oracle.clone();
        let o = move |t: &Trace| oracle.label(t).to_owned();
        baseline_total += strategy::baseline(&p.session).total();
        expert_total += strategy::expert(&mut p.session, &o)
            .expect("well-formed")
            .total();
    }
    assert!(
        3 * expert_total < baseline_total,
        "expert {expert_total} vs baseline {baseline_total}"
    );
}

#[test]
fn dramatic_improvement_on_the_many_scenario_spec() {
    // §1: "In one case, using Cable required only 28 decisions, while
    // debugging by examining all traces required 224." XtFree is that
    // case here: the improvement must be at least 5×.
    let registry = cable::specs::registry();
    let spec = registry.spec("XtFree").expect("known spec");
    let mut p = prepare(spec, 2003);
    let oracle = p.oracle.clone();
    let o = move |t: &Trace| oracle.label(t).to_owned();
    let baseline = strategy::baseline(&p.session).total();
    let expert = strategy::expert(&mut p.session, &o)
        .expect("well-formed")
        .total();
    assert!(baseline >= 200, "XtFree has many classes ({baseline})");
    assert!(
        5 * expert < baseline,
        "expert {expert} vs baseline {baseline}"
    );
}

#[test]
fn optimal_lower_bounds_every_strategy() {
    let registry = cable::specs::registry();
    for name in ["RmvTimeOut", "XInternAtom"] {
        let spec = registry.spec(name).expect("known spec");
        let mut p = prepare(spec, 7);
        let oracle = p.oracle.clone();
        let o = move |t: &Trace| oracle.label(t).to_owned();
        let opt = strategy::optimal(&mut p.session, &o, 500_000)
            .expect("small enough")
            .total();
        let mut rng = cable::util::rng::seeded(3);
        for _ in 0..5 {
            let td = strategy::top_down(&mut p.session, &o, &mut rng).expect("well-formed");
            assert!(opt <= td.total(), "{name}");
            let r = strategy::random(&mut p.session, &o, &mut rng).expect("well-formed");
            assert!(opt <= r.total(), "{name}");
        }
        let bu = strategy::bottom_up(&mut p.session, &o, &mut rng).expect("well-formed");
        assert!(opt <= bu.total(), "{name}");
        let e = strategy::expert(&mut p.session, &o).expect("well-formed");
        assert!(opt <= e.total(), "{name}");
    }
}

#[test]
fn concept_analysis_is_affordable() {
    // §5.2: lattice construction "never took longer than about 22
    // seconds"; ours must be far under that on every spec.
    let registry = cable::specs::registry();
    for spec in registry.iter() {
        let p = prepare(spec, 2003);
        let start = Instant::now();
        let lattice = cable::fca::ConceptLattice::build(p.session.context());
        let elapsed = start.elapsed();
        assert!(elapsed.as_secs() < 22, "{}: {elapsed:?}", spec.name());
        assert_eq!(lattice.len(), p.session.lattice().len());
    }
}

#[test]
fn godin_and_next_closure_agree_on_real_session_contexts() {
    let registry = cable::specs::registry();
    for name in ["FilePair", "XtFree"] {
        let spec = registry.spec(name).expect("known spec");
        let p = prepare(spec, 2003);
        let ctx = p.session.context();
        let a: std::collections::HashSet<_> = cable::fca::godin::concepts(ctx)
            .into_iter()
            .map(|c| (c.extent, c.intent))
            .collect();
        let b: std::collections::HashSet<_> = cable::fca::next_closure::concepts(ctx)
            .into_iter()
            .map(|c| (c.extent, c.intent))
            .collect();
        assert_eq!(a, b, "{name}");
    }
}

#[test]
fn similarity_is_antitone_on_real_lattices() {
    // §3.1: "the sets of traces in concepts get smaller but more similar
    // as one moves down in the lattice".
    let registry = cable::specs::registry();
    let spec = registry.spec("FilePair").expect("known spec");
    let p = prepare(spec, 2003);
    let l = p.session.lattice();
    for id in l.ids() {
        for &child in l.children(id) {
            assert!(l.concept(child).extent.len() <= l.concept(id).extent.len());
            assert!(l.concept(child).similarity() >= l.concept(id).similarity());
        }
    }
}

#[test]
fn small_specs_gain_little_from_cable() {
    // §5.3: "Cable does not appear to have a large advantage for
    // specifications built from less than 10 unique scenario traces."
    let registry = cable::specs::registry();
    let spec = registry.spec("XGetSelOwner").expect("known spec");
    let mut p = prepare(spec, 2003);
    assert!(p.session.classes().len() < 10);
    let oracle = p.oracle.clone();
    let o = move |t: &Trace| oracle.label(t).to_owned();
    let baseline = strategy::baseline(&p.session).total();
    let expert = strategy::expert(&mut p.session, &o)
        .expect("well-formed")
        .total();
    // No dramatic improvement: within 2× either way.
    assert!(
        expert * 2 >= baseline || baseline <= 10,
        "{expert} vs {baseline}"
    );
}

#[test]
fn z_ranking_puts_real_bugs_before_false_positives() {
    // §6: ranking tells the user what to inspect first. Violations of
    // the buggy Figure 1 spec include false positives (correct
    // popen…pclose traces); z-ranking must place the real fopen bugs
    // above them.
    use cable::prelude::*;
    use cable::verify::{Checker, RankedReport};
    let mut vocab = cable::trace::Vocab::new();
    let buggy = Fa::parse(
        "start s0\naccept s2\ns0 -> s1 : fopen(X)\ns0 -> s1 : popen(X)\n\
         s1 -> s1 : fread(X)\ns1 -> s1 : fwrite(X)\ns1 -> s2 : fclose(X)\n",
        &mut vocab,
    )
    .expect("well-formed");
    let registry = cable::specs::registry();
    let spec = registry.spec("FilePair").expect("registered");
    let workload = spec.generate(2003, &mut vocab);
    let (report, stats) = Checker::new(buggy).check_with_stats(&workload, &vocab);
    let ranked = RankedReport::new(&report, &stats);
    let oracle = spec.oracle(&mut vocab);
    let is_real = |id| !oracle.is_good(report.violations.trace(id));
    let real_total = ranked
        .classes()
        .iter()
        .filter(|c| is_real(c.representative))
        .count();
    assert!(real_total > 0, "real bugs exist");
    let base_rate = real_total as f64 / ranked.len() as f64;
    let p_at_k = ranked.precision_at(real_total, is_real);
    assert!(
        p_at_k > base_rate,
        "precision@{real_total} {p_at_k:.2} vs base rate {base_rate:.2}"
    );
}

#[test]
fn lattice_size_grows_roughly_linearly_with_transitions() {
    // §5.2's scaling observation, on the synthetic sweep.
    let rows = cable_bench::scaling(2003);
    let (_, slope, r2) = cable_bench::tables::scaling_fit(&rows).expect("enough points");
    assert!(slope > 0.0);
    assert!(r2 > 0.5, "roughly linear: r² = {r2}");
}
