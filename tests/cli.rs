//! Integration tests for the `cable` binary: option handling, the
//! persistent-session subcommands, and the `serve` exposition server,
//! driven through real processes.

use std::fs;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Command, Output, Stdio};
use std::time::Duration;

fn cable(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_cable"))
        .args(args)
        .output()
        .expect("cable runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cable-cli-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn unknown_options_are_rejected_with_a_usage_error() {
    let out = cable(&[
        "cluster",
        "--traces",
        "testdata/stdio_violations.traces",
        "--frobnicate",
    ]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown option \"--frobnicate\""));
    assert!(stderr(&out).contains("usage:"));
}

#[test]
fn unknown_commands_and_subcommands_are_rejected() {
    let out = cable(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown command"));

    let out = cable(&["session", "frobnicate", "--store", "/nonexistent"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown session subcommand"));

    let out = cable(&["session"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("session needs a subcommand"));
}

#[test]
fn trace_parse_errors_name_the_failing_line() {
    let dir = tmp_dir("badline");
    let bad = dir.join("bad.traces");
    fs::write(&bad, "fopen(X) fclose(X)\nfopen(X)\nfopen(X) wat wat((\n").unwrap();
    let out = cable(&["cluster", "--traces", bad.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    assert!(
        stderr(&out).contains("line 3"),
        "stderr was: {}",
        stderr(&out)
    );
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn diff_spec_prints_a_minimal_witness_accepted_by_exactly_one_spec() {
    let out = cable(&[
        "diff-spec",
        "testdata/figure1_buggy.fa",
        "testdata/figure6_fixed.fa",
    ]);
    assert_eq!(out.status.code(), Some(1), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("specs differ"), "stdout was: {text}");
    assert!(text.contains("accepted by"), "stdout was: {text}");

    // Replay the printed witness through both specifications: it must
    // be accepted by exactly one, and no one-event trace separates the
    // stdio specs (they agree on every single operation).
    let witness_line = text
        .lines()
        .find(|l| l.starts_with("  "))
        .expect("witness line")
        .trim();
    let mut vocab = cable::trace::Vocab::new();
    let witness = cable::trace::Trace::parse(witness_line, &mut vocab).expect("witness parses");
    assert_eq!(witness.len(), 2, "minimal stdio witness has two events");
    let mut load =
        |path: &str| cable::fa::Fa::parse(&fs::read_to_string(path).unwrap(), &mut vocab).unwrap();
    let buggy = load("testdata/figure1_buggy.fa");
    let fixed = load("testdata/figure6_fixed.fa");
    assert_ne!(
        buggy.accepts(&witness),
        fixed.accepts(&witness),
        "witness {witness_line:?} must separate the specs"
    );
}

#[test]
fn diff_spec_reports_equivalent_specs_with_exit_zero() {
    let out = cable(&[
        "diff-spec",
        "testdata/figure1_buggy.fa",
        "testdata/figure1_buggy.fa",
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert!(stdout(&out).contains("language-equivalent"));
}

#[test]
fn diff_spec_rejects_incompatible_alphabets_and_bad_usage() {
    let dir = tmp_dir("diffspec");
    let locks = dir.join("locks.fa");
    fs::write(
        &locks,
        "start s0\naccept s0\ns0 -> s1 : lock(X)\ns1 -> s0 : unlock(X)\n",
    )
    .unwrap();
    let out = cable(&[
        "diff-spec",
        locks.to_str().unwrap(),
        "testdata/figure1_buggy.fa",
    ]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr(&out).contains("common alphabet"),
        "stderr was: {}",
        stderr(&out)
    );

    let out = cable(&["diff-spec", "--frobnicate", "a.fa", "b.fa"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("usage:"));

    let out = cable(&["diff-spec", "testdata/figure1_buggy.fa"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("exactly two"));

    let out = cable(&[
        "diff-spec",
        dir.join("missing.fa").to_str().unwrap(),
        "testdata/figure1_buggy.fa",
    ]);
    assert_eq!(out.status.code(), Some(2));
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn session_lifecycle_open_ingest_label_resume_compact() {
    let dir = tmp_dir("lifecycle");
    let store = dir.join("store");
    let store = store.to_str().unwrap();

    // Open: cluster the violation corpus and save it.
    let out = cable(&[
        "session",
        "open",
        "--traces",
        "testdata/stdio_violations.traces",
        "--store",
        store,
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("saved"));

    // Opening again must refuse to clobber.
    let out = cable(&[
        "session",
        "open",
        "--traces",
        "testdata/stdio_violations.traces",
        "--store",
        store,
    ]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("already holds a store"));

    // Ingest two traces, one of them a duplicate of an existing class.
    let extra = dir.join("extra.traces");
    fs::write(&extra, "popen(X) pclose(X)\nfopen(Y) fread(Y) fclose(Y)\n").unwrap();
    let out = cable(&[
        "session",
        "ingest",
        "--store",
        store,
        "--traces",
        extra.to_str().unwrap(),
        "--fsync-per-trace",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(
        stdout(&out).contains("ingested 2 traces (1 new classes)"),
        "stdout was: {}",
        stdout(&out)
    );

    // Label the saved session through a script; decisions are journaled.
    let script = dir.join("label.script");
    fs::write(&script, "label c0 all seen\n").unwrap();
    let out = cable(&[
        "label",
        "--store",
        store,
        "--script",
        script.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(!stdout(&out).contains("(unlabeled)"));

    // Resume: the journaled traces and labels are all there.
    let json = dir.join("state.jsonl");
    let out = cable(&[
        "session",
        "resume",
        "--store",
        store,
        "--json-out",
        json.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stderr(&out).contains("journal recovery:"));
    let state = fs::read_to_string(&json).unwrap();
    assert!(state.contains("\"record\":\"session_state\""), "{state}");
    assert!(state.contains("\"traces\":10"), "{state}");
    assert!(state.contains("\"generation\":0"), "{state}");

    // Compact, then resume again: nothing to replay, same state.
    let out = cable(&["session", "compact", "--store", store]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("compacted to generation 1"));
    let json2 = dir.join("state2.jsonl");
    let out = cable(&[
        "session",
        "resume",
        "--store",
        store,
        "--json-out",
        json2.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stderr(&out).contains("0 records replayed"));
    let state2 = fs::read_to_string(&json2).unwrap();
    // The digests must survive compaction bit-identically; only the
    // generation moves.
    assert_eq!(
        state.replace("\"generation\":0", "\"generation\":1"),
        state2
    );
    fs::remove_dir_all(&dir).unwrap();
}

/// One HTTP/1.1 GET against the serve endpoint; returns (status line,
/// body).
fn http_get(addr: &str, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to serve");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("response has a header/body split");
    let status = head.lines().next().unwrap_or_default().to_owned();
    (status, body.to_owned())
}

#[test]
fn serve_exposes_metrics_and_health_over_http() {
    let dir = tmp_dir("serve");
    let store = dir.join("store");
    let out = cable(&[
        "session",
        "open",
        "--traces",
        "testdata/stdio_violations.traces",
        "--store",
        store.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));

    // Bare port 0: binds an ephemeral port on 127.0.0.1 and announces
    // the bound address on stdout.
    let mut child = Command::new(env!("CARGO_BIN_EXE_cable"))
        .args([
            "serve",
            "--obs-listen",
            "0",
            "--store",
            store.to_str().unwrap(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("serve starts");
    let mut announce = String::new();
    BufReader::new(child.stdout.take().unwrap())
        .read_line(&mut announce)
        .unwrap();
    let addr = announce
        .trim()
        .strip_prefix("serving http://")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or_else(|| panic!("unexpected announcement {announce:?}"))
        .to_owned();
    assert!(
        addr.starts_with("127.0.0.1:"),
        "bare port binds localhost: {addr}"
    );

    let (status, body) = http_get(&addr, "/healthz");
    assert!(status.contains("200"), "{status}");
    assert!(body.contains("\"generation\":0"), "{body}");
    assert!(body.contains("\"journal_lag_bytes\""), "{body}");
    assert!(body.contains("\"journal_lag_records\""), "{body}");

    let (status, metrics) = http_get(&addr, "/metrics");
    assert!(status.contains("200"), "{status}");
    // The /healthz hit above was counted, so the request counter is
    // registered and nonzero, and every histogram family carries the
    // summary quantiles.
    assert!(
        metrics.contains("# TYPE obs_http_requests counter"),
        "{metrics}"
    );
    assert!(metrics.contains("quantile=\"0.99\""), "{metrics}");

    let (status, tracez) = http_get(&addr, "/tracez");
    assert!(status.contains("200"), "{status}");
    assert!(tracez.contains("\"recording\":true"), "{tracez}");

    let (status, _) = http_get(&addr, "/nope");
    assert!(status.contains("404"), "{status}");

    child.kill().unwrap();
    child.wait().unwrap();
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn budget_exceeded_cluster_exits_4_with_a_deterministic_partial() {
    // The same budget trip must produce bit-identical partial output
    // whatever the worker count: under a budget the lattice build takes
    // the sequential guarded path.
    let run = |threads: &str| {
        cable(&[
            "cluster",
            "--traces",
            "testdata/stdio_violations.traces",
            "--max-concepts",
            "3",
            "--threads",
            threads,
        ])
    };
    let one = run("1");
    let eight = run("8");
    assert_eq!(one.status.code(), Some(4), "{}", stderr(&one));
    assert_eq!(eight.status.code(), Some(4), "{}", stderr(&eight));
    assert!(
        stderr(&one).contains("budget exceeded"),
        "stderr was: {}",
        stderr(&one)
    );
    assert!(!stdout(&one).is_empty(), "partial summary still prints");
    assert_eq!(
        stdout(&one),
        stdout(&eight),
        "partial result must not depend on the worker count"
    );
}

#[test]
fn keep_going_ingest_skips_bad_lines_and_reports_them() {
    let dir = tmp_dir("keepgoing");
    let store = dir.join("store");
    let out = cable(&[
        "session",
        "open",
        "--traces",
        "testdata/stdio_violations.traces",
        "--store",
        store.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));

    let mixed = dir.join("mixed.traces");
    fs::write(
        &mixed,
        "popen(X) pclose(X)\nthis is ( garbage\nfopen(Y) fclose(Y)\n\nwat((\n",
    )
    .unwrap();
    let out = cable(&[
        "session",
        "ingest",
        "--store",
        store.to_str().unwrap(),
        "--traces",
        mixed.to_str().unwrap(),
        "--keep-going",
    ]);
    assert_eq!(out.status.code(), Some(1), "{}", stderr(&out));
    let err = stderr(&out);
    assert!(err.contains(":2: skipped:"), "stderr was: {err}");
    assert!(err.contains(":5: skipped:"), "stderr was: {err}");
    assert!(
        err.contains("skipped 2 malformed of 4 trace lines"),
        "stderr was: {err}"
    );
    assert!(
        stdout(&out).contains("ingested 2 traces"),
        "stdout was: {}",
        stdout(&out)
    );

    // Without --keep-going the same file is a hard error.
    let out = cable(&[
        "session",
        "ingest",
        "--store",
        store.to_str().unwrap(),
        "--traces",
        mixed.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("line 2"), "{}", stderr(&out));
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn injected_io_fault_is_a_typed_error_and_the_rerun_succeeds() {
    let dir = tmp_dir("iofault");
    let store = dir.join("store");
    let open = |faults: Option<&str>| {
        let mut args = vec![
            "session",
            "open",
            "--traces",
            "testdata/stdio_violations.traces",
            "--store",
            store.to_str().unwrap(),
        ];
        if let Some(spec) = faults {
            args.push("--faults");
            args.push(spec);
        }
        cable(&args)
    };
    let out = open(Some("7:io@store.publish#1"));
    assert_eq!(out.status.code(), Some(1), "{}", stderr(&out));
    let err = stderr(&out);
    assert!(err.contains("injected fault: io@store.publish"), "{err}");
    assert!(!err.contains("panicked"), "typed error, not a panic: {err}");

    // The failed publish left no committed store behind; a clean rerun
    // of the same command succeeds.
    let out = open(None);
    assert!(out.status.success(), "{}", stderr(&out));
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn injected_worker_panic_is_contained_and_the_rerun_succeeds() {
    let run = |faults: Option<&str>| {
        let mut args = vec![
            "cluster",
            "--traces",
            "testdata/stdio_violations.traces",
            "--threads",
            "4",
        ];
        if let Some(spec) = faults {
            args.push("--faults");
            args.push(spec);
        }
        cable(&args)
    };
    let out = run(Some("1:panic@par.task#1"));
    assert_eq!(out.status.code(), Some(5), "{}", stderr(&out));
    assert!(
        stderr(&out).contains("error: task panicked: injected fault: panic@par.task"),
        "stderr was: {}",
        stderr(&out)
    );
    let out = run(None);
    assert!(out.status.success(), "{}", stderr(&out));
}

/// Reads until the first CRLF (TCP may deliver the status line in
/// several fragments) and returns everything received so far.
fn read_status_line(stream: &mut TcpStream) -> String {
    let mut bytes = Vec::new();
    let mut buf = [0u8; 256];
    loop {
        match stream.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                bytes.extend_from_slice(&buf[..n]);
                if bytes.windows(2).any(|w| w == b"\r\n") {
                    break;
                }
            }
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

/// Satellite hardening of the obs HTTP endpoint, exercised over raw TCP
/// against a real `cable serve` process: oversized request heads get a
/// 431, and a herd of idle (slowloris-style) connections cannot wedge
/// the server — it keeps answering, at worst with an immediate 503.
#[test]
fn serve_survives_oversized_heads_and_idle_connection_herds() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_cable"))
        .args(["serve", "--obs-listen", "0"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("serve starts");
    let mut announce = String::new();
    BufReader::new(child.stdout.take().unwrap())
        .read_line(&mut announce)
        .unwrap();
    let addr = announce
        .trim()
        .strip_prefix("serving http://")
        .and_then(|rest| rest.split('/').next())
        .expect("address announcement")
        .to_owned();

    // Oversized request line + headers: the server answers 431 instead
    // of buffering without bound.
    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    write!(stream, "GET /metrics HTTP/1.1\r\n").unwrap();
    let _ = write!(stream, "X-Filler: {}\r\n\r\n", "x".repeat(64 * 1024));
    let status = read_status_line(&mut stream);
    assert!(status.starts_with("HTTP/1.1 431"), "{status}");
    drop(stream);

    // Slowloris herd: open idle connections up to the concurrency cap.
    // The server must still answer promptly — a 503 at the cap is the
    // survival behaviour; anything but a stall is acceptable.
    let idle: Vec<TcpStream> = (0..cable::obs::http::MAX_CONNECTIONS)
        .map(|_| TcpStream::connect(&addr).expect("idle connect"))
        .collect();
    let mut stream = TcpStream::connect(&addr).expect("connect past the cap");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    write!(stream, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
    let status = read_status_line(&mut stream);
    assert!(status.starts_with("HTTP/1.1"), "{status}");
    drop(stream);
    drop(idle);

    // Once the herd is gone (handlers time out within 2 s), normal
    // service resumes.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let (status, body) = http_get(&addr, "/healthz");
        if status.contains("200") {
            assert!(body.contains("\"guard\""), "healthz reports guard: {body}");
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "server did not recover from the idle herd: {status}"
        );
        std::thread::sleep(Duration::from_millis(200));
    }
    child.kill().unwrap();
    child.wait().unwrap();
}

/// Spawns `cable` with the given args, waits for the `serving http://`
/// announcement on stdout (skipping any earlier output lines), and
/// returns the child plus the bound address.
fn spawn_serving(args: &[&str]) -> (std::process::Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_cable"))
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("cable starts");
    let mut reader = BufReader::new(child.stdout.take().unwrap());
    for _ in 0..32 {
        let mut line = String::new();
        if reader.read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        if let Some(addr) = line
            .trim()
            .strip_prefix("serving http://")
            .and_then(|rest| rest.split('/').next())
        {
            return (child, addr.to_owned());
        }
    }
    let _ = child.kill();
    let _ = child.wait();
    panic!("cable never announced a serving address");
}

/// Satellite `?limit=N` hardening plus the new exposition endpoints,
/// exercised over raw TCP: a well-formed limit is honoured with a 200,
/// anything else (garbage, zero, unknown keys) is a 400 — never a
/// silently-clamped success.
#[test]
fn serve_validates_limit_queries_and_exposes_eventz_and_sloz() {
    let (mut child, addr) = spawn_serving(&["serve", "--obs-listen", "0"]);

    let (status, body) = http_get(&addr, "/eventz");
    assert!(status.contains("200"), "{status}");
    assert!(body.contains("\"events\""), "{body}");
    assert!(body.contains("\"total\""), "{body}");

    let (status, body) = http_get(&addr, "/sloz");
    assert!(status.contains("200"), "{status}");
    assert!(body.contains("\"windows\""), "{body}");
    assert!(body.contains("\"error_budget\""), "{body}");

    for path in ["/tracez?limit=5", "/eventz?limit=1", "/tracez?limit=100000"] {
        let (status, _) = http_get(&addr, path);
        assert!(status.contains("200"), "{path}: {status}");
    }
    for path in [
        "/tracez?limit=garbage",
        "/tracez?limit=0",
        "/tracez?limit=-1",
        "/eventz?limit=999999999",
        "/eventz?limit=",
        "/metrics?frobnicate=1",
    ] {
        let (status, body) = http_get(&addr, path);
        assert!(status.contains("400"), "{path}: {status} {body}");
    }

    child.kill().unwrap();
    child.wait().unwrap();
}

/// `cable profile diff` over two real resumed sessions: each `session
/// resume --obs-listen` run leaves a continuous-profile JSONL behind in
/// `store/profiles/`, and diffing the two produces a non-empty report
/// whose ordering is stable across invocations.
#[test]
fn profile_diff_of_two_resume_runs_is_nonempty_and_stable() {
    let dir = tmp_dir("profdiff");
    let store = dir.join("store");
    let out = cable(&[
        "session",
        "open",
        "--traces",
        "testdata/stdio_violations.traces",
        "--store",
        store.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));

    // One serve run = one profile-<pid>.jsonl; the final snapshot is
    // written on shutdown, but kill(2) skips destructors, so wait for a
    // flushed periodic tick before killing.
    let profile_run = || {
        let (mut child, _addr) = spawn_serving(&[
            "session",
            "resume",
            "--store",
            store.to_str().unwrap(),
            "--obs-listen",
            "0",
            "--profile-interval-ms",
            "25",
        ]);
        let path = store
            .join("profiles")
            .join(format!("profile-{}.jsonl", child.id()));
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while fs::metadata(&path).map(|m| m.len()).unwrap_or(0) == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "no profile snapshot appeared at {}",
                path.display()
            );
            std::thread::sleep(Duration::from_millis(50));
        }
        child.kill().unwrap();
        child.wait().unwrap();
        path
    };
    let before = profile_run();
    let after = profile_run();
    assert_ne!(before, after, "distinct pids, distinct profile files");

    let diff = |a: &PathBuf, b: &PathBuf| {
        let out = cable(&["profile", "diff", a.to_str().unwrap(), b.to_str().unwrap()]);
        assert!(out.status.success(), "{}", stderr(&out));
        stdout(&out)
    };
    let report = diff(&before, &after);
    assert!(!report.contains("no spans"), "{report}");
    assert!(
        report.lines().count() >= 2 && report.contains("delta"),
        "a header plus at least one span row: {report}"
    );
    assert!(
        report.contains("fca.") || report.contains("core."),
        "resume replays the pipeline, so its spans show up: {report}"
    );
    assert_eq!(
        report,
        diff(&before, &after),
        "the report order is stable across invocations"
    );
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn incremental_ingest_matches_clustering_the_whole_corpus_at_once() {
    let dir = tmp_dir("equivalence");
    let base = dir.join("base.traces");
    let extra = dir.join("extra.traces");
    let whole = dir.join("whole.traces");
    let base_text = "\
fopen(X) fread(X) fclose(X)
fopen(X) fwrite(X) fclose(X)
popen(Y) fread(Y) pclose(Y)
";
    let extra_text = "\
popen(Y) fwrite(Y) pclose(Y)
fopen(X) fread(X) fclose(X)
fopen(Z) fclose(Z)
";
    fs::write(&base, base_text).unwrap();
    fs::write(&extra, extra_text).unwrap();
    fs::write(&whole, format!("{base_text}{extra_text}")).unwrap();

    // Incremental ingest needs the reference FA fixed up front (the
    // unordered template depends on the corpus), so use the Figure 6
    // specification for both runs.
    let store_inc = dir.join("incremental");
    let out = cable(&[
        "session",
        "open",
        "--traces",
        base.to_str().unwrap(),
        "--fa",
        "testdata/figure6_fixed.fa",
        "--store",
        store_inc.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let out = cable(&[
        "session",
        "ingest",
        "--store",
        store_inc.to_str().unwrap(),
        "--traces",
        extra.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));

    let store_whole = dir.join("whole");
    let out = cable(&[
        "session",
        "open",
        "--traces",
        whole.to_str().unwrap(),
        "--fa",
        "testdata/figure6_fixed.fa",
        "--store",
        store_whole.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));

    let mut states = Vec::new();
    for store in [&store_inc, &store_whole] {
        let json = store.with_extension("jsonl");
        let out = cable(&[
            "session",
            "resume",
            "--store",
            store.to_str().unwrap(),
            "--json-out",
            json.to_str().unwrap(),
        ]);
        assert!(out.status.success(), "{}", stderr(&out));
        states.push(fs::read_to_string(&json).unwrap());
    }
    assert_eq!(
        states[0], states[1],
        "incremental ingest must converge on the batch-built state"
    );
    fs::remove_dir_all(&dir).unwrap();
}

/// One HTTP/1.1 POST with a JSON body; returns (status line, body).
fn http_post(addr: &str, path: &str, body: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to serve");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    write!(
        stream,
        "POST {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("response has a header/body split");
    let status = head.lines().next().unwrap_or_default().to_owned();
    (status, body.to_owned())
}

/// Satellite `--max-connections` configurability: the flag and the
/// `CABLE_MAX_CONNS` environment variable size the worker pool, and
/// every unknown or non-positive value is a usage error (exit 2), never
/// a silent fallback to the default.
#[test]
fn max_connections_rejects_bad_values_and_accepts_good_ones() {
    for bad in ["0", "-1", "eight", ""] {
        let out = cable(&["serve", "--obs-listen", "0", "--max-connections", bad]);
        assert_eq!(out.status.code(), Some(2), "--max-connections {bad:?}");
        assert!(stderr(&out).contains("usage:"), "{}", stderr(&out));
    }
    for bad in ["0", "nope"] {
        let out = Command::new(env!("CARGO_BIN_EXE_cable"))
            .args(["serve", "--obs-listen", "0"])
            .env("CABLE_MAX_CONNS", bad)
            .output()
            .expect("cable runs");
        assert_eq!(out.status.code(), Some(2), "CABLE_MAX_CONNS={bad:?}");
        assert!(stderr(&out).contains("CABLE_MAX_CONNS"), "{}", stderr(&out));
    }
    // `--api` and `--store-root` only make sense together.
    let out = cable(&["serve", "--obs-listen", "0", "--api"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("--store-root"), "{}", stderr(&out));
    let out = cable(&["serve", "--obs-listen", "0", "--store-root", "/tmp/x"]);
    assert_eq!(out.status.code(), Some(2));

    // A valid flag value serves normally.
    let (mut child, addr) =
        spawn_serving(&["serve", "--obs-listen", "0", "--max-connections", "2"]);
    let (status, _) = http_get(&addr, "/healthz");
    assert!(status.contains("200"), "{status}");
    child.kill().unwrap();
    child.wait().unwrap();
}

/// The tentpole labeling API end to end through the real binary:
/// open → ingest → label → lattice → concepts → focus → digest, plus
/// the client-error paths (malformed JSON is a 400, an unknown session
/// a 404, a plain `serve` without `--api` keeps answering 404 with a
/// hint, and non-GET methods outside `/api` stay 405).
#[test]
fn serve_api_labels_sessions_end_to_end() {
    let dir = tmp_dir("serve-api");
    let root = dir.join("tenants");
    let (mut child, addr) = spawn_serving(&[
        "serve",
        "--obs-listen",
        "0",
        "--api",
        "--store-root",
        root.to_str().unwrap(),
    ]);

    // Open a session for tenant t1.
    let (status, body) = http_post(
        &addr,
        "/api/sessions",
        "{\"tenant\": \"t1\", \"session\": \"s\", \
         \"traces\": \"fopen(#1) fread(#1) fclose(#1)\\nfopen(#2)\\n\"}",
    );
    assert!(status.contains("201"), "{status} {body}");
    assert!(body.contains("\"concepts\""), "{body}");

    // Ingest more traces into it.
    let (status, body) = http_post(
        &addr,
        "/api/sessions/s/ingest",
        "{\"tenant\": \"t1\", \"traces\": \"fopen(#3) fwrite(#3) fclose(#3)\\n\"}",
    );
    assert!(status.contains("200"), "{status} {body}");
    assert!(body.contains("\"ingested\":1"), "{body}");

    // Label the top concept's unlabeled traces.
    let (status, body) = http_post(
        &addr,
        "/api/sessions/s/label",
        "{\"tenant\": \"t1\", \"concept\": \"c0\", \"selector\": \"unlabeled\", \
         \"label\": \"good\"}",
    );
    assert!(status.contains("200"), "{status} {body}");
    assert!(body.contains("\"classes_labeled\""), "{body}");

    // The read endpoints.
    let (status, lattice) = http_get(&addr, "/api/sessions/s/lattice?tenant=t1");
    assert!(status.contains("200"), "{status}");
    assert!(lattice.contains("\"top\""), "{lattice}");
    let top = lattice
        .split("\"top\":\"")
        .nth(1)
        .and_then(|rest| rest.split('"').next())
        .expect("top concept id")
        .to_owned();
    let (status, concepts) = http_get(&addr, "/api/sessions/s/concepts?tenant=t1");
    assert!(status.contains("200"), "{status}");
    assert!(concepts.contains("\"fully_labeled\""), "{concepts}");
    let (status, focus) = http_get(
        &addr,
        &format!("/api/sessions/s/focus?tenant=t1&concept={top}"),
    );
    assert!(status.contains("200"), "{status} {focus}");
    let (status, digest) = http_get(&addr, "/api/sessions/s/digest?tenant=t1");
    assert!(status.contains("200"), "{status}");
    assert!(digest.contains("\"corpus_digest\""), "{digest}");

    // Tenant isolation: the same session name under another tenant is
    // a different (nonexistent) session.
    let (status, _) = http_get(&addr, "/api/sessions/s/digest?tenant=t2");
    assert!(status.contains("404"), "{status}");

    // Client-error paths: malformed JSON, unknown session, bad method.
    let (status, body) = http_post(&addr, "/api/sessions", "{not json");
    assert!(status.contains("400"), "{status}");
    assert!(body.contains("malformed"), "{body}");
    let (status, _) = http_post(
        &addr,
        "/api/sessions/ghost/ingest",
        "{\"tenant\": \"t1\", \"traces\": \"fopen(#9)\\n\"}",
    );
    assert!(status.contains("404"), "{status}");
    let (status, _) = http_post(&addr, "/metrics", "{}");
    assert!(status.contains("405"), "{status}");

    // The per-tenant store layout is on disk: root/tenant/session.
    assert!(root.join("t1").join("s").is_dir());
    child.kill().unwrap();
    child.wait().unwrap();

    // Without `--api`, the API routes answer 404 with a pointer at the
    // flag — the observability endpoints still work.
    let (mut child, addr) = spawn_serving(&["serve", "--obs-listen", "0"]);
    let (status, body) = http_get(&addr, "/api/sessions");
    assert!(status.contains("404"), "{status}");
    assert!(body.contains("--api"), "{body}");
    child.kill().unwrap();
    child.wait().unwrap();
    fs::remove_dir_all(&dir).unwrap();
}
