//! Integration tests for the `cable` binary: option handling, the
//! persistent-session subcommands, and the `serve` exposition server,
//! driven through real processes.

use std::fs;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Command, Output, Stdio};
use std::time::Duration;

fn cable(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_cable"))
        .args(args)
        .output()
        .expect("cable runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cable-cli-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn unknown_options_are_rejected_with_a_usage_error() {
    let out = cable(&[
        "cluster",
        "--traces",
        "testdata/stdio_violations.traces",
        "--frobnicate",
    ]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown option \"--frobnicate\""));
    assert!(stderr(&out).contains("usage:"));
}

#[test]
fn unknown_commands_and_subcommands_are_rejected() {
    let out = cable(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown command"));

    let out = cable(&["session", "frobnicate", "--store", "/nonexistent"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown session subcommand"));

    let out = cable(&["session"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("session needs a subcommand"));
}

#[test]
fn trace_parse_errors_name_the_failing_line() {
    let dir = tmp_dir("badline");
    let bad = dir.join("bad.traces");
    fs::write(&bad, "fopen(X) fclose(X)\nfopen(X)\nfopen(X) wat wat((\n").unwrap();
    let out = cable(&["cluster", "--traces", bad.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    assert!(
        stderr(&out).contains("line 3"),
        "stderr was: {}",
        stderr(&out)
    );
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn session_lifecycle_open_ingest_label_resume_compact() {
    let dir = tmp_dir("lifecycle");
    let store = dir.join("store");
    let store = store.to_str().unwrap();

    // Open: cluster the violation corpus and save it.
    let out = cable(&[
        "session",
        "open",
        "--traces",
        "testdata/stdio_violations.traces",
        "--store",
        store,
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("saved"));

    // Opening again must refuse to clobber.
    let out = cable(&[
        "session",
        "open",
        "--traces",
        "testdata/stdio_violations.traces",
        "--store",
        store,
    ]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("already holds a store"));

    // Ingest two traces, one of them a duplicate of an existing class.
    let extra = dir.join("extra.traces");
    fs::write(&extra, "popen(X) pclose(X)\nfopen(Y) fread(Y) fclose(Y)\n").unwrap();
    let out = cable(&[
        "session",
        "ingest",
        "--store",
        store,
        "--traces",
        extra.to_str().unwrap(),
        "--fsync-per-trace",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(
        stdout(&out).contains("ingested 2 traces (1 new classes)"),
        "stdout was: {}",
        stdout(&out)
    );

    // Label the saved session through a script; decisions are journaled.
    let script = dir.join("label.script");
    fs::write(&script, "label c0 all seen\n").unwrap();
    let out = cable(&[
        "label",
        "--store",
        store,
        "--script",
        script.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(!stdout(&out).contains("(unlabeled)"));

    // Resume: the journaled traces and labels are all there.
    let json = dir.join("state.jsonl");
    let out = cable(&[
        "session",
        "resume",
        "--store",
        store,
        "--json-out",
        json.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stderr(&out).contains("journal recovery:"));
    let state = fs::read_to_string(&json).unwrap();
    assert!(state.contains("\"record\":\"session_state\""), "{state}");
    assert!(state.contains("\"traces\":10"), "{state}");
    assert!(state.contains("\"generation\":0"), "{state}");

    // Compact, then resume again: nothing to replay, same state.
    let out = cable(&["session", "compact", "--store", store]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("compacted to generation 1"));
    let json2 = dir.join("state2.jsonl");
    let out = cable(&[
        "session",
        "resume",
        "--store",
        store,
        "--json-out",
        json2.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stderr(&out).contains("0 records replayed"));
    let state2 = fs::read_to_string(&json2).unwrap();
    // The digests must survive compaction bit-identically; only the
    // generation moves.
    assert_eq!(
        state.replace("\"generation\":0", "\"generation\":1"),
        state2
    );
    fs::remove_dir_all(&dir).unwrap();
}

/// One HTTP/1.1 GET against the serve endpoint; returns (status line,
/// body).
fn http_get(addr: &str, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to serve");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("response has a header/body split");
    let status = head.lines().next().unwrap_or_default().to_owned();
    (status, body.to_owned())
}

#[test]
fn serve_exposes_metrics_and_health_over_http() {
    let dir = tmp_dir("serve");
    let store = dir.join("store");
    let out = cable(&[
        "session",
        "open",
        "--traces",
        "testdata/stdio_violations.traces",
        "--store",
        store.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));

    // Bare port 0: binds an ephemeral port on 127.0.0.1 and announces
    // the bound address on stdout.
    let mut child = Command::new(env!("CARGO_BIN_EXE_cable"))
        .args([
            "serve",
            "--obs-listen",
            "0",
            "--store",
            store.to_str().unwrap(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("serve starts");
    let mut announce = String::new();
    BufReader::new(child.stdout.take().unwrap())
        .read_line(&mut announce)
        .unwrap();
    let addr = announce
        .trim()
        .strip_prefix("serving http://")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or_else(|| panic!("unexpected announcement {announce:?}"))
        .to_owned();
    assert!(
        addr.starts_with("127.0.0.1:"),
        "bare port binds localhost: {addr}"
    );

    let (status, body) = http_get(&addr, "/healthz");
    assert!(status.contains("200"), "{status}");
    assert!(body.contains("\"generation\":0"), "{body}");
    assert!(body.contains("\"journal_lag_bytes\""), "{body}");
    assert!(body.contains("\"journal_lag_records\""), "{body}");

    let (status, metrics) = http_get(&addr, "/metrics");
    assert!(status.contains("200"), "{status}");
    // The /healthz hit above was counted, so the request counter is
    // registered and nonzero, and every histogram family carries the
    // summary quantiles.
    assert!(
        metrics.contains("# TYPE obs_http_requests counter"),
        "{metrics}"
    );
    assert!(metrics.contains("quantile=\"0.99\""), "{metrics}");

    let (status, tracez) = http_get(&addr, "/tracez");
    assert!(status.contains("200"), "{status}");
    assert!(tracez.contains("\"recording\":true"), "{tracez}");

    let (status, _) = http_get(&addr, "/nope");
    assert!(status.contains("404"), "{status}");

    child.kill().unwrap();
    child.wait().unwrap();
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn incremental_ingest_matches_clustering_the_whole_corpus_at_once() {
    let dir = tmp_dir("equivalence");
    let base = dir.join("base.traces");
    let extra = dir.join("extra.traces");
    let whole = dir.join("whole.traces");
    let base_text = "\
fopen(X) fread(X) fclose(X)
fopen(X) fwrite(X) fclose(X)
popen(Y) fread(Y) pclose(Y)
";
    let extra_text = "\
popen(Y) fwrite(Y) pclose(Y)
fopen(X) fread(X) fclose(X)
fopen(Z) fclose(Z)
";
    fs::write(&base, base_text).unwrap();
    fs::write(&extra, extra_text).unwrap();
    fs::write(&whole, format!("{base_text}{extra_text}")).unwrap();

    // Incremental ingest needs the reference FA fixed up front (the
    // unordered template depends on the corpus), so use the Figure 6
    // specification for both runs.
    let store_inc = dir.join("incremental");
    let out = cable(&[
        "session",
        "open",
        "--traces",
        base.to_str().unwrap(),
        "--fa",
        "testdata/figure6_fixed.fa",
        "--store",
        store_inc.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let out = cable(&[
        "session",
        "ingest",
        "--store",
        store_inc.to_str().unwrap(),
        "--traces",
        extra.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));

    let store_whole = dir.join("whole");
    let out = cable(&[
        "session",
        "open",
        "--traces",
        whole.to_str().unwrap(),
        "--fa",
        "testdata/figure6_fixed.fa",
        "--store",
        store_whole.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));

    let mut states = Vec::new();
    for store in [&store_inc, &store_whole] {
        let json = store.with_extension("jsonl");
        let out = cable(&[
            "session",
            "resume",
            "--store",
            store.to_str().unwrap(),
            "--json-out",
            json.to_str().unwrap(),
        ]);
        assert!(out.status.success(), "{}", stderr(&out));
        states.push(fs::read_to_string(&json).unwrap());
    }
    assert_eq!(
        states[0], states[1],
        "incremental ingest must converge on the batch-built state"
    );
    fs::remove_dir_all(&dir).unwrap();
}
