//! Quickstart: the paper's §2 running example end to end.
//!
//! We write down the buggy Figure 1 stdio specification, generate a
//! workload of programs using files and pipes, extract the violation
//! traces a verifier would report, cluster them with Cable, label the
//! clusters, and print the corrected specification.
//!
//! Run with `cargo run --example quickstart`.

use cable::prelude::*;
use cable::session::TraceSelector;
use cable::trace::Vocab;
use cable::verify::Checker;

fn main() {
    let mut vocab = Vocab::new();

    // The buggy Figure 1 specification: fclose closes *any* file
    // pointer, even one opened by popen.
    let buggy = Fa::parse(
        "\
start s0
accept s2
s0 -> s1 : fopen(X)
s0 -> s1 : popen(X)
s1 -> s1 : fread(X)
s1 -> s1 : fwrite(X)
s1 -> s2 : fclose(X)
",
        &mut vocab,
    )
    .expect("well-formed FA text");
    println!(
        "== The buggy specification (Figure 1) ==\n{}",
        buggy.to_text(&vocab)
    );

    // A workload of programs that use the stdio protocol (some of them
    // incorrectly).
    let registry = cable::specs::registry();
    let spec = registry.spec("FilePair").expect("FilePair is registered");
    let workload = spec.generate(2003, &mut vocab);
    println!("generated {} program traces", workload.len());

    // "Testing the specification": the checker reports the per-object
    // scenarios the buggy specification rejects.
    let report = Checker::new(buggy).check(&workload, &vocab);
    println!(
        "the verifier reports {} violation traces (of {} scenarios checked)\n",
        report.violations.len(),
        report.scenarios_checked
    );

    // Cluster the violation traces with concept analysis, using the
    // unordered template as the reference FA.
    let traces: Vec<Trace> = report.violations.iter().map(|(_, t)| t.clone()).collect();
    let fa = cable::fa::templates::unordered_of_trace_events(&traces);
    let mut session = CableSession::new(report.violations, fa);
    println!(
        "concept lattice: {} concepts over {} classes of identical traces",
        session.lattice().len(),
        session.classes().len()
    );

    // The oracle knows the *correct* protocol; violations of the buggy
    // spec that the correct spec accepts are good (the spec must change),
    // the rest demonstrate program errors.
    let oracle = spec.oracle(&mut vocab);

    // Label top-down, cluster by cluster, exactly as §2.1 describes.
    let mut labeled_clusters = 0;
    for id in session.lattice().bfs_top_down() {
        let unlabeled = session.unlabeled_in(id);
        if unlabeled.is_empty() {
            continue;
        }
        let reps: Vec<&str> = unlabeled
            .iter()
            .map(|&c| {
                let rep = session.classes()[c].representative;
                oracle.label(session.traces().trace(rep))
            })
            .collect();
        if reps.iter().all(|l| *l == reps[0]) {
            let label = reps[0].to_owned();
            session.label_traces(id, &TraceSelector::Unlabeled, &label);
            labeled_clusters += 1;
        }
    }
    assert!(session.all_labeled(), "every violation trace got a label");
    println!(
        "labeled every trace with {} cluster decisions (vs {} by-hand class inspections)",
        labeled_clusters,
        session.classes().len()
    );

    // Step 3: fix the specification so that it accepts the good traces —
    // here by learning from them.
    let good: Vec<Trace> = session
        .representatives_with_label("good")
        .into_iter()
        .cloned()
        .collect();
    println!(
        "\n{} distinct violation shapes were correct popen…pclose usage;",
        good.len()
    );
    let addition = cable::learn::SkStrings::default().learn(&good);
    println!("the specification must additionally accept:\n");
    println!("{}", addition.to_text(&vocab));

    // The corrected specification (Figure 6) now accepts them all.
    let fixed = spec.ground_truth(&mut vocab);
    for t in &good {
        assert!(fixed.accepts(t), "Figure 6 accepts {}", t.display(&vocab));
    }
    println!(
        "== The corrected specification (Figure 6) ==\n{}",
        fixed.to_text(&vocab)
    );
}
