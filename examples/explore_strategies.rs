//! Compares the §4.2 labeling strategies on one specification, printing
//! a Table 3-style row with full detail (best/mean over trials).
//!
//! Run with `cargo run --example explore_strategies [-- <spec-name>]`.

use cable::session::strategy;
use cable::trace::Trace;
use cable_bench::prepare;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "FilePair".into());
    let registry = cable::specs::registry();
    let spec = match registry.spec(&name) {
        Some(s) => s,
        None => {
            eprintln!("unknown spec {name:?}; known: {:?}", registry.names());
            std::process::exit(2);
        }
    };

    let mut p = prepare(spec, 2003);
    println!(
        "spec {} — {} traces, {} classes, reference FA: {} ({} transitions), {} concepts\n",
        p.name,
        p.scenarios.len(),
        p.session.classes().len(),
        p.reference.name(),
        p.session.reference_fa().transition_count(),
        p.session.lattice().len()
    );

    let oracle = p.oracle.clone();
    let o = move |t: &Trace| oracle.label(t).to_owned();

    let baseline = strategy::baseline(&p.session);
    println!(
        "Baseline  : {:4} ops  ({} inspections + {} labelings, no Cable)",
        baseline.total(),
        baseline.inspections,
        baseline.labelings
    );

    if let Some(cost) = strategy::expert(&mut p.session, &o) {
        println!(
            "Expert    : {:4} ops  ({} inspections + {} labelings)",
            cost.total(),
            cost.inspections,
            cost.labelings
        );
    }

    if let Some(cost) = strategy::expert_cautious(&mut p.session, &o) {
        println!(
            "Cautious  : {:4} ops  (expert + child-concept confirmations)",
            cost.total()
        );
    }

    report(
        "Top-down ",
        strategy::best_of(&mut p.session, &o, strategy::top_down, 64, 7),
    );
    report(
        "Bottom-up",
        strategy::best_of(&mut p.session, &o, strategy::bottom_up, 64, 7),
    );
    report(
        "Random   ",
        strategy::best_of(&mut p.session, &o, strategy::random, 64, 7),
    );

    match strategy::optimal(&mut p.session, &o, 500_000) {
        Some(cost) => println!("Optimal   : {:4} ops (exact)", cost.total()),
        None => println!("Optimal   : not measured (search budget exceeded)"),
    }
}

fn report(label: &str, outcome: Option<(usize, f64)>) {
    match outcome {
        Some((best, mean)) => {
            println!("{label} : best {best:4} ops, mean {mean:7.1} over 64 trials")
        }
        None => println!("{label} : labeling unreachable (lattice not well-formed)"),
    }
}
