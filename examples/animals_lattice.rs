//! The concept-analysis worked example of §3.1 (Figures 9 and 10): the
//! animals/adjectives context from Siff's thesis, its concept lattice,
//! and the similarity measure.
//!
//! Run with `cargo run --example animals_lattice`. Writes
//! `figures/animals_lattice.dot`.

use cable::fca::{ConceptLattice, Context};
use std::fs;

const ANIMALS: [&str; 5] = ["cats", "gibbons", "dolphins", "humans", "whales"];
const ADJECTIVES: [&str; 5] = [
    "four-legged",
    "hair-covered",
    "intelligent",
    "marine",
    "thumbed",
];

fn main() {
    // Figure 9: the context.
    let mut ctx = Context::new(5, 5);
    for (animal, attrs) in [
        (0usize, vec![0usize, 1]), // cats: four-legged, hair-covered
        (1, vec![1, 2, 4]),        // gibbons: hair-covered, intelligent, thumbed
        (2, vec![2, 3]),           // dolphins: intelligent, marine
        (3, vec![2, 4]),           // humans: intelligent, thumbed
        (4, vec![2, 3]),           // whales: intelligent, marine
    ] {
        for a in attrs {
            ctx.add(animal, a);
        }
    }
    println!("== Figure 9: the context ==");
    print!("{:12}", "");
    for adj in ADJECTIVES {
        print!("{adj:14}");
    }
    println!();
    for (o, animal) in ANIMALS.iter().enumerate() {
        print!("{animal:12}");
        for a in 0..5 {
            print!("{:14}", if ctx.has(o, a) { "x" } else { "" });
        }
        println!();
    }

    // Figure 10: the lattice.
    let lattice = ConceptLattice::build(&ctx);
    println!(
        "\n== Figure 10: the concept lattice ({} concepts) ==",
        lattice.len()
    );
    for id in lattice.bfs_top_down() {
        let c = lattice.concept(id);
        let extent: Vec<&str> = c.extent.iter().map(|o| ANIMALS[o]).collect();
        let intent: Vec<&str> = c.intent.iter().map(|a| ADJECTIVES[a]).collect();
        println!(
            "{id}: ({{{}}}, {{{}}})  sim = {}",
            extent.join(", "),
            intent.join(", "),
            c.similarity()
        );
    }

    // The key §3.1 property: similarity increases downward.
    for id in lattice.ids() {
        for &child in lattice.children(id) {
            assert!(lattice.concept(child).similarity() >= lattice.concept(id).similarity());
        }
    }
    println!("\nsimilarity sim(X) = |σ(X)| increases moving down the lattice ✓");

    // Write the DOT rendering.
    fs::create_dir_all("figures").expect("create figures directory");
    let dot = lattice.to_dot(
        "animals",
        |id| {
            lattice
                .concept(id)
                .extent
                .iter()
                .map(|o| ANIMALS[o])
                .collect::<Vec<_>>()
                .join(", ")
        },
        |id| {
            lattice
                .concept(id)
                .intent
                .iter()
                .map(|a| ADJECTIVES[a])
                .collect::<Vec<_>>()
                .join(", ")
        },
    );
    fs::write("figures/animals_lattice.dot", dot).expect("write DOT file");
    println!("wrote figures/animals_lattice.dot");
}
