//! Ranking and clustering are complementary (§6).
//!
//! Related-work tools (Xgcc, PREfix) *rank* bug reports so likely real
//! bugs come first; Cable *clusters* them so redundant reports are
//! inspected once. This example runs both on the Figure 1 scenario:
//!
//! * z-ranking puts the fopen leaks (violations of a rule that usually
//!   holds) above the popen…pclose reports (violations of a "rule" that
//!   fails constantly — i.e. a specification bug, not a program bug);
//! * clustering reduces the 90-odd reports to a handful of concepts.
//!
//! Run with `cargo run --example rank_and_cluster`.

use cable::prelude::*;
use cable::trace::Vocab;
use cable::verify::{Checker, RankedReport};

fn main() {
    let mut vocab = Vocab::new();
    let buggy = Fa::parse(
        "\
start s0
accept s2
s0 -> s1 : fopen(X)
s0 -> s1 : popen(X)
s1 -> s1 : fread(X)
s1 -> s1 : fwrite(X)
s1 -> s2 : fclose(X)
",
        &mut vocab,
    )
    .expect("well-formed");

    let registry = cable::specs::registry();
    let spec = registry.spec("FilePair").expect("registered");
    let workload = spec.generate(2003, &mut vocab);
    let (report, stats) = Checker::new(buggy).check_with_stats(&workload, &vocab);
    println!(
        "{} violation traces in {} classes\n",
        report.violations.len(),
        report.violations.identical_classes().len()
    );

    println!("per-operation conformance (the z-ranking signal):");
    for (op, s) in &stats {
        println!(
            "  {:8} pass {:3} / fail {:3}  (rate {:.2})",
            vocab.op_name(*op),
            s.passed,
            s.failed,
            s.pass_rate()
        );
    }

    let ranked = RankedReport::new(&report, &stats);
    println!("\nranked violation classes (most likely real bug first):");
    for class in ranked.classes() {
        let t = report.violations.trace(class.representative);
        println!(
            "  score {:.2}  ×{:<3} {}",
            class.score,
            class.count,
            t.display(&vocab)
        );
    }

    // Evaluate against the oracle: a violation is a real bug iff the
    // *correct* specification also rejects it.
    let oracle = spec.oracle(&mut vocab);
    let is_real = |id| !oracle.is_good(report.violations.trace(id));
    let k = ranked
        .classes()
        .iter()
        .filter(|c| is_real(c.representative))
        .count();
    println!(
        "\nprecision@{k} (where {k} = #real-bug classes): {:.2}",
        ranked.precision_at(k, is_real)
    );
    println!(
        "precision@all: {:.2}",
        ranked.precision_at(ranked.len(), is_real)
    );

    // And clustering on top: one Cable session over the same reports.
    let traces: Vec<Trace> = report.violations.iter().map(|(_, t)| t.clone()).collect();
    let fa = cable::fa::templates::unordered_of_trace_events(&traces);
    let session = CableSession::new(report.violations.clone(), fa);
    println!(
        "\nclustering the same reports: {} concepts over {} classes — \
         rank to pick where to look first, cluster to decide en masse",
        session.lattice().len(),
        session.classes().len()
    );
}
