//! Regenerates the paper's illustrative figures as DOT/text artifacts in
//! `figures/`:
//!
//! * Figure 1 — the buggy stdio specification,
//! * Figure 2 — example violation traces,
//! * Figure 3 — a small reference FA recognising the violation traces,
//! * Figure 4 — the very small (unordered) reference FA,
//! * Figure 5 — the concept lattice induced by the violation traces,
//! * Figure 6 — the corrected specification,
//! * Figure 8 — good scenario traces for the stdio rule.
//!
//! Run with `cargo run --example figures`.

use cable::fa::templates;
use cable::learn::Pta;
use cable::prelude::*;
use cable::trace::Vocab;
use cable::verify::Checker;
use std::fs;

fn main() {
    fs::create_dir_all("figures").expect("create figures directory");
    let mut vocab = Vocab::new();

    // Figure 1: the buggy specification.
    let buggy = Fa::parse(
        "\
start s0
accept s2
s0 -> s1 : fopen(X)
s0 -> s1 : popen(X)
s1 -> s1 : fread(X)
s1 -> s1 : fwrite(X)
s1 -> s2 : fclose(X)
",
        &mut vocab,
    )
    .expect("well-formed");
    write(
        "figures/fig1_buggy_spec.dot",
        buggy.to_dot(&vocab, "figure1"),
    );

    // Violation traces from "verifying" the buggy spec against the
    // FilePair workload (Figure 2).
    let registry = cable::specs::registry();
    let spec = registry.spec("FilePair").expect("registered");
    let workload = spec.generate(2003, &mut vocab);
    let report = Checker::new(buggy).check(&workload, &vocab);
    write(
        "figures/fig2_violation_traces.txt",
        report.violations.display(&vocab).to_string(),
    );

    // Figure 3: a small reference FA recognising the violation traces —
    // here the prefix-tree FA of the distinct shapes, trimmed.
    let traces: Vec<Trace> = report.violations.iter().map(|(_, t)| t.clone()).collect();
    let reps: Vec<Trace> = report
        .violations
        .identical_classes()
        .iter()
        .map(|c| report.violations.trace(c.representative).clone())
        .collect();
    let fig3 = Pta::build(&reps).to_fa();
    write(
        "figures/fig3_reference_fa.dot",
        fig3.to_dot(&vocab, "figure3"),
    );

    // Figure 4: the very small FA that ignores order entirely.
    let fig4 = templates::unordered_of_trace_events(&traces);
    write(
        "figures/fig4_unordered_fa.dot",
        fig4.to_dot(&vocab, "figure4"),
    );

    // Figure 5: the concept lattice induced by the violation traces with
    // respect to the unordered FA, with Cable's state colours.
    let session = CableSession::new(report.violations, fig4);
    write(
        "figures/fig5_concept_lattice.dot",
        session.to_dot("figure5"),
    );

    // Figure 6: the corrected specification.
    let fixed = spec.ground_truth(&mut vocab);
    write(
        "figures/fig6_fixed_spec.dot",
        fixed.to_dot(&vocab, "figure6"),
    );

    // Figure 8: good scenario traces.
    let good: Vec<String> = session
        .classes()
        .iter()
        .map(|c| session.traces().trace(c.representative))
        .filter(|t| fixed.accepts(t))
        .map(|t| t.display(&vocab).to_string())
        .collect();
    write("figures/fig8_good_scenarios.txt", good.join("\n") + "\n");

    println!("figures regenerated under figures/ — render with `dot -Tpdf`");
}

fn write(path: &str, contents: String) {
    fs::write(path, contents).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("wrote {path}");
}
