//! Focused sub-sessions (§4.1): when a concept looks too complicated,
//! re-cluster its traces under a template FA, label there, and merge the
//! labels back.
//!
//! The demonstration uses the `XtFree` traces: under the *unordered*
//! template, a double free (`XtMalloc XtFree XtFree`) and a correct use
//! (`XtMalloc XtFree`) land in related concepts but the leak/correct
//! distinction is easy; the before/after structure needs the
//! *seed-order* template, applied inside a focus session.
//!
//! Run with `cargo run --example focus_sessions`.

use cable::fa::templates;
use cable::prelude::*;
use cable::session::TraceSelector;
use cable::trace::{Var, Vocab};

fn main() {
    let mut vocab = Vocab::new();
    let texts = [
        // Correct: malloc … free (exactly one free).
        "XtMalloc(X) XtFree(X)",
        "XtMalloc(X) XtRealloc(X) XtFree(X)",
        "XtMalloc(X) XtRealloc(X) XtRealloc(X) XtFree(X)",
        // Leaks: no free at all.
        "XtMalloc(X)",
        "XtMalloc(X) XtRealloc(X)",
        // Double free: same event *set* as a correct trace!
        "XtMalloc(X) XtFree(X) XtFree(X)",
        "XtMalloc(X) XtRealloc(X) XtFree(X) XtFree(X)",
    ];
    let mut traces = TraceSet::new();
    for t in texts {
        traces.push(Trace::parse(t, &mut vocab).expect("well-formed trace"));
    }
    let all: Vec<Trace> = traces.iter().map(|(_, t)| t.clone()).collect();

    // Cluster with the unordered template.
    let unordered = templates::unordered_of_trace_events(&all);
    let mut session = CableSession::new(traces, unordered);
    println!(
        "unordered session: {} classes, {} concepts",
        session.classes().len(),
        session.lattice().len()
    );

    // The leaks are separable here: they are exactly the traces that do
    // not execute the XtFree self-loop. Find that concept and label its
    // complement... top-down:
    let xtfree = vocab.find_op("XtFree").expect("interned");
    // The largest concept whose shared transitions include XtFree: the
    // cluster of all traces that free.
    let free_concept = session
        .lattice()
        .ids()
        .find(|&id| {
            session.show_transitions(id).iter().any(|&tid| {
                session
                    .reference_fa()
                    .transition(tid)
                    .label
                    .as_pat()
                    .is_some_and(|p| p.op == xtfree)
            })
        })
        .expect("a concept whose intent contains the XtFree transition");
    // Everything *outside* it (at the top) that is unlabeled after
    // labeling it would be the leaks. But the free concept itself is
    // mixed: it contains correct traces AND double frees.
    let members = session.select(free_concept, &TraceSelector::All);
    println!(
        "the XtFree concept holds {} classes — correct uses and double frees mixed",
        members.len()
    );

    // §4.3: the unordered lattice is NOT well-formed for the real
    // labeling, because a double free has the same event set as a
    // correct trace.
    let truth = Fa::parse(
        "start s0\naccept s2\ns0 -> s1 : XtMalloc(X)\ns1 -> s1 : XtRealloc(X)\ns1 -> s2 : XtFree(X)\n",
        &mut vocab,
    )
    .expect("well-formed FA text");
    let oracle = move |t: &Trace| truth.accepts(t);
    assert!(
        !session.is_well_formed_for(&oracle),
        "unordered template cannot express the double-free split"
    );
    println!("the unordered lattice is not well-formed for the true labeling (§4.3)\n");

    // Focus: re-cluster the mixed concept's traces with the seed-order
    // template around XtFree.
    let pats = templates::distinct_event_pats(&all);
    let seed = cable::fa::EventPat::on_var(xtfree, Var(0));
    let seed_order = templates::seed_order(&pats, &seed);
    let mut focus = session.focus(free_concept, seed_order);
    println!(
        "focus session (seed-order around XtFree): {} concepts",
        focus.session().lattice().len()
    );

    // In the focus lattice, traces with a second XtFree *after* the seed
    // are rejected by the template (two seeds) and cluster separately
    // (empty attribute row); correct traces are accepted.
    // Repeated top-down passes, labeling each cluster whose unlabeled
    // traces agree (one decision per cluster).
    while !focus.session().all_labeled() {
        let mut progress = false;
        for id in focus.session().lattice().bfs_top_down() {
            let unlabeled = focus.session().unlabeled_in(id);
            if unlabeled.is_empty() {
                continue;
            }
            let reps: Vec<bool> = unlabeled
                .iter()
                .map(|&c| {
                    let rep = focus.session().classes()[c].representative;
                    focus
                        .session()
                        .traces()
                        .trace(rep)
                        .iter()
                        .filter(|e| e.op == xtfree)
                        .count()
                        == 1
                })
                .collect();
            if reps.iter().all(|&ok| ok == reps[0]) {
                let label = if reps[0] { "good" } else { "bad" };
                focus
                    .session_mut()
                    .label_traces(id, &TraceSelector::Unlabeled, label);
                progress = true;
            }
        }
        assert!(progress, "focus lattice is well-formed for this labeling");
    }

    // Merge back and finish the outer session.
    session.merge_focus(focus);
    session.label_traces(session.lattice().top(), &TraceSelector::Unlabeled, "bad");
    assert!(session.all_labeled());

    println!("after merge-back, the outer session is fully labeled:");
    for (i, class) in session.classes().iter().enumerate() {
        let rep = session.traces().trace(class.representative);
        let label = session
            .labels()
            .get(i)
            .map(|l| session.labels().name(l))
            .unwrap_or("?");
        println!("  {:5}  {}", label, rep.display(&vocab));
    }
    // Double frees are bad, single frees good, leaks bad.
    for (i, class) in session.classes().iter().enumerate() {
        let rep = session.traces().trace(class.representative);
        let frees = rep.iter().filter(|e| e.op == xtfree).count();
        let label = session
            .labels()
            .name(session.labels().get(i).expect("labeled"));
        assert_eq!(label == "good", frees == 1, "{}", rep.display(&vocab));
    }
    println!("\nthe double frees were separated with order-sensitive focus clustering ✓");
}
