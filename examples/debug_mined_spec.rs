//! Debugging a mined specification (§2.2): the full Strauss + Cable
//! pipeline on the `XtFree` specification — the paper's headline case.
//!
//! 1. generate a workload of programs that use the XtMalloc/XtFree API
//!    (some with double frees, leaks, and use-after-free bugs),
//! 2. mine a (buggy) specification with Strauss,
//! 3. debug it with a Cable session (the Expert strategy supplies the
//!    labeling decisions),
//! 4. re-run the miner's back end on the traces labelled `good`,
//! 5. validate the corrected specification and count the bugs it finds.
//!
//! Run with `cargo run --example debug_mined_spec`.

use cable::prelude::*;
use cable::session::strategy;
use cable::trace::Vocab;
use cable::verify::Checker;

fn main() {
    let registry = cable::specs::registry();
    let spec = registry.spec("XtFree").expect("XtFree is registered");
    let mut vocab = Vocab::new();

    // 1. The workload.
    let workload = spec.generate(2003, &mut vocab);
    println!("workload: {} program traces", workload.len());

    // 2. Mine.
    let miner = cable::strauss::Miner::new(spec.seeds());
    let mined = miner.mine(&workload, &vocab);
    println!(
        "Strauss extracted {} scenario traces ({} unique) and mined an FA with {} states",
        mined.scenarios.len(),
        mined.scenarios.identical_classes().len(),
        mined.fa.state_count()
    );
    // The mined specification is buggy: it accepts the double free seen
    // in the training runs.
    let double_free = Trace::parse("XtMalloc(X) XtFree(X) XtFree(X)", &mut vocab).unwrap();
    assert!(
        mined.fa.accepts(&double_free),
        "the mined spec learned the double-free bug from the training set"
    );
    println!("the mined specification accepts a double free — it needs debugging\n");

    // 3. Debug with Cable. The seed-order template around XtFree is the
    // reference FA (the unordered template cannot split a double free
    // from correct usage — same event *set* — which is exactly why §4.1
    // has order-sensitive templates).
    let scenario_list: Vec<Trace> = mined.scenarios.iter().map(|(_, t)| t.clone()).collect();
    let alphabet = cable::fa::templates::distinct_event_pats(&scenario_list);
    let xtfree = vocab.find_op("XtFree").expect("XtFree interned");
    let seed = cable::fa::EventPat::on_var(xtfree, cable::trace::Var(0));
    let reference = cable::fa::templates::seed_order(&alphabet, &seed);
    let mut session = CableSession::new(mined.scenarios.clone(), reference);
    println!(
        "Cable session: {} classes, {} concepts",
        session.classes().len(),
        session.lattice().len()
    );

    let oracle = spec.oracle(&mut vocab);
    let o = |t: &Trace| oracle.label(t).to_owned();
    assert!(
        session.is_well_formed_for(o),
        "seed-order lattice is well-formed"
    );

    let baseline = strategy::baseline(&session).total();
    let cost = strategy::expert(&mut session, &o).expect("well-formed");
    println!(
        "expert labeling cost: {} Cable operations (vs {} by inspecting every class)\n",
        cost.total(),
        baseline
    );

    // 4. Re-mine from the good traces.
    let good: Vec<Trace> = session
        .traces_with_label("good")
        .into_iter()
        .map(|id| session.traces().trace(id).clone())
        .collect();
    let corrected = miner.remine(&good);
    println!(
        "re-mined specification: {} states, {} transitions",
        corrected.state_count(),
        corrected.transition_count()
    );

    // 5. Validate.
    assert!(!corrected.accepts(&double_free), "double free now rejected");
    let ok = Trace::parse("XtMalloc(X) XtRealloc(X) XtFree(X)", &mut vocab).unwrap();
    assert!(corrected.accepts(&ok), "correct usage still accepted");
    let truth = spec.ground_truth(&mut vocab);
    println!(
        "language-equivalent to ground truth: {}",
        corrected.equivalent(&truth)
    );
    let report = Checker::new(corrected).check(&workload, &vocab);
    let bugs = report.bug_summary();
    println!(
        "the corrected specification finds {} bugs in {} programs",
        bugs.total,
        bugs.buggy_programs()
    );
}
